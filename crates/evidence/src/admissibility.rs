//! Courtroom admissibility: legal soundness (the compliance engine's
//! suppression analysis) combined with forensic integrity (digest and
//! custody-chain verification).
//!
//! The paper's warning is that a *legally* defective acquisition gets
//! evidence suppressed; forensic practice adds that a *technically*
//! defective custody record gets it excluded too. Both must hold.

use crate::custody::{CustodyError, CustodyLog};
use crate::item::EvidenceItem;
use forensic_law::suppression::Admissibility;
use std::fmt;

/// Why an item was excluded, when it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExclusionGround {
    /// The compliance engine's suppression analysis excluded it.
    Suppressed(Admissibility),
    /// The item's content no longer matches its acquisition digest.
    IntegrityFailure,
    /// The custody log fails verification.
    CustodyFailure(CustodyError),
}

impl fmt::Display for ExclusionGround {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExclusionGround::Suppressed(a) => write!(f, "legally {a}"),
            ExclusionGround::IntegrityFailure => f.write_str("content integrity check failed"),
            ExclusionGround::CustodyFailure(e) => write!(f, "custody record defective: {e}"),
        }
    }
}

/// The combined admissibility determination for one item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissibilityReport {
    admissible: bool,
    grounds: Vec<ExclusionGround>,
}

impl AdmissibilityReport {
    /// Whether the item may be introduced.
    pub fn is_admissible(&self) -> bool {
        self.admissible
    }

    /// The exclusion grounds (empty when admissible).
    pub fn grounds(&self) -> &[ExclusionGround] {
        &self.grounds
    }
}

impl fmt::Display for AdmissibilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.admissible {
            f.write_str("admissible")
        } else {
            write!(f, "excluded: ")?;
            for (i, g) in self.grounds.iter().enumerate() {
                if i > 0 {
                    f.write_str("; ")?;
                }
                write!(f, "{g}")?;
            }
            Ok(())
        }
    }
}

/// Evaluates an item's full admissibility.
///
/// `legal` is the suppression verdict from
/// [`forensic_law::suppression::Docket::admissibility`]; `item` supplies
/// the integrity check; `log` supplies the custody check.
///
/// # Examples
///
/// ```
/// use evidence::admissibility::evaluate;
/// use evidence::custody::{CustodyEvent, CustodyLog};
/// use evidence::item::{Acquisition, AcquisitionAuthority, EvidenceItem, ItemId};
/// use forensic_law::suppression::Admissibility;
///
/// let item = EvidenceItem::new(
///     ItemId(1),
///     "image",
///     b"sectors".to_vec(),
///     Acquisition {
///         examiner: "e".into(),
///         timestamp: 0,
///         method: "dd".into(),
///         authority: AcquisitionAuthority::unrestricted(),
///     },
/// );
/// let mut log = CustodyLog::new();
/// log.record(item.id(), 0, CustodyEvent::Acquired { by: "e".into() }, item.acquisition_digest());
///
/// let report = evaluate(Admissibility::Admissible, &item, &log);
/// assert!(report.is_admissible());
/// ```
pub fn evaluate(
    legal: Admissibility,
    item: &EvidenceItem,
    log: &CustodyLog,
) -> AdmissibilityReport {
    let mut grounds = Vec::new();
    if !legal.is_admissible() {
        grounds.push(ExclusionGround::Suppressed(legal));
    }
    if !item.verify_integrity() {
        grounds.push(ExclusionGround::IntegrityFailure);
    }
    if let Err(e) = log.verify() {
        grounds.push(ExclusionGround::CustodyFailure(e));
    }
    AdmissibilityReport {
        admissible: grounds.is_empty(),
        grounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::custody::CustodyEvent;
    use crate::item::{Acquisition, AcquisitionAuthority, ItemId};
    use forensic_law::suppression::EvidenceId;

    fn item() -> EvidenceItem {
        EvidenceItem::new(
            ItemId(1),
            "image",
            vec![1, 2, 3, 4],
            Acquisition {
                examiner: "e".into(),
                timestamp: 0,
                method: "dd".into(),
                authority: AcquisitionAuthority::unrestricted(),
            },
        )
    }

    fn log_for(item: &EvidenceItem) -> CustodyLog {
        let mut log = CustodyLog::new();
        log.record(
            item.id(),
            0,
            CustodyEvent::Acquired { by: "e".into() },
            item.acquisition_digest(),
        );
        log
    }

    #[test]
    fn clean_item_admissible() {
        let item = item();
        let log = log_for(&item);
        let r = evaluate(Admissibility::Admissible, &item, &log);
        assert!(r.is_admissible());
        assert!(r.grounds().is_empty());
        assert_eq!(r.to_string(), "admissible");
    }

    #[test]
    fn suppressed_item_excluded() {
        let item = item();
        let log = log_for(&item);
        let r = evaluate(Admissibility::SuppressedDirect, &item, &log);
        assert!(!r.is_admissible());
        assert!(matches!(r.grounds()[0], ExclusionGround::Suppressed(_)));
    }

    #[test]
    fn tampered_item_excluded() {
        let mut item = item();
        let log = log_for(&item);
        item.tamper(0);
        let r = evaluate(Admissibility::Admissible, &item, &log);
        assert!(!r.is_admissible());
        assert!(r.grounds().contains(&ExclusionGround::IntegrityFailure));
    }

    #[test]
    fn broken_custody_excluded() {
        let item = item();
        let mut log = log_for(&item);
        log.tamper_content_digest(0, crate::hash::sha256(b"other"));
        let r = evaluate(Admissibility::Admissible, &item, &log);
        assert!(!r.is_admissible());
        assert!(matches!(r.grounds()[0], ExclusionGround::CustodyFailure(_)));
    }

    #[test]
    fn multiple_grounds_accumulate() {
        let mut item = item();
        let mut log = log_for(&item);
        item.tamper(0);
        log.tamper_content_digest(0, crate::hash::sha256(b"other"));
        let r = evaluate(
            Admissibility::SuppressedDerivative(EvidenceId::from_raw(0)),
            &item,
            &log,
        );
        assert_eq!(r.grounds().len(), 3);
        assert!(r.to_string().contains("excluded"));
    }
}
