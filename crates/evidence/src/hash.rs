//! A from-scratch SHA-256 implementation (FIPS 180-4) plus HMAC-SHA-256.
//!
//! Forensic practice authenticates acquired media by cryptographic digest
//! (the paper's Table 1 row 18 turns on *running hash functions* across a
//! drive). The implementation is self-contained so the workspace carries
//! no crypto dependency; it is validated against the FIPS test vectors in
//! the unit tests.

use std::fmt;

/// A 256-bit digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Hex rendering of the digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns `None` if the input is not exactly 64 hex characters.
    pub fn from_hex(hex: &str) -> Option<Digest> {
        if hex.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use evidence::hash::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, data: impl AsRef<[u8]>) {
        let mut data = data.as_ref();
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80 then zeros then 64-bit length.
        self.update_raw(&[0x80]);
        while self.buffer_len != 56 {
            self.update_raw(&[0]);
        }
        self.update_raw(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Digest(out)
    }

    fn update_raw(&mut self, data: &[u8]) {
        // Like update but without counting toward the message length.
        for &b in data {
            self.buffer[self.buffer_len] = b;
            self.buffer_len += 1;
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
///
/// # Examples
///
/// ```
/// use evidence::hash::sha256;
///
/// let d = sha256(b"");
/// assert_eq!(
///     d.to_hex(),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
/// );
/// ```
pub fn sha256(data: impl AsRef<[u8]>) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// HMAC-SHA-256 (RFC 2104), used to key custody-log entries.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key).0);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(inner_digest.0);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVP vectors.
    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0, 1, 7, 20, data.len()] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(data), "split {split}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Lengths around the 55/56/64-byte padding boundaries.
        for len in [54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0xabu8; len];
            let mut h = Sha256::new();
            for chunk in data.chunks(3) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), sha256(&data), "len {len}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let d = sha256(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
    }

    // RFC 4231 HMAC-SHA-256 test vectors.
    #[test]
    fn hmac_rfc4231_case1() {
        let key = [0x0bu8; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            out.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_rfc4231_case2() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            out.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed_first() {
        let key = vec![0xaau8; 131];
        let out = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            out.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn digest_display_and_ordering() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert_ne!(a, b);
        assert_eq!(a.to_string(), a.to_hex());
        assert_eq!(a.as_bytes().len(), 32);
        // Ordering is total.
        assert!(a < b || b < a);
    }
}
