//! A tamper-evident chain of custody.
//!
//! Every custody event is appended to a hash-chained log: entry *n*
//! commits to entry *n−1*'s digest, so any rewrite of history invalidates
//! every later link. This is the standard courtroom answer to "how do we
//! know nobody altered the evidence record?".

use crate::hash::{sha256, Digest, Sha256};
use crate::item::ItemId;
use std::fmt;

/// What happened to the item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CustodyEvent {
    /// Entered custody.
    Acquired {
        /// Acquiring examiner.
        by: String,
    },
    /// Physical or logical transfer between custodians.
    Transferred {
        /// Releasing custodian.
        from: String,
        /// Receiving custodian.
        to: String,
    },
    /// A working copy/image was made.
    Imaged {
        /// Examiner who made the image.
        by: String,
    },
    /// Analyzed with a named tool.
    Analyzed {
        /// Analyst.
        by: String,
        /// Tool used.
        tool: String,
    },
    /// Sealed for storage.
    Sealed {
        /// Sealing custodian.
        by: String,
    },
}

impl CustodyEvent {
    fn encode(&self) -> String {
        match self {
            CustodyEvent::Acquired { by } => format!("acquired|{by}"),
            CustodyEvent::Transferred { from, to } => format!("transferred|{from}|{to}"),
            CustodyEvent::Imaged { by } => format!("imaged|{by}"),
            CustodyEvent::Analyzed { by, tool } => format!("analyzed|{by}|{tool}"),
            CustodyEvent::Sealed { by } => format!("sealed|{by}"),
        }
    }
}

impl fmt::Display for CustodyEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CustodyEvent::Acquired { by } => write!(f, "acquired by {by}"),
            CustodyEvent::Transferred { from, to } => write!(f, "transferred {from} → {to}"),
            CustodyEvent::Imaged { by } => write!(f, "imaged by {by}"),
            CustodyEvent::Analyzed { by, tool } => write!(f, "analyzed by {by} with {tool}"),
            CustodyEvent::Sealed { by } => write!(f, "sealed by {by}"),
        }
    }
}

/// One link in the custody chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustodyEntry {
    item: ItemId,
    timestamp: u64,
    event: CustodyEvent,
    content_digest: Digest,
    prev: Digest,
    link: Digest,
}

impl CustodyEntry {
    /// The item this entry concerns.
    pub fn item(&self) -> ItemId {
        self.item
    }

    /// Event time (seconds since investigation epoch).
    pub fn timestamp(&self) -> u64 {
        self.timestamp
    }

    /// What happened.
    pub fn event(&self) -> &CustodyEvent {
        &self.event
    }

    /// Digest of the item's content at the time of the event.
    pub fn content_digest(&self) -> Digest {
        self.content_digest
    }

    /// This entry's chained digest.
    pub fn link(&self) -> Digest {
        self.link
    }

    fn compute_link(
        item: ItemId,
        timestamp: u64,
        event: &CustodyEvent,
        content_digest: Digest,
        prev: Digest,
    ) -> Digest {
        let mut h = Sha256::new();
        h.update(item.0.to_be_bytes());
        h.update(timestamp.to_be_bytes());
        h.update(event.encode().as_bytes());
        h.update(content_digest.as_bytes());
        h.update(prev.as_bytes());
        h.finalize()
    }
}

/// Failures detected when verifying a custody log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CustodyError {
    /// Entry `index` does not commit to its predecessor.
    BrokenChain {
        /// Index of the broken link.
        index: usize,
    },
    /// Entry `index` records a content digest different from its
    /// predecessor for the same item — the content changed in custody
    /// without an `Imaged` event.
    ContentChanged {
        /// Index of the mismatching entry.
        index: usize,
    },
    /// Timestamps are not monotone.
    TimeRegression {
        /// Index where time ran backwards.
        index: usize,
    },
}

impl fmt::Display for CustodyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CustodyError::BrokenChain { index } => write!(f, "hash chain broken at entry {index}"),
            CustodyError::ContentChanged { index } => {
                write!(f, "content digest changed at entry {index}")
            }
            CustodyError::TimeRegression { index } => {
                write!(f, "timestamp regression at entry {index}")
            }
        }
    }
}

impl std::error::Error for CustodyError {}

/// A hash-chained custody log (possibly covering several items).
///
/// # Examples
///
/// ```
/// use evidence::custody::{CustodyEvent, CustodyLog};
/// use evidence::hash::sha256;
/// use evidence::item::ItemId;
///
/// let mut log = CustodyLog::new();
/// let d = sha256(b"disk image");
/// log.record(ItemId(1), 100, CustodyEvent::Acquired { by: "agent".into() }, d);
/// log.record(ItemId(1), 200, CustodyEvent::Sealed { by: "agent".into() }, d);
/// assert!(log.verify().is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CustodyLog {
    entries: Vec<CustodyEntry>,
}

impl CustodyLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        CustodyLog::default()
    }

    /// Genesis digest for the first link.
    fn genesis() -> Digest {
        sha256(b"lexforensica-custody-genesis")
    }

    /// Appends an event, chaining it to the current head.
    pub fn record(
        &mut self,
        item: ItemId,
        timestamp: u64,
        event: CustodyEvent,
        content_digest: Digest,
    ) -> &CustodyEntry {
        let prev = self
            .entries
            .last()
            .map(|e| e.link)
            .unwrap_or_else(Self::genesis);
        let link = CustodyEntry::compute_link(item, timestamp, &event, content_digest, prev);
        self.entries.push(CustodyEntry {
            item,
            timestamp,
            event,
            content_digest,
            prev,
            link,
        });
        self.entries.last().expect("just pushed")
    }

    /// The entries in order.
    pub fn entries(&self) -> &[CustodyEntry] {
        &self.entries
    }

    /// Entries concerning one item.
    pub fn entries_for(&self, item: ItemId) -> impl Iterator<Item = &CustodyEntry> {
        self.entries.iter().filter(move |e| e.item == item)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Verifies the whole log: hash chain intact, per-item content digests
    /// stable, timestamps monotone.
    ///
    /// # Errors
    ///
    /// Returns the first [`CustodyError`] encountered.
    pub fn verify(&self) -> Result<(), CustodyError> {
        let mut prev_link = Self::genesis();
        let mut prev_time = 0u64;
        let mut last_digest: std::collections::HashMap<ItemId, Digest> = Default::default();
        for (i, e) in self.entries.iter().enumerate() {
            if e.prev != prev_link {
                return Err(CustodyError::BrokenChain { index: i });
            }
            let recomputed =
                CustodyEntry::compute_link(e.item, e.timestamp, &e.event, e.content_digest, e.prev);
            if recomputed != e.link {
                return Err(CustodyError::BrokenChain { index: i });
            }
            if e.timestamp < prev_time {
                return Err(CustodyError::TimeRegression { index: i });
            }
            if let Some(prev_digest) = last_digest.get(&e.item) {
                if *prev_digest != e.content_digest {
                    return Err(CustodyError::ContentChanged { index: i });
                }
            }
            last_digest.insert(e.item, e.content_digest);
            prev_link = e.link;
            prev_time = e.timestamp;
        }
        Ok(())
    }

    /// Testing/failure-injection hook: overwrite an entry's recorded
    /// content digest, simulating a doctored log.
    pub fn tamper_content_digest(&mut self, index: usize, digest: Digest) {
        if let Some(e) = self.entries.get_mut(index) {
            e.content_digest = digest;
        }
    }
}

impl fmt::Display for CustodyLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "t={:<8} {} {}", e.timestamp, e.item, e.event)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(n: u8) -> Digest {
        sha256([n])
    }

    #[test]
    fn empty_log_verifies() {
        assert!(CustodyLog::new().verify().is_ok());
        assert!(CustodyLog::new().is_empty());
    }

    #[test]
    fn well_formed_log_verifies() {
        let mut log = CustodyLog::new();
        let d = digest(1);
        log.record(ItemId(1), 10, CustodyEvent::Acquired { by: "a".into() }, d);
        log.record(
            ItemId(1),
            20,
            CustodyEvent::Transferred {
                from: "a".into(),
                to: "b".into(),
            },
            d,
        );
        log.record(
            ItemId(1),
            30,
            CustodyEvent::Analyzed {
                by: "b".into(),
                tool: "carver".into(),
            },
            d,
        );
        log.record(ItemId(1), 40, CustodyEvent::Sealed { by: "b".into() }, d);
        assert!(log.verify().is_ok());
        assert_eq!(log.len(), 4);
        assert_eq!(log.entries_for(ItemId(1)).count(), 4);
    }

    #[test]
    fn doctored_digest_breaks_chain() {
        let mut log = CustodyLog::new();
        let d = digest(1);
        log.record(ItemId(1), 10, CustodyEvent::Acquired { by: "a".into() }, d);
        log.record(ItemId(1), 20, CustodyEvent::Sealed { by: "a".into() }, d);
        log.tamper_content_digest(0, digest(9));
        // Entry 0's link no longer matches its contents.
        assert_eq!(log.verify(), Err(CustodyError::BrokenChain { index: 0 }));
    }

    #[test]
    fn content_change_between_events_detected() {
        let mut log = CustodyLog::new();
        log.record(
            ItemId(1),
            10,
            CustodyEvent::Acquired { by: "a".into() },
            digest(1),
        );
        // Same item reappears with a different digest — legitimately
        // chained, but the content changed in custody.
        log.record(
            ItemId(1),
            20,
            CustodyEvent::Sealed { by: "a".into() },
            digest(2),
        );
        assert_eq!(log.verify(), Err(CustodyError::ContentChanged { index: 1 }));
    }

    #[test]
    fn multiple_items_tracked_independently() {
        let mut log = CustodyLog::new();
        log.record(
            ItemId(1),
            10,
            CustodyEvent::Acquired { by: "a".into() },
            digest(1),
        );
        log.record(
            ItemId(2),
            15,
            CustodyEvent::Acquired { by: "a".into() },
            digest(2),
        );
        log.record(
            ItemId(1),
            20,
            CustodyEvent::Sealed { by: "a".into() },
            digest(1),
        );
        assert!(log.verify().is_ok());
        assert_eq!(log.entries_for(ItemId(2)).count(), 1);
    }

    #[test]
    fn time_regression_detected() {
        let mut log = CustodyLog::new();
        log.record(
            ItemId(1),
            100,
            CustodyEvent::Acquired { by: "a".into() },
            digest(1),
        );
        log.record(
            ItemId(1),
            50,
            CustodyEvent::Sealed { by: "a".into() },
            digest(1),
        );
        assert_eq!(log.verify(), Err(CustodyError::TimeRegression { index: 1 }));
    }

    #[test]
    fn links_are_distinct() {
        let mut log = CustodyLog::new();
        let d = digest(1);
        let l1 = log
            .record(ItemId(1), 10, CustodyEvent::Acquired { by: "a".into() }, d)
            .link();
        let l2 = log
            .record(ItemId(1), 10, CustodyEvent::Acquired { by: "a".into() }, d)
            .link();
        assert_ne!(l1, l2, "identical events chain to different links");
    }

    #[test]
    fn error_display() {
        let e = CustodyError::BrokenChain { index: 3 };
        assert!(e.to_string().contains("entry 3"));
    }

    #[test]
    fn display_lists_events() {
        let mut log = CustodyLog::new();
        log.record(
            ItemId(1),
            10,
            CustodyEvent::Acquired { by: "ann".into() },
            digest(1),
        );
        assert!(log.to_string().contains("acquired by ann"));
    }
}
