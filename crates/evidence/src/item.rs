//! Evidence items and their acquisition records.

use crate::hash::{sha256, Digest};
use forensic_law::process::LegalProcess;
use std::fmt;

/// Opaque identifier for an evidence item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId(pub u64);

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item-{}", self.0)
    }
}

/// The legal authority under which an item was acquired.
///
/// `required` is what the compliance engine said the action needed;
/// `held` is the process actually in hand at acquisition time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AcquisitionAuthority {
    /// Process the law required for the collecting action.
    pub required: LegalProcess,
    /// Process actually held.
    pub held: LegalProcess,
}

impl AcquisitionAuthority {
    /// Acquisition needing no process.
    pub fn unrestricted() -> Self {
        AcquisitionAuthority {
            required: LegalProcess::None,
            held: LegalProcess::None,
        }
    }

    /// Whether the held process satisfied the requirement.
    pub fn was_lawful(self) -> bool {
        self.held.satisfies(self.required)
    }
}

/// Who/when/how an item entered custody.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acquisition {
    /// The acquiring examiner or officer.
    pub examiner: String,
    /// Seconds since the investigation epoch (caller-supplied, so
    /// simulations stay deterministic).
    pub timestamp: u64,
    /// Free-text method ("dd image of seized drive", "pen/trap tap").
    pub method: String,
    /// The legal footing.
    pub authority: AcquisitionAuthority,
}

/// A piece of digital evidence: content plus its acquisition record and
/// acquisition-time digest.
///
/// # Examples
///
/// ```
/// use evidence::item::{Acquisition, AcquisitionAuthority, EvidenceItem, ItemId};
///
/// let item = EvidenceItem::new(
///     ItemId(1),
///     "disk image",
///     b"raw sectors...".to_vec(),
///     Acquisition {
///         examiner: "agent smith".into(),
///         timestamp: 1000,
///         method: "dd image".into(),
///         authority: AcquisitionAuthority::unrestricted(),
///     },
/// );
/// assert!(item.verify_integrity());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvidenceItem {
    id: ItemId,
    label: String,
    content: Vec<u8>,
    acquisition: Acquisition,
    acquisition_digest: Digest,
}

impl EvidenceItem {
    /// Creates an item, computing its acquisition-time digest.
    pub fn new(
        id: ItemId,
        label: impl Into<String>,
        content: Vec<u8>,
        acquisition: Acquisition,
    ) -> Self {
        let acquisition_digest = sha256(&content);
        EvidenceItem {
            id,
            label: label.into(),
            content,
            acquisition,
            acquisition_digest,
        }
    }

    /// The item id.
    pub fn id(&self) -> ItemId {
        self.id
    }

    /// The label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The current content bytes.
    pub fn content(&self) -> &[u8] {
        &self.content
    }

    /// The acquisition record.
    pub fn acquisition(&self) -> &Acquisition {
        &self.acquisition
    }

    /// Digest computed when the item entered custody.
    pub fn acquisition_digest(&self) -> Digest {
        self.acquisition_digest
    }

    /// Recomputes the digest and checks it against the acquisition-time
    /// value — the basic forensic integrity check.
    pub fn verify_integrity(&self) -> bool {
        sha256(&self.content) == self.acquisition_digest
    }

    /// Simulates tampering (for tests and failure-injection experiments):
    /// flips a byte of content *without* updating the stored digest.
    pub fn tamper(&mut self, offset: usize) {
        if let Some(b) = self.content.get_mut(offset) {
            *b ^= 0xff;
        }
    }
}

impl fmt::Display for EvidenceItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} \"{}\" ({} bytes, sha256 {})",
            self.id,
            self.label,
            self.content.len(),
            self.acquisition_digest
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acq() -> Acquisition {
        Acquisition {
            examiner: "examiner".into(),
            timestamp: 42,
            method: "imaging".into(),
            authority: AcquisitionAuthority::unrestricted(),
        }
    }

    #[test]
    fn fresh_item_verifies() {
        let item = EvidenceItem::new(ItemId(1), "x", vec![1, 2, 3], acq());
        assert!(item.verify_integrity());
        assert_eq!(item.content(), &[1, 2, 3]);
        assert_eq!(item.id(), ItemId(1));
    }

    #[test]
    fn tampering_breaks_verification() {
        let mut item = EvidenceItem::new(ItemId(2), "x", vec![1, 2, 3], acq());
        item.tamper(1);
        assert!(!item.verify_integrity());
    }

    #[test]
    fn tamper_out_of_range_is_noop() {
        let mut item = EvidenceItem::new(ItemId(3), "x", vec![1], acq());
        item.tamper(99);
        assert!(item.verify_integrity());
    }

    #[test]
    fn authority_lawfulness() {
        let lawful = AcquisitionAuthority {
            required: LegalProcess::Subpoena,
            held: LegalProcess::SearchWarrant,
        };
        assert!(lawful.was_lawful());
        let unlawful = AcquisitionAuthority {
            required: LegalProcess::SearchWarrant,
            held: LegalProcess::Subpoena,
        };
        assert!(!unlawful.was_lawful());
        assert!(AcquisitionAuthority::unrestricted().was_lawful());
    }

    #[test]
    fn display_mentions_digest() {
        let item = EvidenceItem::new(ItemId(9), "drive", vec![0; 16], acq());
        let s = item.to_string();
        assert!(s.contains("item-9"));
        assert!(s.contains("16 bytes"));
    }

    #[test]
    fn same_content_same_digest() {
        let a = EvidenceItem::new(ItemId(1), "a", vec![5; 100], acq());
        let b = EvidenceItem::new(ItemId(2), "b", vec![5; 100], acq());
        assert_eq!(a.acquisition_digest(), b.acquisition_digest());
    }
}
