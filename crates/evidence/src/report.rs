//! Forensic report rendering: a human-readable account of a locker's
//! contents, custody history, and admissibility — the artifact an
//! examiner files with the court.

use crate::locker::EvidenceLocker;
use std::fmt;

/// A timeline entry extracted from the custody log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Seconds since the investigation epoch.
    pub timestamp: u64,
    /// Human-readable description.
    pub description: String,
}

/// A rendered forensic report.
#[derive(Debug, Clone)]
pub struct ForensicReport {
    case_name: String,
    timeline: Vec<TimelineEntry>,
    item_sections: Vec<String>,
    admissible: usize,
    excluded: usize,
    custody_intact: bool,
}

impl ForensicReport {
    /// Builds a report over a locker.
    pub fn compile(case_name: impl Into<String>, locker: &EvidenceLocker) -> Self {
        let mut timeline: Vec<TimelineEntry> = locker
            .custody_log()
            .entries()
            .iter()
            .map(|e| TimelineEntry {
                timestamp: e.timestamp(),
                description: format!("{} {}", e.item(), e.event()),
            })
            .collect();
        timeline.sort_by_key(|t| t.timestamp);

        let mut item_sections = Vec::new();
        let mut admissible = 0;
        let mut excluded = 0;
        for item in locker.iter() {
            let verdict = locker
                .admissibility(item.id())
                .expect("item exists in its own locker");
            if verdict.is_admissible() {
                admissible += 1;
            } else {
                excluded += 1;
            }
            let integrity = if item.verify_integrity() {
                "verified"
            } else {
                "FAILED"
            };
            item_sections.push(format!(
                "{item}\n    acquired by {} at t={} via {} (required {}, held {})\n    integrity: {integrity}; admissibility: {verdict}",
                item.acquisition().examiner,
                item.acquisition().timestamp,
                item.acquisition().method,
                item.acquisition().authority.required,
                item.acquisition().authority.held,
            ));
        }
        ForensicReport {
            case_name: case_name.into(),
            timeline,
            item_sections,
            admissible,
            excluded,
            custody_intact: locker.custody_log().verify().is_ok(),
        }
    }

    /// The chronological timeline.
    pub fn timeline(&self) -> &[TimelineEntry] {
        &self.timeline
    }

    /// Count of admissible items.
    pub fn admissible_count(&self) -> usize {
        self.admissible
    }

    /// Count of excluded items.
    pub fn excluded_count(&self) -> usize {
        self.excluded
    }

    /// Whether the shared custody log verifies.
    pub fn custody_intact(&self) -> bool {
        self.custody_intact
    }
}

impl fmt::Display for ForensicReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FORENSIC REPORT — {}", self.case_name)?;
        writeln!(
            f,
            "custody chain: {}; {} admissible, {} excluded",
            if self.custody_intact {
                "intact"
            } else {
                "DEFECTIVE"
            },
            self.admissible,
            self.excluded
        )?;
        writeln!(f, "\nEVIDENCE ITEMS")?;
        for s in &self.item_sections {
            writeln!(f, "  {s}")?;
        }
        writeln!(f, "\nTIMELINE")?;
        for t in &self.timeline {
            writeln!(f, "  t={:<8} {}", t.timestamp, t.description)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forensic_law::process::LegalProcess;

    fn locker() -> EvidenceLocker {
        let mut l = EvidenceLocker::new();
        let a = l.acquire(
            "drive image",
            vec![1, 2, 3],
            "agent a",
            10,
            LegalProcess::SearchWarrant,
            LegalProcess::SearchWarrant,
        );
        l.transfer(a, 20, "agent a", "lab").unwrap();
        l.analyze(a, 30, "lab", "hash sweep").unwrap();
        l.acquire(
            "warrantless capture",
            vec![9],
            "agent b",
            40,
            LegalProcess::WiretapOrder,
            LegalProcess::None,
        );
        l
    }

    #[test]
    fn report_counts_and_timeline() {
        let report = ForensicReport::compile("op test", &locker());
        assert_eq!(report.admissible_count(), 1);
        assert_eq!(report.excluded_count(), 1);
        assert!(report.custody_intact());
        assert_eq!(report.timeline().len(), 4);
        // Chronological.
        for w in report.timeline().windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn rendering_contains_key_facts() {
        let text = ForensicReport::compile("op test", &locker()).to_string();
        assert!(text.contains("FORENSIC REPORT — op test"));
        assert!(text.contains("drive image"));
        assert!(text.contains("integrity: verified"));
        assert!(text.contains("suppressed"));
        assert!(text.contains("TIMELINE"));
        assert!(text.contains("transferred agent a → lab"));
    }

    #[test]
    fn tampered_item_flagged_in_report() {
        let mut l = locker();
        let first = l.iter().next().unwrap().id();
        l.item_mut(first).unwrap().tamper(0);
        let report = ForensicReport::compile("t", &l);
        assert_eq!(report.admissible_count(), 0);
        assert!(report.to_string().contains("integrity: FAILED"));
    }

    #[test]
    fn empty_locker_report() {
        let report = ForensicReport::compile("empty", &EvidenceLocker::new());
        assert_eq!(report.admissible_count(), 0);
        assert_eq!(report.excluded_count(), 0);
        assert!(report.custody_intact());
        assert!(report.timeline().is_empty());
    }
}
