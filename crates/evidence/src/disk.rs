//! A simulated disk image with a file table — the substrate for the
//! paper's Table 1 rows 18–19: drive-wide hash searching (*United States
//! v. Crist*: a search) and mining an already-held dataset (*State v.
//! Sloane*: not a search).

use crate::hash::{sha256, Digest};
use std::collections::BTreeMap;
use std::fmt;

/// A file stored on the simulated disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskFile {
    name: String,
    content: Vec<u8>,
    deleted: bool,
}

impl DiskFile {
    /// The file name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The content bytes.
    pub fn content(&self) -> &[u8] {
        &self.content
    }

    /// Whether the file was "deleted" (still recoverable by forensics —
    /// *United States v. Cox*).
    pub fn is_deleted(&self) -> bool {
        self.deleted
    }

    /// SHA-256 of the content.
    pub fn digest(&self) -> Digest {
        sha256(&self.content)
    }
}

/// A simulated disk image.
///
/// # Examples
///
/// ```
/// use evidence::disk::DiskImage;
/// use evidence::hash::sha256;
///
/// let mut disk = DiskImage::new("suspect laptop");
/// disk.write_file("vacation.jpg", b"beach photo".to_vec());
/// disk.write_file("contraband.dat", b"illegal bytes".to_vec());
///
/// let target = sha256(b"illegal bytes");
/// let hits = disk.hash_search(&[target]);
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0], "contraband.dat");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskImage {
    label: String,
    files: BTreeMap<String, DiskFile>,
}

impl DiskImage {
    /// Creates an empty disk image.
    pub fn new(label: impl Into<String>) -> Self {
        DiskImage {
            label: label.into(),
            files: BTreeMap::new(),
        }
    }

    /// The image label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Writes (or overwrites) a file.
    pub fn write_file(&mut self, name: impl Into<String>, content: Vec<u8>) {
        let name = name.into();
        self.files.insert(
            name.clone(),
            DiskFile {
                name,
                content,
                deleted: false,
            },
        );
    }

    /// Marks a file as deleted (content remains recoverable).
    ///
    /// Returns `false` if the file does not exist.
    pub fn delete_file(&mut self, name: &str) -> bool {
        match self.files.get_mut(name) {
            Some(f) => {
                f.deleted = true;
                true
            }
            None => false,
        }
    }

    /// Number of files (including deleted-but-recoverable ones).
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Iterates all files, live first then deleted, in name order.
    pub fn iter(&self) -> impl Iterator<Item = &DiskFile> {
        self.files.values()
    }

    /// Live (undeleted) files only.
    pub fn live_files(&self) -> impl Iterator<Item = &DiskFile> {
        self.files.values().filter(|f| !f.deleted)
    }

    /// Serializes the whole image to bytes (for acquisition into an
    /// [`EvidenceItem`]); the format is `name\0len:content` repeated in
    /// name order, so equal images serialize identically.
    ///
    /// [`EvidenceItem`]: crate::item::EvidenceItem
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for f in self.files.values() {
            out.extend_from_slice(f.name.as_bytes());
            out.push(0);
            out.push(u8::from(f.deleted));
            out.extend_from_slice(&(f.content.len() as u64).to_be_bytes());
            out.extend_from_slice(&f.content);
        }
        out
    }

    /// The forensic hash search of Table 1 row 18: compare every file
    /// (including recoverable deleted files) against a set of known
    /// target digests. Returns matching file names in order.
    ///
    /// This is the operation *Crist* holds to be a search requiring a
    /// warrant — each file is its own closed container.
    pub fn hash_search(&self, targets: &[Digest]) -> Vec<String> {
        self.files
            .values()
            .filter(|f| targets.contains(&f.digest()))
            .map(|f| f.name.clone())
            .collect()
    }

    /// The Table 1 row-19 operation: derive aggregate statistics from an
    /// already-held dataset without opening new containers.
    pub fn mine_statistics(&self) -> DiskStatistics {
        let mut total_bytes = 0u64;
        let mut deleted = 0usize;
        let mut extensions: BTreeMap<String, usize> = BTreeMap::new();
        for f in self.files.values() {
            total_bytes += f.content.len() as u64;
            if f.deleted {
                deleted += 1;
            }
            let ext = f
                .name
                .rsplit_once('.')
                .map(|(_, e)| e.to_string())
                .unwrap_or_else(|| "<none>".to_string());
            *extensions.entry(ext).or_insert(0) += 1;
        }
        DiskStatistics {
            files: self.files.len(),
            deleted,
            total_bytes,
            extensions,
        }
    }
}

/// Aggregates produced by [`DiskImage::mine_statistics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskStatistics {
    /// Total file count.
    pub files: usize,
    /// Deleted (recoverable) files.
    pub deleted: usize,
    /// Total content bytes.
    pub total_bytes: u64,
    /// File counts by extension.
    pub extensions: BTreeMap<String, usize>,
}

impl fmt::Display for DiskStatistics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} files ({} deleted), {} bytes",
            self.files, self.deleted, self.total_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskImage {
        let mut d = DiskImage::new("test disk");
        d.write_file("a.txt", b"alpha".to_vec());
        d.write_file("b.jpg", b"bravo image".to_vec());
        d.write_file("c.jpg", b"charlie image".to_vec());
        d.delete_file("c.jpg");
        d
    }

    #[test]
    fn write_and_count() {
        let d = disk();
        assert_eq!(d.file_count(), 3);
        assert_eq!(d.live_files().count(), 2);
        assert_eq!(d.iter().count(), 3);
        assert_eq!(d.label(), "test disk");
    }

    #[test]
    fn delete_marks_but_preserves() {
        let mut d = disk();
        assert!(!d.delete_file("nope"));
        let c = d.iter().find(|f| f.name() == "c.jpg").unwrap();
        assert!(c.is_deleted());
        assert_eq!(c.content(), b"charlie image");
    }

    #[test]
    fn hash_search_finds_live_and_deleted() {
        let d = disk();
        let targets = [sha256(b"charlie image"), sha256(b"alpha")];
        let hits = d.hash_search(&targets);
        assert_eq!(hits, vec!["a.txt".to_string(), "c.jpg".to_string()]);
    }

    #[test]
    fn hash_search_no_false_positives() {
        let d = disk();
        assert!(d.hash_search(&[sha256(b"not present")]).is_empty());
    }

    #[test]
    fn serialization_is_deterministic_and_injective() {
        let d1 = disk();
        let d2 = disk();
        assert_eq!(d1.to_bytes(), d2.to_bytes());
        let mut d3 = disk();
        d3.write_file("d.txt", b"delta".to_vec());
        assert_ne!(d1.to_bytes(), d3.to_bytes());
    }

    #[test]
    fn statistics_mining() {
        let stats = disk().mine_statistics();
        assert_eq!(stats.files, 3);
        assert_eq!(stats.deleted, 1);
        assert_eq!(stats.extensions["jpg"], 2);
        assert_eq!(stats.extensions["txt"], 1);
        assert!(stats.to_string().contains("3 files"));
    }

    #[test]
    fn overwrite_replaces() {
        let mut d = disk();
        d.write_file("a.txt", b"new alpha".to_vec());
        assert_eq!(d.file_count(), 3);
        assert!(d.hash_search(&[sha256(b"alpha")]).is_empty());
        assert_eq!(d.hash_search(&[sha256(b"new alpha")]), vec!["a.txt"]);
    }

    #[test]
    fn extensionless_files_bucketed() {
        let mut d = DiskImage::new("x");
        d.write_file("README", b"hi".to_vec());
        assert_eq!(d.mine_statistics().extensions["<none>"], 1);
    }
}
