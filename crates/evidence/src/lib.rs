//! # evidence
//!
//! Digital-evidence handling substrate for the `lexforensica` workspace:
//! a from-scratch SHA-256/HMAC implementation, evidence items with
//! acquisition-time digests, a tamper-evident (hash-chained) chain of
//! custody, and a courtroom admissibility evaluator that combines
//! forensic integrity with the [`forensic-law`] suppression analysis.
//!
//! The paper's central warning — unlawfully gathered evidence "may be
//! suppressed in court" — becomes executable here: an
//! [`EvidenceLocker`] tracks, for every item, the
//! process the law *required* and the process the investigator *held*,
//! and rules accordingly.
//!
//! [`EvidenceLocker`]: locker::EvidenceLocker
//!
//! ```
//! use evidence::locker::EvidenceLocker;
//! use forensic_law::process::LegalProcess;
//!
//! let mut locker = EvidenceLocker::new();
//! // A full-content capture that needed a wiretap order, made without one:
//! let capture = locker.acquire(
//!     "packet capture", b"payload...".to_vec(), "agent", 100,
//!     LegalProcess::WiretapOrder, LegalProcess::None,
//! );
//! assert!(!locker.admissibility(capture).unwrap().is_admissible());
//! ```
//!
//! [`forensic-law`]: forensic_law

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admissibility;
pub mod custody;
pub mod disk;
pub mod hash;
pub mod item;
pub mod locker;
pub mod report;

pub use disk::{DiskImage, DiskStatistics};
pub use hash::{hmac_sha256, sha256, Digest, Sha256};
pub use item::{EvidenceItem, ItemId};
pub use locker::EvidenceLocker;
pub use report::ForensicReport;
