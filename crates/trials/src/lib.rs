//! # trials
//!
//! A parallel, deterministic experiment-trial runner.
//!
//! Every evaluation harness in this workspace has the same shape: run `N`
//! independent, seeded trials of a pure function of the trial index and
//! aggregate the outcomes. Sequential loops leave all but one core idle;
//! naive thread pools destroy reproducibility by letting scheduling leak
//! into results. [`TrialRunner`] fans trials across scoped worker threads
//! while keeping the determinism contract:
//!
//! * **Purity** — the trial closure must be a pure function of the trial
//!   index (and whatever config it captures immutably). Per-trial
//!   randomness comes from a seed derived with [`derive_seed`], never
//!   from shared mutable state.
//! * **Order preservation** — results are returned indexed by trial, not
//!   by completion order. Worker `w` of `k` owns the stride
//!   `w, w + k, w + 2k, …` and writes each outcome into that trial's
//!   pre-assigned slot.
//! * **Worker-count independence** — because each trial is pure and slots
//!   are positional, the result vector is bit-for-bit identical at any
//!   thread count. Only the wall clock changes.
//!
//! ```
//! use trials::TrialRunner;
//!
//! let f = |t: u64| t * t;
//! let (seq, _) = TrialRunner::sequential().run(100, f);
//! let (par, report) = TrialRunner::with_threads(8).run(100, f);
//! assert_eq!(seq, par);
//! assert_eq!(report.per_worker.iter().sum::<u64>(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::time::{Duration, Instant};

/// Derives the RNG seed for one trial from a master seed.
///
/// One SplitMix64 round over the `(master, trial)` pair: adjacent trial
/// indices land on well-separated, statistically independent seeds, and
/// the mapping is a pure function — the foundation of the runner's
/// worker-count-independence guarantee. The finalizer is the workspace's
/// single shared SplitMix64 in [`simcore::rng`], pinned there by golden
/// stream tests, so per-trial seeds and simulator RNG streams can never
/// silently drift apart.
pub use simcore::rng::derive_seed;

/// What one [`TrialRunner::run`] call observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialReport {
    /// Trials executed.
    pub trials: usize,
    /// Worker threads used (after clamping to the trial count).
    pub threads: usize,
    /// Wall-clock time for the whole fan-out.
    pub elapsed: Duration,
    /// Trials executed by each worker (deterministic: stride assignment,
    /// not completion-order stealing).
    pub per_worker: Vec<u64>,
}

impl TrialReport {
    /// Trials per wall-clock second (`f64::INFINITY` for a zero-duration
    /// run).
    pub fn trials_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.trials as f64 / secs
        }
    }
}

/// Fans independent trials across scoped worker threads.
///
/// See the [module docs](self) for the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialRunner {
    threads: usize,
}

impl Default for TrialRunner {
    fn default() -> Self {
        TrialRunner::new()
    }
}

impl TrialRunner {
    /// A runner with one worker per available core.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        TrialRunner { threads }
    }

    /// A single-worker runner: runs trials inline on the calling thread
    /// with zero spawn overhead — the reference baseline every parallel
    /// run must match bit-for-bit.
    pub fn sequential() -> Self {
        TrialRunner { threads: 1 }
    }

    /// A runner with exactly `threads` workers (clamped to at least one).
    pub fn with_threads(threads: usize) -> Self {
        TrialRunner {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` for every trial index in `0..trials`, in parallel,
    /// returning outcomes ordered by trial index plus a [`TrialReport`].
    ///
    /// `f` must be a pure function of the trial index; under that
    /// contract the returned vector is identical at any worker count.
    pub fn run<T, F>(&self, trials: usize, f: F) -> (Vec<T>, TrialReport)
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        let start = Instant::now();
        let threads = self.threads.min(trials.max(1));
        let mut slots: Vec<Option<T>> = Vec::with_capacity(trials);
        slots.resize_with(trials, || None);
        let mut per_worker = vec![0u64; threads];

        if threads == 1 {
            for (t, slot) in slots.iter_mut().enumerate() {
                *slot = Some(f(t as u64));
            }
            per_worker[0] = trials as u64;
        } else {
            // Deal the pre-assigned output slots round-robin: worker w
            // owns trials w, w+threads, … — static striding balances
            // smoothly-varying trial costs and keeps the assignment (and
            // so the per-worker counts) deterministic.
            let mut lanes: Vec<Vec<(u64, &mut Option<T>)>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (t, slot) in slots.iter_mut().enumerate() {
                lanes[t % threads].push((t as u64, slot));
            }
            for (w, lane) in lanes.iter().enumerate() {
                per_worker[w] = lane.len() as u64;
            }
            let f = &f;
            std::thread::scope(|scope| {
                for lane in lanes {
                    scope.spawn(move || {
                        for (t, slot) in lane {
                            *slot = Some(f(t));
                        }
                    });
                }
            });
        }

        let results = slots
            .into_iter()
            .map(|s| s.expect("every worker fills all of its owned slots"))
            .collect();
        let report = TrialReport {
            trials,
            threads,
            elapsed: start.elapsed(),
            per_worker,
        };
        (results, report)
    }

    /// Like [`run`](Self::run), but hands each trial its
    /// [`derive_seed`]-derived seed alongside the index.
    pub fn run_seeded<T, F>(&self, master_seed: u64, trials: usize, f: F) -> (Vec<T>, TrialReport)
    where
        T: Send,
        F: Fn(u64, u64) -> T + Sync,
    {
        self.run(trials, |t| f(t, derive_seed(master_seed, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_ordered_by_trial_index() {
        let (out, _) = TrialRunner::with_threads(4).run(37, |t| t);
        assert_eq!(out, (0..37).collect::<Vec<u64>>());
    }

    #[test]
    fn identical_results_at_any_worker_count() {
        let f = |t: u64| derive_seed(0xfeed, t).wrapping_mul(t + 1);
        let (one, _) = TrialRunner::sequential().run(101, f);
        for threads in [2, 3, 8, 16] {
            let (many, report) = TrialRunner::with_threads(threads).run(101, f);
            assert_eq!(one, many, "results diverged at {threads} workers");
            assert_eq!(report.per_worker.iter().sum::<u64>(), 101);
        }
    }

    #[test]
    fn per_worker_counts_use_stride_assignment() {
        let (_, report) = TrialRunner::with_threads(4).run(10, |t| t);
        assert_eq!(report.threads, 4);
        assert_eq!(report.per_worker, vec![3, 3, 2, 2]);
    }

    #[test]
    fn threads_clamped_to_trial_count() {
        let (out, report) = TrialRunner::with_threads(64).run(3, |t| t);
        assert_eq!(out.len(), 3);
        assert_eq!(report.threads, 3);
    }

    #[test]
    fn zero_trials_is_fine() {
        let (out, report) = TrialRunner::new().run(0, |t| t);
        assert!(out.is_empty());
        assert_eq!(report.trials, 0);
        assert_eq!(report.per_worker.iter().sum::<u64>(), 0);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(TrialRunner::with_threads(0).threads(), 1);
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..100).map(|t| derive_seed(7, t)).collect();
        let b: Vec<u64> = (0..100).map(|t| derive_seed(7, t)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "seed collision");
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn run_seeded_passes_derived_seed() {
        let (out, _) = TrialRunner::with_threads(2).run_seeded(42, 5, |t, s| (t, s));
        for (t, s) in out {
            assert_eq!(s, derive_seed(42, t));
        }
    }

    #[test]
    fn report_throughput_is_positive() {
        let (_, report) = TrialRunner::sequential().run(10, |t| {
            std::thread::sleep(Duration::from_micros(10));
            t
        });
        assert!(report.trials_per_second() > 0.0);
        assert!(report.elapsed >= Duration::from_micros(100));
    }
}
