//! Small statistics helpers shared by the experiment harnesses.

/// Summary statistics over a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes summary statistics; returns `None` for an empty sample.
///
/// # Examples
///
/// ```
/// use netsim::stats::summarize;
///
/// let s = summarize(&[1.0, 2.0, 3.0]).unwrap();
/// assert_eq!(s.mean, 2.0);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 3.0);
/// ```
pub fn summarize(samples: &[f64]) -> Option<Summary> {
    if samples.is_empty() {
        return None;
    }
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some(Summary {
        n,
        mean,
        std_dev: var.sqrt(),
        min,
        max,
    })
}

/// The `p`-quantile (0 ≤ p ≤ 1) by nearest-rank on a sorted copy.
///
/// Returns `None` on an empty sample.
pub fn quantile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    let idx = ((sorted.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
    Some(sorted[idx])
}

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns `None` when lengths differ, are < 2, or either series is
/// constant.
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va.sqrt() * vb.sqrt()))
}

/// Precision/recall/F1 over binary classification counts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Classification {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Classification {
    /// Records one labelled prediction.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Precision (1.0 when no positive predictions were made).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall (1.0 when there were no actual positives).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Accuracy over all predictions.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// F1 score (0.0 when precision+recall is 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_basic() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summarize_empty() {
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn quantiles() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(100.0));
        assert_eq!(quantile(&v, 0.5), Some(51.0)); // nearest-rank: index round(49.5)=50
        assert!(quantile(&[], 0.5).is_none());
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn classification_metrics() {
        let mut c = Classification::default();
        for _ in 0..8 {
            c.record(true, true);
        }
        c.record(true, false);
        c.record(false, true);
        for _ in 0..10 {
            c.record(false, false);
        }
        assert!((c.precision() - 8.0 / 9.0).abs() < 1e-12);
        assert!((c.recall() - 8.0 / 9.0).abs() < 1e-12);
        assert!((c.accuracy() - 18.0 / 20.0).abs() < 1e-12);
        assert!(c.f1() > 0.88);
    }

    #[test]
    fn classification_degenerate() {
        let c = Classification::default();
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }
}
