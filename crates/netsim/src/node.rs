//! Nodes, links, and the topology graph.

use crate::rng::SimRng;
use crate::time::SimDuration;
use std::fmt;

/// Identifier of a node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a (bidirectional) link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A bidirectional link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Capacity in bits per second (0 = infinite, no serialization delay).
    pub bandwidth_bps: u64,
    /// Uniform jitter bound added per traversal.
    pub jitter: SimDuration,
    /// Independent per-traversal drop probability.
    pub loss_prob: f64,
}

impl Link {
    /// A link with given latency and no bandwidth limit or jitter.
    pub fn with_latency(a: NodeId, b: NodeId, latency: SimDuration) -> Self {
        Link {
            a,
            b,
            latency,
            bandwidth_bps: 0,
            jitter: SimDuration::ZERO,
            loss_prob: 0.0,
        }
    }

    /// Whether a traversal is dropped, sampled from `rng`.
    pub fn sample_loss(&self, rng: &mut SimRng) -> bool {
        self.loss_prob > 0.0 && rng.chance(self.loss_prob)
    }

    /// The peer endpoint seen from `from`, if `from` is an endpoint.
    pub fn peer_of(&self, from: NodeId) -> Option<NodeId> {
        if from == self.a {
            Some(self.b)
        } else if from == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Serialization (transmission) time for `bytes` on this link; zero
    /// for unlimited-bandwidth links.
    pub fn serialization_time(&self, bytes: u32) -> SimDuration {
        if self.bandwidth_bps == 0 {
            return SimDuration::ZERO;
        }
        let bits = bytes as u64 * 8;
        SimDuration::from_nanos(bits.saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }

    /// Total traversal delay for `bytes` at this link, sampling jitter
    /// from `rng`. Does **not** include queueing — the simulator adds
    /// that from its per-link transmitter state.
    pub fn traversal_delay(&self, bytes: u32, rng: &mut SimRng) -> SimDuration {
        let mut d = self.latency + self.serialization_time(bytes);
        if self.jitter > SimDuration::ZERO {
            d += SimDuration::from_nanos(rng.next_below(self.jitter.as_nanos().max(1)));
        }
        d
    }
}

/// The static topology: nodes (by count) and links, with shortest-path
/// routing precomputed on demand.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    node_count: usize,
    links: Vec<Link>,
    adjacency: Vec<Vec<(LinkId, NodeId)>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.node_count);
        self.node_count += 1;
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds `n` nodes, returning their ids.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Adds a bidirectional link.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist or the link is a
    /// self-loop.
    pub fn add_link(&mut self, link: Link) -> LinkId {
        assert!(link.a.0 < self.node_count, "unknown node {}", link.a);
        assert!(link.b.0 < self.node_count, "unknown node {}", link.b);
        assert_ne!(link.a, link.b, "self-loops not allowed");
        let id = LinkId(self.links.len());
        self.adjacency[link.a.0].push((id, link.b));
        self.adjacency[link.b.0].push((id, link.a));
        self.links.push(link);
        id
    }

    /// Convenience: connect two nodes with a latency-only link.
    pub fn connect(&mut self, a: NodeId, b: NodeId, latency: SimDuration) -> LinkId {
        self.add_link(Link::with_latency(a, b, latency))
    }

    /// The link record.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Neighbors of a node as `(link, peer)` pairs.
    pub fn neighbors(&self, node: NodeId) -> &[(LinkId, NodeId)] {
        &self.adjacency[node.0]
    }

    /// Computes next-hop routing from every node toward `dst` using BFS
    /// over hop count (uniform metric). Returns `routes[node] =
    /// Some((link, next))` or `None` when unreachable (or `node == dst`).
    pub fn routes_toward(&self, dst: NodeId) -> Vec<Option<(LinkId, NodeId)>> {
        let mut next: Vec<Option<(LinkId, NodeId)>> = vec![None; self.node_count];
        let mut dist: Vec<usize> = vec![usize::MAX; self.node_count];
        let mut queue = std::collections::VecDeque::new();
        dist[dst.0] = 0;
        queue.push_back(dst);
        while let Some(u) = queue.pop_front() {
            for &(l, v) in &self.adjacency[u.0] {
                if dist[v.0] == usize::MAX {
                    dist[v.0] = dist[u.0] + 1;
                    // From v, the way toward dst is via link l to u.
                    next[v.0] = Some((l, u));
                    queue.push_back(v);
                }
            }
        }
        next
    }

    /// The full hop path from `src` to `dst` (inclusive of both), if
    /// reachable.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        let routes = self.routes_toward(dst);
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let (_, nxt) = routes[cur.0]?;
            path.push(nxt);
            cur = nxt;
            if path.len() > self.node_count + 1 {
                return None; // defensive: malformed routing
            }
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let nodes = t.add_nodes(n);
        for w in nodes.windows(2) {
            t.connect(w[0], w[1], SimDuration::from_millis(10));
        }
        (t, nodes)
    }

    #[test]
    fn add_and_count() {
        let (t, nodes) = line(4);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.links().len(), 3);
        assert_eq!(t.neighbors(nodes[1]).len(), 2);
        assert_eq!(t.neighbors(nodes[0]).len(), 1);
    }

    #[test]
    fn peer_of() {
        let l = Link::with_latency(NodeId(0), NodeId(1), SimDuration::from_millis(1));
        assert_eq!(l.peer_of(NodeId(0)), Some(NodeId(1)));
        assert_eq!(l.peer_of(NodeId(1)), Some(NodeId(0)));
        assert_eq!(l.peer_of(NodeId(2)), None);
    }

    #[test]
    fn bfs_routes_follow_line() {
        let (t, nodes) = line(5);
        let routes = t.routes_toward(nodes[4]);
        // From node 0 the next hop toward 4 is node 1.
        assert_eq!(routes[0].unwrap().1, nodes[1]);
        assert_eq!(routes[3].unwrap().1, nodes[4]);
        assert!(routes[4].is_none());
    }

    #[test]
    fn path_reconstruction() {
        let (t, nodes) = line(5);
        let p = t.path(nodes[0], nodes[4]).unwrap();
        assert_eq!(p, nodes);
        assert_eq!(t.path(nodes[2], nodes[2]).unwrap(), vec![nodes[2]]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut t = Topology::new();
        let a = t.add_node();
        let b = t.add_node();
        assert!(t.path(a, b).is_none());
    }

    #[test]
    fn traversal_delay_includes_serialization() {
        let mut rng = SimRng::seed_from(1);
        let mut l = Link::with_latency(NodeId(0), NodeId(1), SimDuration::from_millis(10));
        l.bandwidth_bps = 8_000_000; // 8 Mbit/s → 1 MB/s
                                     // 1000 bytes at 1 MB/s = 1 ms serialization.
        let d = l.traversal_delay(1000, &mut rng);
        assert_eq!(d, SimDuration::from_millis(11));
    }

    #[test]
    fn jitter_bounded() {
        let mut rng = SimRng::seed_from(2);
        let mut l = Link::with_latency(NodeId(0), NodeId(1), SimDuration::from_millis(10));
        l.jitter = SimDuration::from_millis(5);
        for _ in 0..100 {
            let d = l.traversal_delay(0, &mut rng);
            assert!(d >= SimDuration::from_millis(10));
            assert!(d < SimDuration::from_millis(15));
        }
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        let a = t.add_node();
        t.connect(a, a, SimDuration::ZERO);
    }

    #[test]
    fn star_topology_routes_through_hub() {
        let mut t = Topology::new();
        let hub = t.add_node();
        let leaves = t.add_nodes(4);
        for &l in &leaves {
            t.connect(hub, l, SimDuration::from_millis(1));
        }
        let p = t.path(leaves[0], leaves[3]).unwrap();
        assert_eq!(p, vec![leaves[0], hub, leaves[3]]);
    }
}
