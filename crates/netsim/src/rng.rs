//! A small deterministic RNG (SplitMix64 seeding an xoshiro256++ core)
//! with the distributions the traffic generators need.
//!
//! The implementation lives in [`simcore::rng`] — one shared SplitMix64
//! for the whole workspace, pinned by golden stream tests — and is
//! re-exported here so existing `netsim::rng::SimRng` / prelude imports
//! keep working unchanged, on the exact same output streams.

pub use simcore::rng::SimRng;
