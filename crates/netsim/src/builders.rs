//! Ready-made topology builders for the experiment harnesses.

use crate::node::{NodeId, Topology};
use crate::rng::SimRng;
use crate::time::SimDuration;

/// A line of `n` nodes with uniform link latency.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn line(n: usize, latency: SimDuration) -> (Topology, Vec<NodeId>) {
    assert!(n > 0, "need at least one node");
    let mut topo = Topology::new();
    let nodes = topo.add_nodes(n);
    for w in nodes.windows(2) {
        topo.connect(w[0], w[1], latency);
    }
    (topo, nodes)
}

/// A star: one hub connected to `leaves` leaf nodes.
///
/// Returns `(topology, hub, leaves)`.
pub fn star(leaves: usize, latency: SimDuration) -> (Topology, NodeId, Vec<NodeId>) {
    let mut topo = Topology::new();
    let hub = topo.add_node();
    let leaf_nodes = topo.add_nodes(leaves);
    for &l in &leaf_nodes {
        topo.connect(hub, l, latency);
    }
    (topo, hub, leaf_nodes)
}

/// A dumbbell: `left` clients and `right` servers joined by a two-router
/// bottleneck link.
///
/// Returns `(topology, left_nodes, left_router, right_router,
/// right_nodes)`.
pub fn dumbbell(
    left: usize,
    right: usize,
    access_latency: SimDuration,
    bottleneck_latency: SimDuration,
) -> (Topology, Vec<NodeId>, NodeId, NodeId, Vec<NodeId>) {
    let mut topo = Topology::new();
    let left_router = topo.add_node();
    let right_router = topo.add_node();
    topo.connect(left_router, right_router, bottleneck_latency);
    let left_nodes = topo.add_nodes(left);
    for &n in &left_nodes {
        topo.connect(n, left_router, access_latency);
    }
    let right_nodes = topo.add_nodes(right);
    for &n in &right_nodes {
        topo.connect(n, right_router, access_latency);
    }
    (topo, left_nodes, left_router, right_router, right_nodes)
}

/// A connected random graph: a ring plus random chords until the average
/// degree approaches `degree`, with latencies uniform in
/// `[lat_lo, lat_hi)` milliseconds.
///
/// # Panics
///
/// Panics if `n < 3` or `lat_lo >= lat_hi`.
pub fn random_connected(
    n: usize,
    degree: usize,
    lat_lo_ms: u64,
    lat_hi_ms: u64,
    rng: &mut SimRng,
) -> (Topology, Vec<NodeId>) {
    assert!(n >= 3, "need at least three nodes for a ring");
    let mut topo = Topology::new();
    let nodes = topo.add_nodes(n);
    let mut edges = std::collections::BTreeSet::new();
    for i in 0..n {
        let j = (i + 1) % n;
        edges.insert((i.min(j), i.max(j)));
    }
    let target = n * degree / 2;
    let mut guard = 0;
    while edges.len() < target && guard < 100_000 {
        guard += 1;
        let a = rng.next_below(n as u64) as usize;
        let b = rng.next_below(n as u64) as usize;
        if a != b {
            edges.insert((a.min(b), a.max(b)));
        }
    }
    for (a, b) in edges {
        let lat = SimDuration::from_millis(rng.range(lat_lo_ms, lat_hi_ms));
        topo.connect(nodes[a], nodes[b], lat);
    }
    (topo, nodes)
}

/// A balanced binary tree of the given depth (depth 0 = a single root).
///
/// Returns `(topology, all_nodes_in_bfs_order)`; the root is index 0 and
/// the leaves are the last `2^depth` entries.
pub fn binary_tree(depth: u32, latency: SimDuration) -> (Topology, Vec<NodeId>) {
    let mut topo = Topology::new();
    let total = (1usize << (depth + 1)) - 1;
    let nodes = topo.add_nodes(total);
    for i in 1..total {
        let parent = (i - 1) / 2;
        topo.connect(nodes[parent], nodes[i], latency);
    }
    (topo, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_shape() {
        let (topo, nodes) = line(5, SimDuration::from_millis(1));
        assert_eq!(topo.node_count(), 5);
        assert_eq!(topo.links().len(), 4);
        assert_eq!(topo.path(nodes[0], nodes[4]).unwrap().len(), 5);
    }

    #[test]
    fn star_shape() {
        let (topo, hub, leaves) = star(6, SimDuration::from_millis(1));
        assert_eq!(topo.node_count(), 7);
        assert_eq!(topo.neighbors(hub).len(), 6);
        let p = topo.path(leaves[0], leaves[5]).unwrap();
        assert_eq!(p, vec![leaves[0], hub, leaves[5]]);
    }

    #[test]
    fn dumbbell_shape() {
        let (topo, left, lr, rr, right) = dumbbell(
            3,
            2,
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        assert_eq!(topo.node_count(), 7);
        let p = topo.path(left[0], right[1]).unwrap();
        assert_eq!(p, vec![left[0], lr, rr, right[1]]);
    }

    #[test]
    fn random_graph_connected_and_degree_bounded() {
        let mut rng = SimRng::seed_from(1);
        let (topo, nodes) = random_connected(20, 4, 5, 30, &mut rng);
        // Connectivity: every pair reachable.
        for &n in &nodes[1..] {
            assert!(topo.path(nodes[0], n).is_some());
        }
        // Edge count ≈ n*degree/2 (ring guarantees ≥ n).
        assert!(topo.links().len() >= 20);
        assert!(topo.links().len() <= 20 * 4 / 2);
    }

    #[test]
    fn random_graph_deterministic() {
        let build = || {
            let mut rng = SimRng::seed_from(9);
            let (topo, _) = random_connected(12, 3, 5, 20, &mut rng);
            topo.links()
                .iter()
                .map(|l| (l.a, l.b, l.latency))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn binary_tree_shape() {
        let (topo, nodes) = binary_tree(3, SimDuration::from_millis(1));
        assert_eq!(topo.node_count(), 15);
        assert_eq!(topo.links().len(), 14);
        // Leaf to leaf goes through the root at most 2*depth hops.
        let p = topo.path(nodes[7], nodes[14]).unwrap();
        assert!(p.len() <= 7);
        assert_eq!(topo.neighbors(nodes[0]).len(), 2);
    }

    #[test]
    fn depth_zero_tree_is_single_node() {
        let (topo, nodes) = binary_tree(0, SimDuration::from_millis(1));
        assert_eq!(topo.node_count(), 1);
        assert_eq!(nodes.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_line_panics() {
        line(0, SimDuration::ZERO);
    }
}
