//! Traffic generators and sinks, implemented as [`Protocol`]s.

use crate::node::NodeId;
use crate::packet::{FlowId, Packet, Transport};
use crate::sim::{Context, Protocol};
use crate::time::{SimDuration, SimTime};

const TICK: u64 = 1;

fn make_packet(ctx: &mut Context<'_>, dst: NodeId, flow: FlowId, payload_len: usize) -> Packet {
    Packet::new(
        ctx.node(),
        dst,
        Transport::Udp {
            src_port: 40_000,
            dst_port: 9,
        },
        flow,
        vec![0u8; payload_len],
    )
}

/// Constant-bit-rate source: one `payload_len`-byte packet every
/// `interval`, forever (until the simulation deadline).
#[derive(Debug, Clone)]
pub struct CbrSource {
    dst: NodeId,
    flow: FlowId,
    payload_len: usize,
    interval: SimDuration,
    stop_at: Option<SimTime>,
    sent: u64,
}

impl CbrSource {
    /// Creates a CBR source toward `dst`.
    pub fn new(dst: NodeId, flow: FlowId, payload_len: usize, interval: SimDuration) -> Self {
        CbrSource {
            dst,
            flow,
            payload_len,
            interval,
            stop_at: None,
            sent: 0,
        }
    }

    /// Stops emitting at the given time.
    #[must_use]
    pub fn until(mut self, stop_at: SimTime) -> Self {
        self.stop_at = Some(stop_at);
        self
    }

    /// Packets emitted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl Protocol for CbrSource {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.interval, TICK);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if let Some(stop) = self.stop_at {
            if ctx.time() > stop {
                return;
            }
        }
        let p = make_packet(ctx, self.dst, self.flow, self.payload_len);
        ctx.send(p);
        self.sent += 1;
        ctx.set_timer(self.interval, TICK);
    }
}

/// Poisson source: exponential inter-arrival times with the given mean
/// rate (packets per second).
#[derive(Debug, Clone)]
pub struct PoissonSource {
    dst: NodeId,
    flow: FlowId,
    payload_len: usize,
    rate_pps: f64,
    stop_at: Option<SimTime>,
    sent: u64,
}

impl PoissonSource {
    /// Creates a Poisson source toward `dst` emitting `rate_pps` packets
    /// per second on average.
    ///
    /// # Panics
    ///
    /// Panics if `rate_pps <= 0`.
    pub fn new(dst: NodeId, flow: FlowId, payload_len: usize, rate_pps: f64) -> Self {
        assert!(rate_pps > 0.0, "rate must be positive");
        PoissonSource {
            dst,
            flow,
            payload_len,
            rate_pps,
            stop_at: None,
            sent: 0,
        }
    }

    /// Stops emitting at the given time.
    #[must_use]
    pub fn until(mut self, stop_at: SimTime) -> Self {
        self.stop_at = Some(stop_at);
        self
    }

    /// Packets emitted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn schedule_next(&self, ctx: &mut Context<'_>) {
        let gap = ctx.rng().exponential(self.rate_pps);
        ctx.set_timer(SimDuration::from_secs_f64(gap), TICK);
    }
}

impl Protocol for PoissonSource {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.schedule_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if let Some(stop) = self.stop_at {
            if ctx.time() > stop {
                return;
            }
        }
        let p = make_packet(ctx, self.dst, self.flow, self.payload_len);
        ctx.send(p);
        self.sent += 1;
        self.schedule_next(ctx);
    }
}

/// Pareto on/off source: heavy-tailed bursts (on periods) alternating with
/// silences (off periods); during bursts it emits CBR packets.
#[derive(Debug, Clone)]
pub struct ParetoOnOffSource {
    dst: NodeId,
    flow: FlowId,
    payload_len: usize,
    burst_interval: SimDuration,
    on_mean_s: f64,
    off_mean_s: f64,
    shape: f64,
    on: bool,
    epoch: u64,
    sent: u64,
}

const TOGGLE: u64 = 2;
const TICK_BASE: u64 = 1000;

impl ParetoOnOffSource {
    /// Creates an on/off source. `on_mean_s`/`off_mean_s` are the mean
    /// burst/silence durations; `shape` is the Pareto tail index
    /// (1 < shape ≤ 2 gives self-similar traffic).
    pub fn new(
        dst: NodeId,
        flow: FlowId,
        payload_len: usize,
        burst_interval: SimDuration,
        on_mean_s: f64,
        off_mean_s: f64,
        shape: f64,
    ) -> Self {
        ParetoOnOffSource {
            dst,
            flow,
            payload_len,
            burst_interval,
            on_mean_s,
            off_mean_s,
            shape,
            on: false,
            epoch: 0,
            sent: 0,
        }
    }

    /// Packets emitted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn pareto_duration(&self, ctx: &mut Context<'_>, mean_s: f64) -> SimDuration {
        // For Pareto, mean = xm * alpha / (alpha - 1); invert for xm.
        let alpha = self.shape;
        let xm = mean_s * (alpha - 1.0) / alpha;
        SimDuration::from_secs_f64(ctx.rng().pareto(xm.max(1e-6), alpha))
    }
}

impl ParetoOnOffSource {
    fn enter_on(&mut self, ctx: &mut Context<'_>) {
        self.on = true;
        self.epoch += 1;
        ctx.set_timer(SimDuration::ZERO, TICK_BASE + self.epoch);
        let on = self.pareto_duration(ctx, self.on_mean_s);
        ctx.set_timer(on, TOGGLE);
    }
}

impl Protocol for ParetoOnOffSource {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.enter_on(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == TOGGLE {
            if self.on {
                // Burst ended: go silent, then start the next burst.
                self.on = false;
                let off = self.pareto_duration(ctx, self.off_mean_s);
                ctx.set_timer(off, TOGGLE);
            } else {
                self.enter_on(ctx);
            }
        } else if token == TICK_BASE + self.epoch && self.on {
            // A tick belonging to the current burst epoch: emit and
            // reschedule. Ticks from earlier epochs die here.
            let p = make_packet(ctx, self.dst, self.flow, self.payload_len);
            ctx.send(p);
            self.sent += 1;
            ctx.set_timer(self.burst_interval, token);
        }
    }
}

/// A sink that counts deliveries and records arrival times.
#[derive(Debug, Clone, Default)]
pub struct CountingSink {
    received: u64,
    bytes: u64,
    arrivals: Vec<SimTime>,
    delays: Vec<SimDuration>,
}

impl CountingSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Packets received.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Bytes received.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Arrival timestamps.
    pub fn arrivals(&self) -> &[SimTime] {
        &self.arrivals
    }

    /// End-to-end delays (arrival − send stamp).
    pub fn delays(&self) -> &[SimDuration] {
        &self.delays
    }

    /// Mean end-to-end delay in seconds, if any packets arrived.
    pub fn mean_delay_s(&self) -> Option<f64> {
        if self.delays.is_empty() {
            None
        } else {
            Some(
                self.delays.iter().map(|d| d.as_secs_f64()).sum::<f64>() / self.delays.len() as f64,
            )
        }
    }
}

impl Protocol for CountingSink {
    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        self.received += 1;
        self.bytes += packet.size_bytes() as u64;
        self.arrivals.push(ctx.time());
        self.delays.push(ctx.time() - packet.sent_at());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Topology;
    use crate::sim::Simulator;

    fn pair() -> (crate::node::Topology, NodeId, NodeId) {
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        topo.connect(a, b, SimDuration::from_millis(10));
        (topo, a, b)
    }

    fn sink_of(sim: &mut Simulator, node: NodeId) -> CountingSink {
        *sim.take_protocol_as::<CountingSink>(node)
            .expect("sink attached")
    }

    #[test]
    fn cbr_emits_at_fixed_rate() {
        let (topo, a, b) = pair();
        let mut sim = Simulator::new(topo, 1);
        sim.set_protocol(
            a,
            CbrSource::new(b, FlowId(1), 100, SimDuration::from_millis(100)),
        );
        sim.set_protocol(b, CountingSink::new());
        sim.run_until(SimTime::from_secs(1));
        // Ticks at 0.1..=1.0 sent, but those arriving by t=1.0 are 9
        // (0.1+0.01 .. 0.9+0.01); allow 9..=10.
        let delivered = sim.counters().delivered;
        assert!((9..=10).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn cbr_until_stops() {
        let (topo, a, b) = pair();
        let mut sim = Simulator::new(topo, 1);
        sim.set_protocol(
            a,
            CbrSource::new(b, FlowId(1), 10, SimDuration::from_millis(100))
                .until(SimTime::from_millis(500)),
        );
        sim.set_protocol(b, CountingSink::new());
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.counters().delivered, 5);
    }

    #[test]
    fn poisson_rate_approximates() {
        let (topo, a, b) = pair();
        let mut sim = Simulator::new(topo, 42);
        sim.set_protocol(a, PoissonSource::new(b, FlowId(1), 10, 200.0));
        sim.set_protocol(b, CountingSink::new());
        sim.run_until(SimTime::from_secs(10));
        let delivered = sim.counters().delivered as f64;
        // 2000 expected; 3-sigma ≈ 134.
        assert!((delivered - 2000.0).abs() < 200.0, "delivered {delivered}");
    }

    #[test]
    fn pareto_on_off_produces_bursts() {
        let (topo, a, b) = pair();
        let mut sim = Simulator::new(topo, 7);
        sim.set_protocol(
            a,
            ParetoOnOffSource::new(
                b,
                FlowId(1),
                50,
                SimDuration::from_millis(10),
                0.5,
                0.5,
                1.5,
            ),
        );
        sim.set_protocol(b, CountingSink::new());
        sim.run_until(SimTime::from_secs(10));
        let delivered = sim.counters().delivered;
        // Roughly half the time on at 100 pps → ~500; very loose bounds
        // because the tail is heavy.
        assert!(delivered > 50, "delivered {delivered}");
        assert!(delivered < 1100, "delivered {delivered}");
    }

    #[test]
    fn sink_records_delays() {
        let (topo, a, b) = pair();
        let mut sim = Simulator::new(topo, 1);
        sim.set_protocol(
            a,
            CbrSource::new(b, FlowId(1), 0, SimDuration::from_millis(250)),
        );
        sim.set_protocol(b, CountingSink::new());
        sim.run_until(SimTime::from_secs(1));
        let sink = sink_of(&mut sim, b);
        assert!(sink.received() >= 3);
        assert_eq!(sink.arrivals().len(), sink.received() as usize);
        let mean = sink.mean_delay_s().unwrap();
        assert!((mean - 0.010).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn empty_sink_has_no_mean() {
        let sink = CountingSink::new();
        assert!(sink.mean_delay_s().is_none());
        assert_eq!(sink.received(), 0);
        assert_eq!(sink.bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn poisson_rejects_zero_rate() {
        PoissonSource::new(NodeId(0), FlowId(0), 1, 0.0);
    }
}
