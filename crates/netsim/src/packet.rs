//! Layered packets: link, network, and transport headers plus payload.
//!
//! The paper's Table 1 distinguishes captures of "link layer header, IP
//! header, and TCP/UDP header if available" from captures that also take
//! payload. The packet model therefore keeps the layers separate so a
//! capture tap can be scoped to exactly the headers.

use crate::node::NodeId;
use std::fmt;

/// Transport-layer protocol discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// TCP-like stream segment.
    Tcp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Sequence number.
        seq: u32,
    },
    /// UDP-like datagram.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
    },
}

impl Transport {
    /// Source port of either variant.
    pub fn src_port(self) -> u16 {
        match self {
            Transport::Tcp { src_port, .. } | Transport::Udp { src_port, .. } => src_port,
        }
    }

    /// Destination port of either variant.
    pub fn dst_port(self) -> u16 {
        match self {
            Transport::Tcp { dst_port, .. } | Transport::Udp { dst_port, .. } => dst_port,
        }
    }
}

impl fmt::Display for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transport::Tcp {
                src_port, dst_port, ..
            } => write!(f, "tcp {src_port}→{dst_port}"),
            Transport::Udp { src_port, dst_port } => write!(f, "udp {src_port}→{dst_port}"),
        }
    }
}

/// The non-content headers of a packet — what a pen/trap-scoped tap may
/// record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Headers {
    /// Origin node ("IP" source).
    pub src: NodeId,
    /// Destination node ("IP" destination).
    pub dst: NodeId,
    /// Remaining hop budget.
    pub ttl: u8,
    /// Transport header.
    pub transport: Transport,
    /// Total packet length in bytes (headers + payload) — non-content
    /// "packet size" information in the paper's taxonomy.
    pub total_len: u32,
}

/// Identifier tying packets of the same application flow together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow-{}", self.0)
    }
}

/// A simulated packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    headers: Headers,
    flow: FlowId,
    payload: Vec<u8>,
    sent_at: crate::time::SimTime,
}

/// Fixed per-packet header overhead in bytes (ethernet-ish 14 + IP 20 +
/// transport 20).
pub const HEADER_OVERHEAD: u32 = 54;

impl Packet {
    /// Default initial TTL.
    pub const DEFAULT_TTL: u8 = 64;

    /// Creates a packet; `total_len` is derived from the payload.
    pub fn new(
        src: NodeId,
        dst: NodeId,
        transport: Transport,
        flow: FlowId,
        payload: Vec<u8>,
    ) -> Self {
        let total_len = HEADER_OVERHEAD + payload.len() as u32;
        Packet {
            headers: Headers {
                src,
                dst,
                ttl: Self::DEFAULT_TTL,
                transport,
                total_len,
            },
            flow,
            payload,
            sent_at: crate::time::SimTime::ZERO,
        }
    }

    /// When the packet was first transmitted (stamped by the simulator).
    pub fn sent_at(&self) -> crate::time::SimTime {
        self.sent_at
    }

    /// Stamps the transmission time. Called by the simulator on first
    /// send; later hops leave it untouched.
    pub fn stamp_sent_at(&mut self, t: crate::time::SimTime) {
        if self.sent_at == crate::time::SimTime::ZERO {
            self.sent_at = t;
        }
    }

    /// Convenience UDP packet.
    pub fn udp(
        src: NodeId,
        dst: NodeId,
        src_port: u16,
        dst_port: u16,
        flow: FlowId,
        payload: Vec<u8>,
    ) -> Self {
        Packet::new(
            src,
            dst,
            Transport::Udp { src_port, dst_port },
            flow,
            payload,
        )
    }

    /// The headers (non-content layer).
    pub fn headers(&self) -> Headers {
        self.headers
    }

    /// Flow membership.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// The payload (content layer).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Total on-wire size in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.headers.total_len
    }

    /// Decrements TTL; returns `false` when the packet must be dropped.
    pub fn decrement_ttl(&mut self) -> bool {
        if self.headers.ttl == 0 {
            return false;
        }
        self.headers.ttl -= 1;
        self.headers.ttl > 0
    }

    /// Origin node.
    pub fn src(&self) -> NodeId {
        self.headers.src
    }

    /// Destination node.
    pub fn dst(&self) -> NodeId {
        self.headers.dst
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}→{} {} {} ({} bytes)",
            self.headers.src,
            self.headers.dst,
            self.headers.transport,
            self.flow,
            self.headers.total_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_include_overhead() {
        let p = Packet::udp(NodeId(0), NodeId(1), 10, 20, FlowId(1), vec![0; 100]);
        assert_eq!(p.size_bytes(), 154);
        assert_eq!(p.payload().len(), 100);
    }

    #[test]
    fn ttl_decrements_to_drop() {
        let mut p = Packet::udp(NodeId(0), NodeId(1), 1, 2, FlowId(0), vec![]);
        let mut hops = 0;
        while p.decrement_ttl() {
            hops += 1;
        }
        assert_eq!(hops, Packet::DEFAULT_TTL as u32 - 1);
        assert!(!p.decrement_ttl());
    }

    #[test]
    fn transport_ports() {
        let t = Transport::Tcp {
            src_port: 5,
            dst_port: 6,
            seq: 0,
        };
        assert_eq!(t.src_port(), 5);
        assert_eq!(t.dst_port(), 6);
        let u = Transport::Udp {
            src_port: 7,
            dst_port: 8,
        };
        assert_eq!(u.src_port(), 7);
        assert_eq!(u.dst_port(), 8);
    }

    #[test]
    fn display_formats() {
        let p = Packet::udp(NodeId(3), NodeId(4), 1000, 2000, FlowId(9), vec![1]);
        let s = p.to_string();
        assert!(s.contains("n3"));
        assert!(s.contains("flow-9"));
        assert!(s.contains("udp 1000→2000"));
    }

    #[test]
    fn headers_carry_size_not_payload() {
        let p = Packet::udp(NodeId(0), NodeId(1), 1, 2, FlowId(0), b"secret".to_vec());
        let h = p.headers();
        assert_eq!(h.total_len, HEADER_OVERHEAD + 6);
        // Headers alone expose no payload bytes — type-level guarantee
        // (Headers is Copy with no payload field).
        assert_eq!(h.src, NodeId(0));
    }
}
