//! Simulation time: a nanosecond-resolution monotone clock.
//!
//! The implementation lives in [`simcore::time`] — the shared engine
//! layer under every simulator in the workspace — and is re-exported
//! here so existing `netsim::time::SimTime` / prelude imports keep
//! working unchanged.

pub use simcore::time::{SimDuration, SimTime};
