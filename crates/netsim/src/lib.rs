//! # netsim
//!
//! A deterministic, discrete-event, packet-level network simulator — the
//! substrate on which the workspace reproduces the paper's network
//! forensics scenarios. The design centres on the legal axes the paper's
//! Table 1 turns on:
//!
//! * **Layered packets** ([`packet`]): link/IP/transport headers are
//!   separate from payload, so a capture can be scoped to exactly the
//!   non-content layers.
//! * **Scoped capture taps** ([`capture`]): [`CaptureScope::HeadersOnly`]
//!   (pen/trap), [`CaptureScope::FullContent`] (Title III), and
//!   [`CaptureScope::RateOnly`] (the §IV-B watermark posture) are
//!   enforced at the type level — a headers-only tap physically cannot
//!   return payload bytes.
//! * **Determinism** ([`rng`], [`sim`]): seeded RNG and a totally ordered
//!   event queue make every experiment regenerable.
//!
//! ## Layering
//!
//! netsim is the packet-level layer over the generic deterministic
//! engine in [`simcore`]: the clock ([`time`] re-exports
//! `simcore::time`), the RNG ([`rng`] re-exports `simcore::rng`), and
//! the `(time, seq)`-ordered event queue (`simcore::queue::EventQueue`)
//! all live there. netsim adds what is network-specific — topology,
//! layered packets, hop-by-hop routing, capture taps — and the overlay
//! simulators (`p2psim`, `anonsim`, `watermark`) build on netsim's
//! prelude. Node and routing state are bounded per-node/per-link (no
//! all-pairs tables), so overlays scale to 100k–1M nodes.
//!
//! [`CaptureScope::HeadersOnly`]: capture::CaptureScope::HeadersOnly
//! [`CaptureScope::FullContent`]: capture::CaptureScope::FullContent
//! [`CaptureScope::RateOnly`]: capture::CaptureScope::RateOnly
//!
//! ## Example: a pen/trap-scoped tap at an "ISP" router
//!
//! ```
//! use netsim::prelude::*;
//!
//! let mut topo = Topology::new();
//! let home = topo.add_node();
//! let isp = topo.add_node();
//! let server = topo.add_node();
//! topo.connect(home, isp, SimDuration::from_millis(5));
//! topo.connect(isp, server, SimDuration::from_millis(20));
//!
//! let mut sim = Simulator::new(topo, 7);
//! // Headers-only tap at the ISP: sees sizes and addressing, never payload.
//! let tap = sim.add_tap(Tap::new(
//!     TapPoint::Node(isp),
//!     CaptureScope::HeadersOnly,
//!     CaptureFilter::any(),
//! ));
//! sim.set_protocol(home, CbrSource::new(server, FlowId(1), 256, SimDuration::from_millis(50)));
//! sim.set_protocol(server, CountingSink::new());
//! sim.run_until(SimTime::from_secs(1));
//! assert!(sim.tap(tap).len() > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builders;
pub mod capture;
pub mod node;
pub mod packet;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod traffic;

/// Commonly used items, importable with `use netsim::prelude::*`.
pub mod prelude {
    pub use crate::builders;
    pub use crate::capture::{CaptureFilter, CaptureRecord, CaptureScope, Tap, TapId, TapPoint};
    pub use crate::node::{Link, LinkId, NodeId, Topology};
    pub use crate::packet::{FlowId, Headers, Packet, Transport};
    pub use crate::rng::SimRng;
    pub use crate::sim::{Context, Idle, Protocol, SimCounters, Simulator};
    pub use crate::stats::{pearson, quantile, summarize, Classification};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::traffic::{CbrSource, CountingSink, ParetoOnOffSource, PoissonSource};
}
