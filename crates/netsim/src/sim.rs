//! The discrete-event simulator core.
//!
//! A [`Simulator`] owns a [`Topology`], per-node [`Protocol`] behaviours,
//! capture [`Tap`]s, and the deterministic `(time, seq)`-ordered
//! [`EventQueue`] from [`simcore`]. Packets sent by protocols are routed
//! hop-by-hop along shortest paths; every link traversal is offered to
//! the taps; delivery invokes the destination protocol.
//!
//! ## Scaling model
//!
//! Node state is flat and index-addressed (one `Vec` slot per node, one
//! per link), and routing state is **bounded**: next-hop lookups first
//! try the adjacent-neighbor fast path (overlay experiments send almost
//! exclusively to direct neighbors), then fall back to an on-demand
//! per-destination BFS cached in a small LRU. Nothing in the simulator
//! allocates per-node-pair, so population-scale overlays (100k–1M nodes)
//! fit in memory — the old all-pairs route cache needed O(N) per active
//! destination and made anything past ~10k nodes infeasible.

use crate::capture::{Tap, TapId, TapPoint};
use crate::node::{LinkId, NodeId, Topology};
use crate::packet::Packet;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use simcore::queue::EventQueue;
use std::collections::HashMap;

/// Behaviour attached to a node. All callbacks receive a [`Context`] for
/// sending packets and setting timers.
///
/// The `Any` supertrait lets callers recover their concrete protocol (and
/// its accumulated state) after a run via
/// [`Simulator::take_protocol_as`].
pub trait Protocol: std::any::Any {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}
    /// Called when a packet addressed to this node is delivered.
    fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {}
    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _token: u64) {}
}

/// A no-op protocol for passive nodes (pure routers).
#[derive(Debug, Clone, Copy, Default)]
pub struct Idle;

impl Protocol for Idle {}

/// The interface a protocol uses to interact with the simulation.
#[derive(Debug)]
pub struct Context<'a> {
    node: NodeId,
    time: SimTime,
    rng: &'a mut SimRng,
    outbox: Vec<(SimDuration, Packet)>,
    timers: Vec<(SimDuration, u64)>,
}

impl Context<'_> {
    /// The node this callback runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current simulation time.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// The simulation RNG (deterministic).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends a packet now (routed from this node toward `packet.dst()`).
    pub fn send(&mut self, packet: Packet) {
        self.send_after(SimDuration::ZERO, packet);
    }

    /// Sends a packet after an artificial local delay — the knob the
    /// OneSwarm-style overlay uses for per-hop response delays.
    pub fn send_after(&mut self, delay: SimDuration, packet: Packet) {
        self.outbox.push((delay, packet));
    }

    /// Schedules `on_timer(token)` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.timers.push((delay, token));
    }
}

#[derive(Debug)]
enum EventKind {
    /// Packet arriving at `node`, having traversed `via` (None for
    /// locally injected packets). Boxed once at origin and moved through
    /// every hop: heap sifts then shuffle a pointer-sized payload instead
    /// of memcpying whole packets, which dominates at population scale.
    Arrival {
        packet: Box<Packet>,
        via: Option<LinkId>,
    },
    /// Timer for the node's protocol.
    Timer { token: u64 },
}

/// The event payload carried by the shared `(time, seq)`-ordered queue.
#[derive(Debug)]
struct NodeEvent {
    node: NodeId,
    kind: EventKind,
}

/// Counters the simulator maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Packets delivered to their destination protocol.
    pub delivered: u64,
    /// Packets dropped for TTL exhaustion.
    pub dropped_ttl: u64,
    /// Packets dropped because no route existed.
    pub dropped_unreachable: u64,
    /// Packets dropped by link loss.
    pub dropped_loss: u64,
    /// Packets that had to queue behind a busy transmitter.
    pub queued: u64,
    /// Link traversals (hop count across all packets).
    pub hops: u64,
    /// Events processed.
    pub events: u64,
}

/// Default number of destinations the bounded route cache keeps warm.
const DEFAULT_ROUTE_CACHE_CAPACITY: usize = 32;

/// One cached BFS result: `routes_toward(dst)` indexed by source node.
type NextHopVec = Vec<Option<(LinkId, NodeId)>>;

/// A bounded, deterministic per-destination next-hop cache.
///
/// Each entry holds the full BFS next-hop vector toward one destination
/// (O(nodes) memory); the cache keeps at most `cap` destinations warm,
/// evicting least-recently-used. Because BFS is deterministic and the
/// lookup draws no randomness, cache policy cannot perturb results —
/// only recomputation cost.
struct RouteCache {
    cap: usize,
    /// Most-recently-used first. Linear scan: `cap` is small.
    entries: Vec<(NodeId, NextHopVec)>,
    /// BFS recomputations (cache misses), for capacity tuning.
    misses: u64,
}

impl RouteCache {
    fn new(cap: usize) -> Self {
        RouteCache {
            cap: cap.max(1),
            entries: Vec::new(),
            misses: 0,
        }
    }

    fn next_hop(&mut self, topo: &Topology, from: NodeId, dst: NodeId) -> Option<(LinkId, NodeId)> {
        if let Some(i) = self.entries.iter().position(|(d, _)| *d == dst) {
            if i != 0 {
                self.entries[..=i].rotate_right(1);
            }
            return self.entries[0].1[from.0];
        }
        self.misses += 1;
        let routes = topo.routes_toward(dst);
        let hop = routes[from.0];
        self.entries.insert(0, (dst, routes));
        self.entries.truncate(self.cap);
        hop
    }
}

/// The discrete-event network simulator.
///
/// # Examples
///
/// ```
/// use netsim::prelude::*;
///
/// // Two nodes, one link; a CBR source sending to a counting sink.
/// let mut topo = Topology::new();
/// let a = topo.add_node();
/// let b = topo.add_node();
/// topo.connect(a, b, SimDuration::from_millis(10));
///
/// let mut sim = Simulator::new(topo, 42);
/// sim.set_protocol(a, CbrSource::new(b, FlowId(1), 100, SimDuration::from_millis(100)));
/// sim.set_protocol(b, CountingSink::new());
/// sim.run_until(SimTime::from_secs(1));
/// assert!(sim.counters().delivered >= 9);
/// ```
pub struct Simulator {
    topo: Topology,
    time: SimTime,
    queue: EventQueue<NodeEvent>,
    protocols: Vec<Option<Box<dyn Protocol>>>,
    rng: SimRng,
    taps: Vec<Tap>,
    /// Tap indices keyed by attachment point, so the per-event hot path
    /// touches only the taps that can match — population-scale runs
    /// attach one tap per monitored node, and scanning all of them per
    /// event would be O(nodes) per packet.
    node_taps: HashMap<usize, Vec<usize>>,
    link_taps: HashMap<usize, Vec<usize>>,
    counters: SimCounters,
    routes: RouteCache,
    /// Per-link transmitter-busy horizon: a bandwidth-limited link is a
    /// FIFO — a packet cannot start serializing before the previous one
    /// finished (queueing delay under load). Empty when no link has a
    /// bandwidth limit (the common overlay case), so latency-only
    /// topologies pay nothing per link.
    link_busy_until: Vec<SimTime>,
    /// Reusable callback buffers: `with_protocol` hands these to the
    /// [`Context`] and drains them afterwards, so the per-event hot path
    /// allocates nothing once the buffers have grown to the working set.
    scratch_outbox: Vec<(SimDuration, Packet)>,
    scratch_timers: Vec<(SimDuration, u64)>,
    started: bool,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("time", &self.time)
            .field("nodes", &self.topo.node_count())
            .field("queued", &self.queue.len())
            .field("counters", &self.counters)
            .finish()
    }
}

impl Simulator {
    /// Creates a simulator over `topo` with a deterministic seed.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let n = topo.node_count();
        let mut protocols = Vec::with_capacity(n);
        protocols.resize_with(n, || None);
        // Transmitter state only exists when some link can actually be
        // busy; latency-only topologies skip the per-link allocation.
        let link_busy_until = if topo.links().iter().any(|l| l.bandwidth_bps > 0) {
            vec![SimTime::ZERO; topo.links().len()]
        } else {
            Vec::new()
        };
        Simulator {
            topo,
            time: SimTime::ZERO,
            queue: EventQueue::new(),
            protocols,
            rng: SimRng::seed_from(seed),
            taps: Vec::new(),
            node_taps: HashMap::new(),
            link_taps: HashMap::new(),
            counters: SimCounters::default(),
            routes: RouteCache::new(DEFAULT_ROUTE_CACHE_CAPACITY),
            link_busy_until,
            scratch_outbox: Vec::new(),
            scratch_timers: Vec::new(),
            started: false,
        }
    }

    /// Attaches a protocol to a node (replacing any previous one).
    pub fn set_protocol<P: Protocol + 'static>(&mut self, node: NodeId, protocol: P) {
        self.protocols[node.0] = Some(Box::new(protocol));
    }

    /// Installs a capture tap, returning its id.
    pub fn add_tap(&mut self, tap: Tap) -> TapId {
        let idx = self.taps.len();
        match tap.point() {
            TapPoint::Node(n) => self.node_taps.entry(n.0).or_default().push(idx),
            TapPoint::Link(l) => self.link_taps.entry(l.0).or_default().push(idx),
        }
        self.taps.push(tap);
        TapId(idx)
    }

    /// Read access to a tap's log.
    pub fn tap(&self, id: TapId) -> &Tap {
        &self.taps[id.0]
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Aggregate counters.
    pub fn counters(&self) -> SimCounters {
        self.counters
    }

    /// Resizes the bounded route cache (default keeps 32 destinations
    /// warm). Experiments whose traffic fans out to many *multi-hop*
    /// destinations can raise this; each warm destination costs O(nodes)
    /// memory. Cache policy affects only speed, never results.
    ///
    /// # Panics
    ///
    /// Panics if `destinations == 0`.
    pub fn set_route_cache_capacity(&mut self, destinations: usize) {
        assert!(destinations > 0, "route cache needs at least one slot");
        self.routes.cap = destinations;
        self.routes.entries.truncate(destinations);
    }

    /// BFS recomputations the bounded route cache has performed — the
    /// signal for tuning [`Self::set_route_cache_capacity`].
    pub fn route_cache_misses(&self) -> u64 {
        self.routes.misses
    }

    /// Takes a protocol out of the simulator (e.g. to inspect collected
    /// state after a run). The node becomes passive.
    pub fn take_protocol(&mut self, node: NodeId) -> Option<Box<dyn Protocol>> {
        self.protocols[node.0].take()
    }

    /// Takes a protocol out and downcasts it to its concrete type,
    /// returning `None` (and leaving the node passive) on type mismatch.
    pub fn take_protocol_as<P: Protocol>(&mut self, node: NodeId) -> Option<Box<P>> {
        let proto = self.protocols[node.0].take()?;
        let any: Box<dyn std::any::Any> = proto;
        any.downcast::<P>().ok()
    }

    /// Immutable view of a node's protocol as its concrete type.
    pub fn protocol_as<P: Protocol>(&self, node: NodeId) -> Option<&P> {
        let proto = self.protocols[node.0].as_deref()?;
        (proto as &dyn std::any::Any).downcast_ref::<P>()
    }

    /// Injects a packet as if `node` sent it at the current time.
    pub fn inject(&mut self, node: NodeId, packet: Packet) {
        let mut packet = Box::new(packet);
        packet.stamp_sent_at(self.time);
        self.route_or_deliver(node, packet, SimDuration::ZERO);
    }

    /// Runs `on_start` for every protocol (idempotent; also invoked by
    /// the first `run_until`).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.protocols.len() {
            self.with_protocol(NodeId(i), |proto, ctx| proto.on_start(ctx));
        }
    }

    /// Processes events until the queue empties or `deadline` passes.
    /// Time advances to `deadline` (or further events' times).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start();
        while let Some(at) = self.queue.next_time() {
            if at > deadline {
                break;
            }
            let (at, ev) = self.queue.pop().expect("peeked");
            self.time = at;
            self.counters.events += 1;
            self.dispatch(ev);
        }
        if self.time < deadline {
            self.time = deadline;
        }
    }

    /// Runs for a further duration.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.time + d;
        self.run_until(deadline);
    }

    /// Drains every remaining event (use with care: source protocols that
    /// reschedule forever will never drain).
    pub fn run_to_completion(&mut self) {
        self.start();
        while let Some((at, ev)) = self.queue.pop() {
            self.time = at;
            self.counters.events += 1;
            self.dispatch(ev);
        }
    }

    fn dispatch(&mut self, ev: NodeEvent) {
        match ev.kind {
            EventKind::Timer { token } => {
                self.with_protocol(ev.node, |proto, ctx| proto.on_timer(ctx, token));
            }
            EventKind::Arrival { packet, via } => {
                // Offer the traversal to the taps attached at this point.
                // Taps log independently, so only per-tap (not cross-tap)
                // observation order matters, and that follows event order.
                let now = self.time;
                if let Some(idxs) = self.node_taps.get(&ev.node.0) {
                    for &i in idxs {
                        self.taps[i].observe(now, &packet);
                    }
                }
                if let Some(l) = via {
                    if let Some(idxs) = self.link_taps.get(&l.0) {
                        for &i in idxs {
                            self.taps[i].observe(now, &packet);
                        }
                    }
                }
                if packet.dst() == ev.node {
                    self.counters.delivered += 1;
                    self.with_protocol(ev.node, |proto, ctx| proto.on_packet(ctx, *packet));
                } else {
                    // Transit: decrement TTL and forward.
                    let mut packet = packet;
                    if !packet.decrement_ttl() {
                        self.counters.dropped_ttl += 1;
                        return;
                    }
                    self.route_or_deliver(ev.node, packet, SimDuration::ZERO);
                }
            }
        }
    }

    /// Runs a protocol callback and flushes its outbox/timers.
    fn with_protocol<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Protocol, &mut Context<'_>),
    {
        let Some(mut proto) = self.protocols[node.0].take() else {
            return;
        };
        let mut ctx = Context {
            node,
            time: self.time,
            rng: &mut self.rng,
            outbox: std::mem::take(&mut self.scratch_outbox),
            timers: std::mem::take(&mut self.scratch_timers),
        };
        f(proto.as_mut(), &mut ctx);
        let Context {
            mut outbox,
            mut timers,
            ..
        } = ctx;
        self.protocols[node.0] = Some(proto);
        // Flushing never re-enters a protocol callback, so the drained
        // buffers can be returned for reuse afterwards.
        for (delay, packet) in outbox.drain(..) {
            let mut packet = Box::new(packet);
            packet.stamp_sent_at(self.time + delay);
            self.route_or_deliver(node, packet, delay);
        }
        for (delay, token) in timers.drain(..) {
            let at = self.time + delay;
            self.queue.push(
                at,
                NodeEvent {
                    node,
                    kind: EventKind::Timer { token },
                },
            );
        }
        self.scratch_outbox = outbox;
        self.scratch_timers = timers;
    }

    /// The next hop from `from` toward `dst`: the adjacent-neighbor fast
    /// path first (no routing state at all), then the bounded BFS cache.
    ///
    /// The fast path returns exactly what BFS would. When `from` borders
    /// `dst`, BFS-from-`dst` visits `from` at distance one via the first
    /// `dst`→`from` link in `dst`'s adjacency list; [`Topology::add_link`]
    /// appends each link to both endpoints' lists in the same call, so
    /// parallel links keep the same relative order in both lists — the
    /// first match in *either* list is that same link. Each scan is
    /// capped so a high-degree hub (a proxy or gateway fanning out to
    /// the population) cannot turn the per-packet lookup into O(degree);
    /// past the cap the bounded BFS cache answers instead, with the
    /// identical result.
    fn next_hop(&mut self, from: NodeId, dst: NodeId) -> Option<(LinkId, NodeId)> {
        const FAST_PATH_SCAN_CAP: usize = 64;
        let out = self.topo.neighbors(from);
        if let Some(&hop) = out
            .iter()
            .take(FAST_PATH_SCAN_CAP)
            .find(|(_, peer)| *peer == dst)
        {
            return Some(hop);
        }
        if out.len() > FAST_PATH_SCAN_CAP {
            // `from` is a hub: check adjacency from the (usually leaf)
            // destination side before falling back to BFS.
            if let Some(&(link, _)) = self
                .topo
                .neighbors(dst)
                .iter()
                .take(FAST_PATH_SCAN_CAP)
                .find(|(_, peer)| *peer == from)
            {
                return Some((link, dst));
            }
        }
        self.routes.next_hop(&self.topo, from, dst)
    }

    /// Routes a packet one hop from `from` toward its destination,
    /// scheduling the arrival event.
    fn route_or_deliver(&mut self, from: NodeId, packet: Box<Packet>, extra_delay: SimDuration) {
        let dst = packet.dst();
        if dst.0 >= self.topo.node_count() {
            // Addressed to a node that does not exist (e.g. garbage bytes
            // interpreted as an address): drop, like any unroutable
            // destination.
            self.counters.dropped_unreachable += 1;
            return;
        }
        if from == dst {
            // Local delivery.
            let at = self.time + extra_delay;
            self.queue.push(
                at,
                NodeEvent {
                    node: from,
                    kind: EventKind::Arrival { packet, via: None },
                },
            );
            return;
        }
        match self.next_hop(from, dst) {
            Some((link_id, next)) => {
                let link = *self.topo.link(link_id);
                if link.sample_loss(&mut self.rng) {
                    self.counters.dropped_loss += 1;
                    return;
                }
                // FIFO transmitter: wait for the link to free up, then
                // serialize, then propagate.
                let ready = self.time + extra_delay;
                let mut queue_wait = SimDuration::ZERO;
                if link.bandwidth_bps > 0 {
                    let busy_until = self.link_busy_until[link_id.0];
                    if busy_until > ready {
                        queue_wait = busy_until - ready;
                        self.counters.queued += 1;
                    }
                    let tx_done = ready + queue_wait + link.serialization_time(packet.size_bytes());
                    self.link_busy_until[link_id.0] = tx_done;
                }
                let delay = extra_delay
                    + queue_wait
                    + link.traversal_delay(packet.size_bytes(), &mut self.rng);
                self.counters.hops += 1;
                let at = self.time + delay;
                self.queue.push(
                    at,
                    NodeEvent {
                        node: next,
                        kind: EventKind::Arrival {
                            packet,
                            via: Some(link_id),
                        },
                    },
                );
            }
            None => {
                self.counters.dropped_unreachable += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{CaptureFilter, CaptureScope};
    use crate::packet::{FlowId, Transport};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Sink that records delivery times into a shared vec.
    struct Recorder {
        deliveries: Rc<RefCell<Vec<(SimTime, Packet)>>>,
    }

    impl Protocol for Recorder {
        fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
            self.deliveries.borrow_mut().push((ctx.time(), packet));
        }
    }

    /// Source that sends one packet at start.
    struct OneShot {
        dst: NodeId,
        payload: usize,
    }

    impl Protocol for OneShot {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let p = Packet::new(
                ctx.node(),
                self.dst,
                Transport::Udp {
                    src_port: 1,
                    dst_port: 2,
                },
                FlowId(1),
                vec![0; self.payload],
            );
            ctx.send(p);
        }
    }

    fn line_topology(n: usize, latency_ms: u64) -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let nodes = t.add_nodes(n);
        for w in nodes.windows(2) {
            t.connect(w[0], w[1], SimDuration::from_millis(latency_ms));
        }
        (t, nodes)
    }

    #[test]
    fn one_hop_delivery_time() {
        let (topo, nodes) = line_topology(2, 10);
        let mut sim = Simulator::new(topo, 1);
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_protocol(
            nodes[0],
            OneShot {
                dst: nodes[1],
                payload: 10,
            },
        );
        sim.set_protocol(
            nodes[1],
            Recorder {
                deliveries: log.clone(),
            },
        );
        sim.run_until(SimTime::from_secs(1));
        let deliveries = log.borrow();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].0, SimTime::from_millis(10));
        assert_eq!(sim.counters().delivered, 1);
        assert_eq!(sim.counters().hops, 1);
    }

    #[test]
    fn multi_hop_accumulates_latency() {
        let (topo, nodes) = line_topology(4, 10);
        let mut sim = Simulator::new(topo, 1);
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_protocol(
            nodes[0],
            OneShot {
                dst: nodes[3],
                payload: 0,
            },
        );
        sim.set_protocol(
            nodes[3],
            Recorder {
                deliveries: log.clone(),
            },
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(log.borrow()[0].0, SimTime::from_millis(30));
        assert_eq!(sim.counters().hops, 3);
    }

    #[test]
    fn unreachable_dropped() {
        let mut topo = Topology::new();
        let a = topo.add_node();
        let _b = topo.add_node();
        let c = topo.add_node();
        topo.connect(a, _b, SimDuration::from_millis(1));
        let mut sim = Simulator::new(topo, 1);
        sim.set_protocol(a, OneShot { dst: c, payload: 0 });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.counters().dropped_unreachable, 1);
        assert_eq!(sim.counters().delivered, 0);
    }

    #[test]
    fn link_tap_sees_transit_node_tap_sees_arrivals() {
        let (topo, nodes) = line_topology(3, 5);
        let mut sim = Simulator::new(topo, 1);
        let tap_link0 = sim.add_tap(Tap::new(
            TapPoint::Link(LinkId(0)),
            CaptureScope::HeadersOnly,
            CaptureFilter::any(),
        ));
        let tap_mid = sim.add_tap(Tap::new(
            TapPoint::Node(nodes[1]),
            CaptureScope::RateOnly,
            CaptureFilter::any(),
        ));
        sim.set_protocol(
            nodes[0],
            OneShot {
                dst: nodes[2],
                payload: 10,
            },
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.tap(tap_link0).len(), 1, "link tap sees the hop");
        assert_eq!(
            sim.tap(tap_mid).len(),
            1,
            "node tap sees the transit arrival"
        );
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerProto {
            fired: Rc<RefCell<Vec<u64>>>,
        }
        impl Protocol for TimerProto {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
            }
            fn on_timer(&mut self, _ctx: &mut Context<'_>, token: u64) {
                self.fired.borrow_mut().push(token);
            }
        }
        let mut topo = Topology::new();
        let a = topo.add_node();
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(topo, 1);
        sim.set_protocol(
            a,
            TimerProto {
                fired: fired.clone(),
            },
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(*fired.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn determinism_same_seed_same_counters() {
        let run = |seed| {
            let (topo, nodes) = line_topology(5, 7);
            let mut sim = Simulator::new(topo, seed);
            sim.set_protocol(
                nodes[0],
                OneShot {
                    dst: nodes[4],
                    payload: 99,
                },
            );
            sim.run_until(SimTime::from_secs(2));
            sim.counters()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn run_until_advances_time_even_when_idle() {
        let mut topo = Topology::new();
        topo.add_node();
        let mut sim = Simulator::new(topo, 1);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn inject_routes_from_given_node() {
        let (topo, nodes) = line_topology(2, 10);
        let mut sim = Simulator::new(topo, 1);
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_protocol(
            nodes[1],
            Recorder {
                deliveries: log.clone(),
            },
        );
        sim.start();
        let p = Packet::udp(nodes[0], nodes[1], 1, 2, FlowId(3), vec![1, 2]);
        sim.inject(nodes[0], p);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(log.borrow().len(), 1);
    }

    #[test]
    fn sent_at_is_stamped_once() {
        let (topo, nodes) = line_topology(3, 10);
        let mut sim = Simulator::new(topo, 1);
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_protocol(
            nodes[0],
            OneShot {
                dst: nodes[2],
                payload: 0,
            },
        );
        sim.set_protocol(
            nodes[2],
            Recorder {
                deliveries: log.clone(),
            },
        );
        sim.run_until(SimTime::from_secs(1));
        let (arrive_at, pkt) = log.borrow()[0].clone();
        assert_eq!(pkt.sent_at(), SimTime::ZERO);
        assert_eq!(arrive_at, SimTime::from_millis(20));
    }
}

#[cfg(test)]
mod routing_tests {
    use super::*;
    use crate::packet::{FlowId, Packet};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Recorder {
        deliveries: Rc<RefCell<Vec<SimTime>>>,
    }
    impl Protocol for Recorder {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _packet: Packet) {
            self.deliveries.borrow_mut().push(ctx.time());
        }
    }

    /// The adjacent-neighbor fast path and the BFS cache must pick the
    /// same link: with parallel links between two nodes, both choose the
    /// first-added one.
    #[test]
    fn fast_path_matches_bfs_on_parallel_links() {
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        let first = topo.connect(a, b, SimDuration::from_millis(3));
        let _second = topo.connect(a, b, SimDuration::from_millis(50));
        // BFS from b picks the first a↔b link in b's adjacency list.
        let bfs_hop = topo.routes_toward(b)[a.0].unwrap();
        assert_eq!(bfs_hop.0, first);
        // The simulator's delivery (via the fast path) uses that link's
        // 3 ms latency, not the 50 ms one.
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(topo, 1);
        sim.set_protocol(
            b,
            Recorder {
                deliveries: log.clone(),
            },
        );
        sim.start();
        sim.inject(a, Packet::udp(a, b, 1, 2, FlowId(1), vec![]));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(*log.borrow(), vec![SimTime::from_millis(3)]);
    }

    /// Multi-hop traffic to more destinations than the cache holds still
    /// delivers everything — eviction costs recomputation, not packets.
    #[test]
    fn lru_eviction_does_not_change_deliveries() {
        // Star of 8 leaves around a hub: leaf→leaf is always multi-hop.
        let mut topo = Topology::new();
        let hub = topo.add_node();
        let leaves = topo.add_nodes(8);
        for &l in &leaves {
            topo.connect(hub, l, SimDuration::from_millis(1));
        }
        let run = |cache_cap: usize| {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Simulator::new(topo.clone(), 9);
            sim.set_route_cache_capacity(cache_cap);
            for &l in &leaves {
                sim.set_protocol(
                    l,
                    Recorder {
                        deliveries: log.clone(),
                    },
                );
            }
            sim.start();
            // Every leaf sends to every other leaf.
            for &src in &leaves {
                for &dst in &leaves {
                    if src != dst {
                        sim.inject(src, Packet::udp(src, dst, 1, 2, FlowId(1), vec![]));
                    }
                }
            }
            sim.run_until(SimTime::from_secs(1));
            let times = log.borrow().clone();
            (times, sim.counters(), sim.route_cache_misses())
        };
        let (times_tiny, counters_tiny, misses_tiny) = run(2);
        let (times_big, counters_big, misses_big) = run(64);
        assert_eq!(times_tiny, times_big);
        assert_eq!(counters_tiny, counters_big);
        assert_eq!(counters_big.delivered, 8 * 7);
        // The tiny cache thrashes; the big one computes each leaf once.
        assert!(misses_tiny > misses_big, "{misses_tiny} vs {misses_big}");
        assert_eq!(misses_big, 8);
    }

    /// Purely neighbor-to-neighbor traffic never touches the BFS cache.
    #[test]
    fn adjacent_traffic_needs_no_bfs() {
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        topo.connect(a, b, SimDuration::from_millis(1));
        let mut sim = Simulator::new(topo, 1);
        sim.start();
        for _ in 0..100 {
            sim.inject(a, Packet::udp(a, b, 1, 2, FlowId(1), vec![]));
        }
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.counters().delivered, 100);
        assert_eq!(sim.route_cache_misses(), 0);
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;
    use crate::node::Link;
    use crate::packet::FlowId;
    use crate::traffic::{CbrSource, CountingSink};

    #[test]
    fn lossy_link_drops_fraction() {
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        let mut link = Link::with_latency(a, b, SimDuration::from_millis(1));
        link.loss_prob = 0.5;
        topo.add_link(link);
        let mut sim = Simulator::new(topo, 99);
        sim.set_protocol(
            a,
            CbrSource::new(b, FlowId(1), 32, SimDuration::from_millis(10)),
        );
        sim.set_protocol(b, CountingSink::new());
        sim.run_until(SimTime::from_secs(10));
        let c = sim.counters();
        let total = c.delivered + c.dropped_loss;
        assert!(total >= 900, "total {total}");
        let loss_rate = c.dropped_loss as f64 / total as f64;
        assert!((loss_rate - 0.5).abs() < 0.06, "loss rate {loss_rate}");
    }

    #[test]
    fn lossless_link_drops_nothing() {
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        topo.connect(a, b, SimDuration::from_millis(1));
        let mut sim = Simulator::new(topo, 7);
        sim.set_protocol(
            a,
            CbrSource::new(b, FlowId(1), 32, SimDuration::from_millis(10)),
        );
        sim.set_protocol(b, CountingSink::new());
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.counters().dropped_loss, 0);
    }
}

#[cfg(test)]
mod queueing_tests {
    use super::*;
    use crate::node::Link;
    use crate::packet::FlowId;
    use crate::traffic::{CbrSource, CountingSink};

    /// Overdriving a bandwidth-limited link must produce queueing and
    /// stretch delivery spacing to the serialization rate.
    #[test]
    fn saturated_link_queues_and_paces() {
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        let mut link = Link::with_latency(a, b, SimDuration::from_millis(5));
        // 1000-byte packets (946 payload + 54 headers) at 80 kbit/s → one
        // packet per 100 ms maximum.
        link.bandwidth_bps = 80_000;
        topo.add_link(link);
        let mut sim = Simulator::new(topo, 1);
        // Offered load: one packet per 20 ms — 5× capacity.
        sim.set_protocol(
            a,
            CbrSource::new(b, FlowId(1), 946, SimDuration::from_millis(20))
                .until(SimTime::from_secs(1)),
        );
        sim.set_protocol(b, CountingSink::new());
        sim.run_until(SimTime::from_secs(20));
        let counters = sim.counters();
        assert!(counters.queued > 30, "queued {}", counters.queued);
        let sink = sim.take_protocol_as::<CountingSink>(b).unwrap();
        // Arrivals are paced at the 100 ms serialization interval.
        let arrivals = sink.arrivals();
        assert!(arrivals.len() >= 40, "delivered {}", arrivals.len());
        for w in arrivals.windows(2) {
            let gap = w[1] - w[0];
            assert!(
                gap >= SimDuration::from_millis(99),
                "gap {} below serialization pace",
                gap
            );
        }
    }

    /// An uncongested bandwidth-limited link queues nothing.
    #[test]
    fn uncongested_link_never_queues() {
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        let mut link = Link::with_latency(a, b, SimDuration::from_millis(5));
        link.bandwidth_bps = 8_000_000; // 1 ms per kB — far below load
        topo.add_link(link);
        let mut sim = Simulator::new(topo, 1);
        sim.set_protocol(
            a,
            CbrSource::new(b, FlowId(1), 946, SimDuration::from_millis(100)),
        );
        sim.set_protocol(b, CountingSink::new());
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.counters().queued, 0);
    }
}
