//! Capture taps with legally meaningful scopes.
//!
//! The paper's taxonomy turns on *what* a tap records: headers only
//! (pen/trap territory), full content (Title III territory), or mere
//! rates/volumes (the §IV-B watermark posture). A [`Tap`] is pinned to a
//! link or node, filtered, and scoped; the simulator feeds it every
//! matching traversal.

use crate::node::{LinkId, NodeId};
use crate::packet::{FlowId, Headers, Packet};
use crate::time::{SimDuration, SimTime};
use std::fmt;

/// Where a tap is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TapPoint {
    /// Observes every packet traversing a link.
    Link(LinkId),
    /// Observes every packet arriving at a node (delivered or transiting).
    Node(NodeId),
}

/// How much of each packet the tap records.
///
/// The scope is a *type-level* privacy boundary: a headers-only capture
/// physically cannot yield payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaptureScope {
    /// Link/IP/transport headers and sizes — non-content.
    HeadersOnly,
    /// Headers plus payload — content.
    FullContent,
    /// Only timestamps and byte counts — the weakest, rate-level view.
    RateOnly,
}

/// Predicate restricting which packets a tap records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CaptureFilter {
    /// Match only this source.
    pub src: Option<NodeId>,
    /// Match only this destination.
    pub dst: Option<NodeId>,
    /// Match only this flow.
    pub flow: Option<FlowId>,
}

impl CaptureFilter {
    /// Matches everything.
    pub fn any() -> Self {
        CaptureFilter::default()
    }

    /// Whether a packet passes the filter.
    pub fn matches(&self, packet: &Packet) -> bool {
        self.src.is_none_or(|s| packet.src() == s)
            && self.dst.is_none_or(|d| packet.dst() == d)
            && self.flow.is_none_or(|f| packet.flow() == f)
    }
}

/// One recorded observation, shaped by the tap's scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaptureRecord {
    /// Headers-only observation.
    Headers {
        /// Observation time.
        at: SimTime,
        /// The recorded headers.
        headers: Headers,
    },
    /// Full-content observation.
    Full {
        /// Observation time.
        at: SimTime,
        /// The whole packet.
        packet: Packet,
    },
    /// Rate-only observation.
    Rate {
        /// Observation time.
        at: SimTime,
        /// On-wire bytes observed.
        bytes: u32,
    },
}

impl CaptureRecord {
    /// The observation timestamp.
    pub fn at(&self) -> SimTime {
        match self {
            CaptureRecord::Headers { at, .. }
            | CaptureRecord::Full { at, .. }
            | CaptureRecord::Rate { at, .. } => *at,
        }
    }

    /// The observed size in bytes.
    pub fn bytes(&self) -> u32 {
        match self {
            CaptureRecord::Headers { headers, .. } => headers.total_len,
            CaptureRecord::Full { packet, .. } => packet.size_bytes(),
            CaptureRecord::Rate { bytes, .. } => *bytes,
        }
    }
}

/// Identifier of an installed tap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TapId(pub usize);

impl fmt::Display for TapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tap{}", self.0)
    }
}

/// An installed capture tap and its accumulated log.
#[derive(Debug, Clone)]
pub struct Tap {
    point: TapPoint,
    scope: CaptureScope,
    filter: CaptureFilter,
    records: Vec<CaptureRecord>,
}

impl Tap {
    /// Creates a tap at `point` with `scope`, recording packets matching
    /// `filter`.
    pub fn new(point: TapPoint, scope: CaptureScope, filter: CaptureFilter) -> Self {
        Tap {
            point,
            scope,
            filter,
            records: Vec::new(),
        }
    }

    /// Where the tap sits.
    pub fn point(&self) -> TapPoint {
        self.point
    }

    /// The recording scope.
    pub fn scope(&self) -> CaptureScope {
        self.scope
    }

    /// The filter.
    pub fn filter(&self) -> CaptureFilter {
        self.filter
    }

    /// Offers a packet traversal to the tap (called by the simulator).
    pub(crate) fn observe(&mut self, at: SimTime, packet: &Packet) {
        if !self.filter.matches(packet) {
            return;
        }
        let record = match self.scope {
            CaptureScope::HeadersOnly => CaptureRecord::Headers {
                at,
                headers: packet.headers(),
            },
            CaptureScope::FullContent => CaptureRecord::Full {
                at,
                packet: packet.clone(),
            },
            CaptureScope::RateOnly => CaptureRecord::Rate {
                at,
                bytes: packet.size_bytes(),
            },
        };
        self.records.push(record);
    }

    /// The accumulated records.
    pub fn records(&self) -> &[CaptureRecord] {
        &self.records
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Aggregates observations into a byte-rate time series with bins of
    /// width `bin` covering `[start, start + bin * n_bins)`.
    ///
    /// This is the observable the §IV-B watermark detector consumes: the
    /// traffic *rate*, never packet contents.
    pub fn rate_series(&self, start: SimTime, bin: SimDuration, n_bins: usize) -> Vec<f64> {
        let mut bins = vec![0.0; n_bins];
        if bin == SimDuration::ZERO {
            return bins;
        }
        for r in &self.records {
            let t = r.at();
            if t < start {
                continue;
            }
            let idx = ((t - start).as_nanos() / bin.as_nanos()) as usize;
            if idx < n_bins {
                bins[idx] += r.bytes() as f64;
            }
        }
        let secs = bin.as_secs_f64();
        for b in &mut bins {
            *b /= secs;
        }
        bins
    }

    /// Total observed bytes.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.bytes() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Transport;

    fn pkt(src: usize, dst: usize, flow: u64, payload: usize) -> Packet {
        Packet::new(
            NodeId(src),
            NodeId(dst),
            Transport::Udp {
                src_port: 1,
                dst_port: 2,
            },
            FlowId(flow),
            vec![0; payload],
        )
    }

    #[test]
    fn filter_matching() {
        let f = CaptureFilter {
            src: Some(NodeId(1)),
            dst: None,
            flow: Some(FlowId(7)),
        };
        assert!(f.matches(&pkt(1, 2, 7, 0)));
        assert!(!f.matches(&pkt(2, 2, 7, 0)));
        assert!(!f.matches(&pkt(1, 2, 8, 0)));
        assert!(CaptureFilter::any().matches(&pkt(9, 9, 9, 0)));
    }

    #[test]
    fn headers_scope_drops_payload() {
        let mut tap = Tap::new(
            TapPoint::Link(LinkId(0)),
            CaptureScope::HeadersOnly,
            CaptureFilter::any(),
        );
        tap.observe(SimTime::from_secs(1), &pkt(0, 1, 0, 64));
        match &tap.records()[0] {
            CaptureRecord::Headers { headers, .. } => {
                assert_eq!(headers.total_len, 54 + 64);
            }
            other => panic!("expected headers record, got {other:?}"),
        }
    }

    #[test]
    fn full_scope_keeps_packet() {
        let mut tap = Tap::new(
            TapPoint::Node(NodeId(1)),
            CaptureScope::FullContent,
            CaptureFilter::any(),
        );
        tap.observe(SimTime::ZERO, &pkt(0, 1, 0, 10));
        match &tap.records()[0] {
            CaptureRecord::Full { packet, .. } => assert_eq!(packet.payload().len(), 10),
            other => panic!("expected full record, got {other:?}"),
        }
    }

    #[test]
    fn rate_scope_records_only_sizes() {
        let mut tap = Tap::new(
            TapPoint::Link(LinkId(0)),
            CaptureScope::RateOnly,
            CaptureFilter::any(),
        );
        tap.observe(SimTime::ZERO, &pkt(0, 1, 0, 46));
        assert_eq!(tap.records()[0].bytes(), 100);
        assert_eq!(tap.total_bytes(), 100);
    }

    #[test]
    fn rate_series_bins_by_time() {
        let mut tap = Tap::new(
            TapPoint::Link(LinkId(0)),
            CaptureScope::RateOnly,
            CaptureFilter::any(),
        );
        // 100-byte packets (payload 46 + 54 overhead) at t=0.1s and t=1.5s.
        tap.observe(SimTime::from_millis(100), &pkt(0, 1, 0, 46));
        tap.observe(SimTime::from_millis(1500), &pkt(0, 1, 0, 46));
        let series = tap.rate_series(SimTime::ZERO, SimDuration::from_secs(1), 2);
        assert_eq!(series, vec![100.0, 100.0]);
    }

    #[test]
    fn rate_series_ignores_out_of_window() {
        let mut tap = Tap::new(
            TapPoint::Link(LinkId(0)),
            CaptureScope::RateOnly,
            CaptureFilter::any(),
        );
        tap.observe(SimTime::from_secs(10), &pkt(0, 1, 0, 46));
        let series = tap.rate_series(SimTime::ZERO, SimDuration::from_secs(1), 2);
        assert_eq!(series, vec![0.0, 0.0]);
        assert!(!tap.is_empty());
        assert_eq!(tap.len(), 1);
    }

    #[test]
    fn filtered_packets_not_recorded() {
        let mut tap = Tap::new(
            TapPoint::Link(LinkId(0)),
            CaptureScope::HeadersOnly,
            CaptureFilter {
                flow: Some(FlowId(1)),
                ..CaptureFilter::default()
            },
        );
        tap.observe(SimTime::ZERO, &pkt(0, 1, 2, 0));
        assert!(tap.is_empty());
    }
}
