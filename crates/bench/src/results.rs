//! Machine-readable bench results: a minimal JSON value model and a
//! merge-writer for `BENCH_results.json`.
//!
//! Every perf driver records its measurements under its own top-level key
//! so the perf trajectory can be tracked across PRs without scraping
//! stdout. The writer does read-modify-write: other drivers' sections
//! survive a re-run of one driver. Std-only — the workspace builds fully
//! offline, so no serde.

use std::fmt::Write as _;
use std::path::Path;

/// The canonical results file name, written into the working directory.
pub const RESULTS_FILE: &str = "BENCH_results.json";

/// Every driver that must have a section in [`RESULTS_FILE`] for the
/// perf trajectory to be complete. Adding a bench driver means adding
/// its key here — the `check_results` bin (run by CI's bench-trajectory
/// job) fails when any registered section is missing, so a driver that
/// silently stops recording is caught the same day, not three PRs
/// later.
pub const REGISTERED_DRIVERS: &[&str] = &[
    "experiments",
    "throughput",
    "service_load",
    "wire_load",
    "trace_overhead",
    "journal_replay",
    "simcore_scale",
    "plan_search",
    "replay_serve",
];

/// A minimal JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (emitted with enough precision to round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Self {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Self {
        Json::Num(x as f64)
    }
}

impl From<bool> for Json {
    fn from(x: bool) -> Self {
        Json::Bool(x)
    }
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Sets `key` on an object (replacing an existing entry), returning
    /// `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Obj(entries) = &mut self else {
            panic!("Json::set on a non-object");
        };
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
        self
    }

    /// Looks `key` up on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent + 1);
            }),
            Json::Obj(entries) => write_seq(out, indent, '{', '}', entries.len(), |out, i| {
                let (k, v) = &entries[i];
                write_escaped(out, k);
                out.push_str(": ");
                v.write(out, indent + 1);
            }),
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    if len == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    for i in 0..len {
        out.push('\n');
        out.push_str(&"  ".repeat(indent + 1));
        item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    out.push('\n');
    out.push_str(&"  ".repeat(indent));
    out.push(close);
}

/// Parses a JSON document. Returns `None` on any syntax error — callers
/// treat an unreadable results file as absent and rewrite it.
pub fn parse(text: &str) -> Option<Json> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(value)
    } else {
        None
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => parse_seq(bytes, pos, b'}', Json::obj(), |acc, bytes, pos| {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&b':') {
                return None;
            }
            *pos += 1;
            let value = parse_value(bytes, pos)?;
            Some(acc.set(&key, value))
        }),
        b'[' => parse_seq(
            bytes,
            pos,
            b']',
            Json::Arr(Vec::new()),
            |acc, bytes, pos| {
                let value = parse_value(bytes, pos)?;
                let Json::Arr(mut items) = acc else {
                    return None;
                };
                items.push(value);
                Some(Json::Arr(items))
            },
        ),
        b'"' => Some(Json::Str(parse_string(bytes, pos)?)),
        b't' => parse_literal(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false", Json::Bool(false)),
        b'n' => parse_literal(bytes, pos, "null", Json::Null),
        _ => parse_number(bytes, pos),
    }
}

fn parse_seq(
    bytes: &[u8],
    pos: &mut usize,
    close: u8,
    mut acc: Json,
    mut item: impl FnMut(Json, &[u8], &mut usize) -> Option<Json>,
) -> Option<Json> {
    *pos += 1; // past the opener
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&close) {
        *pos += 1;
        return Some(acc);
    }
    loop {
        acc = item(acc, bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            c if *c == close => {
                *pos += 1;
                return Some(acc);
            }
            _ => return None,
        }
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Option<Json> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Some(value)
    } else {
        None
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(Json::Num)
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (continuation bytes included).
                let len = match bytes[*pos] {
                    b if b < 0x80 => 1,
                    b if b >= 0xF0 => 4,
                    b if b >= 0xE0 => 3,
                    _ => 2,
                };
                out.push_str(std::str::from_utf8(bytes.get(*pos..*pos + len)?).ok()?);
                *pos += len;
            }
        }
    }
}

/// Records `section` under `driver` in `BENCH_results.json` (in the
/// current working directory), preserving other drivers' sections.
///
/// An unparseable existing file is replaced rather than appended to.
pub fn record(driver: &str, section: Json) -> std::io::Result<()> {
    record_at(Path::new(RESULTS_FILE), driver, section)
}

/// [`record`] with an explicit file path (used by tests).
pub fn record_at(path: &Path, driver: &str, section: Json) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| parse(&text))
        .filter(|v| matches!(v, Json::Obj(_)))
        .unwrap_or_else(Json::obj);
    std::fs::write(path, existing.set(driver, section).to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        let doc = Json::obj()
            .set("name", "throughput")
            .set("trials", 16u64)
            .set("wall_ms", 12.5)
            .set("ok", true)
            .set("nothing", Json::Null)
            .set(
                "entries",
                Json::Arr(vec![Json::obj().set("speedup", 4.2), Json::Num(-3.0)]),
            );
        let text = doc.to_pretty();
        assert_eq!(parse(&text), Some(doc));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let doc = Json::Str("a \"quote\"\nline\ttab \\ slash ✓".into());
        assert_eq!(parse(&doc.to_pretty()), Some(doc));
        assert_eq!(parse("\"\\u0041\""), Some(Json::Str("A".into())));
    }

    #[test]
    fn set_replaces_existing_keys() {
        let doc = Json::obj().set("k", 1u64).set("k", 2u64);
        assert_eq!(doc.get("k"), Some(&Json::Num(2.0)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn garbage_fails_to_parse() {
        assert_eq!(parse("{\"a\": }"), None);
        assert_eq!(parse("[1, 2"), None);
        assert_eq!(parse("{} trailing"), None);
        assert_eq!(parse(""), None);
    }

    #[test]
    fn record_merges_sections() {
        let dir = std::env::temp_dir().join(format!("bench_results_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(RESULTS_FILE);
        let _ = std::fs::remove_file(&path);

        record_at(&path, "alpha", Json::obj().set("wall_ms", 10.0)).unwrap();
        record_at(&path, "beta", Json::obj().set("wall_ms", 20.0)).unwrap();
        record_at(&path, "alpha", Json::obj().set("wall_ms", 30.0)).unwrap();

        let doc = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("alpha").and_then(|a| a.get("wall_ms")),
            Some(&Json::Num(30.0))
        );
        assert_eq!(
            doc.get("beta").and_then(|b| b.get("wall_ms")),
            Some(&Json::Num(20.0))
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn service_metrics_snapshot_json_parses_under_this_model() {
        // `service_load` embeds `MetricsSnapshot::to_json()` output into
        // BENCH_results.json via `parse`; keep the two formats compatible.
        let metrics = service::ServiceMetrics::default();
        metrics.submitted.add(10);
        metrics.accepted.add(8);
        metrics.rejected.add(2);
        metrics.completed.add(8);
        metrics
            .end_to_end
            .record(std::time::Duration::from_micros(750));
        let snapshot = metrics.snapshot(3);

        let doc = parse(&snapshot.to_json()).expect("snapshot JSON parses");
        assert_eq!(doc.get("accepted"), Some(&Json::Num(8.0)));
        assert_eq!(doc.get("shed_rate"), Some(&Json::Num(0.2)));
        let e2e = doc.get("end_to_end_us").expect("histogram object");
        assert_eq!(e2e.get("count"), Some(&Json::Num(1.0)));
        assert!(e2e.get("p99_us").is_some());
    }

    #[test]
    fn unparseable_file_is_replaced() {
        let dir = std::env::temp_dir().join(format!("bench_results_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(RESULTS_FILE);
        std::fs::write(&path, "not json at all").unwrap();
        record_at(&path, "alpha", Json::obj().set("ok", true)).unwrap();
        let doc = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(doc.get("alpha").is_some());
        std::fs::remove_file(&path).unwrap();
    }
}
