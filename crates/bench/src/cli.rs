//! Std-only flag parsing for the bench binaries.
//!
//! The implementation lives in [`service::cli`] — the same parser the
//! `lexforensica` CLI subcommands use — and is re-exported here so the
//! bench drivers and the CLI share one vocabulary that cannot drift.
//!
//! ```console
//! $ cargo run --release --bin experiments -- --trials 32 --threads 8 --seed 7
//! ```

pub use service::cli::Args;

#[cfg(test)]
mod tests {
    use super::*;

    /// The re-export keeps the bench-facing contract: both flag styles,
    /// positionals, and typed accessors with defaults.
    #[test]
    fn reexported_args_parse_bench_style_invocations() {
        let a = Args::parse_from(
            ["5000", "--trials", "8", "--seed=42"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.positional(0), Some("5000"));
        assert_eq!(a.u64_flag("trials", 1), 8);
        assert_eq!(a.u64_flag("seed", 0), 42);
        assert_eq!(a.usize_flag("threads", 4), 4);
    }
}
