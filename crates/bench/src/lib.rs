//! Shared helpers for the experiment-regeneration binaries and std-only
//! benchmarks.
//!
//! The binaries regenerate the paper's evaluation artifacts:
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Paper Table 1 — the 20 warrant/no-warrant scenes |
//! | `oneswarm_attack` | §IV-A feasibility — timing-attack accuracy sweeps incl. the wide-band breaking point |
//! | `watermark_detect` | §IV-B feasibility — detection vs code length/jitter/suspects, circuit variant, baseline comparison |
//! | `suppression` | §I warning — admissible vs suppressed outcomes |
//! | `p2p_comparison` | Table 1 rows 9/10 ablation — normal vs anonymous P2P |
//! | `watermark_roc` | detector calibration — null spread, ROC/AUC, repetition gain |
//! | `throughput` | batch-assessment scaling — sequential vs cached vs threaded |
//! | `experiments` | parallel trial-runner scaling + detector fast-path vs reference |
//! | `service_load` | bounded-queue service — worker scaling, cached ceiling, 2× overload shed/latency |
//! | `simcore_scale` | population-scale overlays — events/s, wall time, peak RSS per size, 1/2/8-worker determinism |
//!
//! Perf drivers additionally write machine-readable measurements into
//! [`results::RESULTS_FILE`] so the trajectory is tracked across PRs, and
//! take `--trials`/`--threads`/`--seed` flags parsed by [`cli::Args`].

pub mod cli;
pub mod harness;
pub mod results;

/// Prints a horizontal rule sized to a table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats an optional millisecond value.
pub fn fmt_ms(x: Option<f64>) -> String {
    x.map(|v| format!("{v:.0}")).unwrap_or_else(|| "—".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn fmt_ms_handles_none() {
        assert_eq!(fmt_ms(None), "—");
        assert_eq!(fmt_ms(Some(12.4)), "12");
    }
}
