//! Regenerates the Table 1 row-9 vs row-10 ablation: identification
//! effort and reach on "normal P2P software" vs an anonymous overlay.
//! Both are lawful without process; the contrast is operational.
//!
//! Run with: `cargo run -p bench --bin p2p_comparison --release`.
//! Takes `--trials N`, `--threads N`, and `--seed S`; each overlay size
//! is averaged over the trials, which fan out across the worker threads
//! with results independent of the worker count.

use bench::cli::Args;
use p2psim::gnutella_experiment::{run_comparisons_on, ComparisonConfig};
use trials::TrialRunner;

fn main() {
    let args = Args::parse();
    let trials = args.usize_flag("trials", 1);
    let runner =
        TrialRunner::with_threads(args.usize_flag("threads", TrialRunner::new().threads()));
    let base_seed = args.u64_flag("seed", 0x90a7);

    println!("P2P ablation — normal (row 9) vs anonymous (row 10) overlays ({trials} trial(s))\n");
    println!(
        "{:<8} {:>8} | {:>14} {:>9} | {:>16} {:>9}",
        "peers", "sources", "gnutella found", "queries", "oneswarm found", "probes"
    );
    bench::rule(76);
    for peers in [32usize, 64, 128] {
        let cfg = ComparisonConfig {
            peers,
            sources: peers / 8,
            seed: base_seed ^ peers as u64,
            ..ComparisonConfig::default()
        };
        let (results, _) = run_comparisons_on(&runner, &cfg, trials);
        let n = results.len().max(1) as f64;
        let mean = |f: &dyn Fn(&p2psim::gnutella_experiment::ComparisonResult) -> f64| {
            results.iter().map(f).sum::<f64>() / n
        };
        println!(
            "{:<8} {:>8.1} | {:>14} {:>9.1} | {:>16} {:>9.1}",
            peers,
            mean(&|r| r.true_sources as f64),
            format!(
                "{:.1}/{:.1}",
                mean(&|r| r.gnutella_identified as f64),
                mean(&|r| r.true_sources as f64)
            ),
            mean(&|r| r.gnutella_queries as f64),
            format!(
                "{:.1} (neighbors only)",
                mean(&|r| r.oneswarm_identified as f64)
            ),
            mean(&|r| r.oneswarm_probes as f64),
        );
    }
    println!(
        "\nShape check: on normal P2P one flooded query openly enumerates the sources\n\
         (query hits name their senders); on the anonymous overlay the investigator\n\
         must run the timing attack and can only ever classify its direct neighbors.\n\
         Both collections are lawful without process (Table 1 rows 9-10)."
    );
}
