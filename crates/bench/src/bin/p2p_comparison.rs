//! Regenerates the Table 1 row-9 vs row-10 ablation: identification
//! effort and reach on "normal P2P software" vs an anonymous overlay.
//! Both are lawful without process; the contrast is operational.
//!
//! Run with: `cargo run -p bench --bin p2p_comparison --release`

use p2psim::gnutella_experiment::{run_comparison, ComparisonConfig};

fn main() {
    println!("P2P ablation — normal (row 9) vs anonymous (row 10) overlays\n");
    println!(
        "{:<8} {:>8} | {:>14} {:>9} | {:>16} {:>9}",
        "peers", "sources", "gnutella found", "queries", "oneswarm found", "probes"
    );
    bench::rule(76);
    for peers in [32usize, 64, 128] {
        let cfg = ComparisonConfig {
            peers,
            sources: peers / 8,
            seed: 0x90a7 ^ peers as u64,
            ..ComparisonConfig::default()
        };
        let r = run_comparison(&cfg);
        println!(
            "{:<8} {:>8} | {:>14} {:>9} | {:>16} {:>9}",
            peers,
            r.true_sources,
            format!("{}/{}", r.gnutella_identified, r.true_sources),
            r.gnutella_queries,
            format!("{} (neighbors only)", r.oneswarm_identified),
            r.oneswarm_probes,
        );
    }
    println!(
        "\nShape check: on normal P2P one flooded query openly enumerates the sources\n\
         (query hits name their senders); on the anonymous overlay the investigator\n\
         must run the timing attack and can only ever classify its direct neighbors.\n\
         Both collections are lawful without process (Table 1 rows 9-10)."
    );
}
