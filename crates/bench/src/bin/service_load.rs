//! Load driver for the `service` crate: deterministic open- and
//! closed-loop traffic against the bounded-queue compliance service,
//! recording throughput/latency/shed-rate curves into
//! `BENCH_results.json`.
//!
//! ```console
//! $ cargo run --release --bin service_load -- [OPTIONS]
//!     --requests N      requests per scaling point   (default 3000)
//!     --workers N       largest worker count swept   (default 8)
//!     --capacity N      queue capacity               (default 512)
//!     --floor-us F      simulated engine floor, µs   (default 300)
//!     --overload X      offered load vs capacity     (default 2.0)
//!     --overload-requests N  open-loop request count (default 20000)
//!     --seed S          workload seed                (default 42)
//! ```
//!
//! Three experiments, all on the same cache-friendly workload (Table 1
//! patterns plus perturbations, request *i* drawn by
//! `trials::derive_seed(seed, i)` — deterministic and replayable):
//!
//! 1. **Worker scaling** (closed loop, `block`): the same request count
//!    at 1, 2, 4, … workers. The engine floor models the blocking share
//!    of a heavier assessment pipeline, so throughput scales with the
//!    worker pool, not the core count.
//! 2. **Cached ceiling** (closed loop, no floor): the raw plumbing rate
//!    — queue, cache hit, response — with everything hot.
//! 3. **Overload** (open loop, `reject`): requests paced at `--overload`
//!    times the nominal capacity. The bounded queue must turn the excess
//!    into *shed* requests while p99 end-to-end latency stays pinned
//!    near `capacity × service_time / workers` — not growing without
//!    bound the way an unbounded queue's would.
//!
//! The driver asserts the service's books balance after every phase:
//! every accepted request got exactly one response, and nothing was
//! answered twice (double-fulfilment panics in the service itself).

use bench::cli::Args;
use bench::results::{self, Json};
use forensic_law::prelude::*;
use forensic_law::scenarios::table1;
use service::prelude::*;
use std::time::{Duration, Instant};
use trials::derive_seed;

/// Table 1 patterns plus single-flag perturbations — the same
/// cache-friendly key space the `throughput` driver sweeps.
fn patterns() -> Vec<InvestigativeAction> {
    let mut patterns: Vec<InvestigativeAction> =
        table1().iter().map(|s| s.action().clone()).collect();
    let base = patterns.clone();
    for action in &base {
        let mut consented = InvestigativeAction::builder(action.actor(), action.data());
        consented.with_consent(Consent::by(ConsentAuthority::TargetSelf));
        patterns.push(consented.build());

        let mut probation = InvestigativeAction::builder(action.actor(), action.data());
        probation.target_on_probation();
        patterns.push(probation.build());
    }
    patterns
}

/// The deterministic request stream: request `i` is a pure function of
/// `(seed, i)` via the trials seed derivation.
fn request(patterns: &[InvestigativeAction], seed: u64, i: u64) -> InvestigativeAction {
    patterns[(derive_seed(seed, i) % patterns.len() as u64) as usize].clone()
}

/// Closed-loop run: `producers` threads push `requests` total through
/// the service and wait for every answer. Returns (wall, completed).
fn closed_loop(
    service: &ComplianceService,
    patterns: &[InvestigativeAction],
    seed: u64,
    requests: u64,
    producers: usize,
) -> (Duration, u64) {
    let start = Instant::now();
    let per_producer = requests.div_ceil(producers as u64);
    let completed = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..producers as u64)
            .map(|p| {
                scope.spawn(move || {
                    let lo = p * per_producer;
                    let hi = (lo + per_producer).min(requests);
                    let mut done = 0u64;
                    let mut tickets = Vec::with_capacity((hi - lo) as usize);
                    for i in lo..hi {
                        let action = request(patterns, seed, i);
                        tickets.push(service.submit(action).expect("block policy admits"));
                    }
                    for ticket in tickets {
                        if matches!(ticket.wait().outcome, Outcome::Completed(_)) {
                            done += 1;
                        }
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
    });
    (start.elapsed(), completed)
}

fn main() {
    let args = Args::parse();
    let requests = args.u64_flag("requests", 3000);
    let max_workers = args.usize_flag("workers", 8).max(1);
    let capacity = args.usize_flag("capacity", 512);
    let floor_us = args.u64_flag("floor-us", 300);
    let overload = args.f64_flag("overload", 2.0);
    let overload_requests = args.u64_flag("overload-requests", 20_000);
    let seed = args.u64_flag("seed", 42);

    let patterns = patterns();
    println!(
        "service_load: {} distinct-pattern pool, seed {seed}, floor {floor_us}us, capacity {capacity}",
        patterns.len()
    );
    bench::rule(76);

    // ── Phase 1: worker scaling, closed loop ────────────────────────────
    let mut worker_counts = Vec::new();
    let mut w = 1;
    while w < max_workers {
        worker_counts.push(w);
        w *= 2;
    }
    worker_counts.push(max_workers);

    let mut scaling = Vec::new();
    let mut base_rps = 0.0;
    for &workers in &worker_counts {
        let service = ComplianceService::start(ServiceConfig {
            workers,
            capacity,
            policy: AdmissionPolicy::Block,
            default_deadline: None,
            engine_floor: Duration::from_micros(floor_us),
            ..ServiceConfig::default()
        });
        let (wall, completed) = closed_loop(
            &service,
            &patterns,
            seed,
            requests,
            workers.min(4), // enough producers to keep the pool fed
        );
        let hit_rate = service.cache().stats().hit_rate();
        let finals = service.shutdown();
        assert_eq!(
            finals.accepted, requests,
            "scaling: admission lost requests"
        );
        assert_eq!(
            finals.responses(),
            finals.accepted,
            "scaling: lost a response"
        );
        assert_eq!(completed, requests, "scaling: not every request completed");

        let rps = requests as f64 / wall.as_secs_f64();
        if workers == 1 {
            base_rps = rps;
        }
        println!(
            "scaling  {workers:>2} workers  {:>9.1?}  {:>9.0} req/s  {:>5.2}x vs 1 worker  ({:.1}% hits)",
            wall,
            rps,
            rps / base_rps,
            hit_rate * 100.0
        );
        scaling.push(
            Json::obj()
                .set("workers", workers)
                .set("requests", requests)
                .set("wall_ms", wall.as_secs_f64() * 1e3)
                .set("throughput_rps", rps)
                .set("speedup_vs_1", rps / base_rps)
                .set("cache_hit_rate", hit_rate),
        );
    }

    // ── Phase 2: cached ceiling, no floor ───────────────────────────────
    let service = ComplianceService::start(ServiceConfig {
        workers: max_workers,
        capacity,
        policy: AdmissionPolicy::Block,
        default_deadline: None,
        engine_floor: Duration::ZERO,
        ..ServiceConfig::default()
    });
    let (wall, completed) = closed_loop(&service, &patterns, seed, requests, 2);
    let finals = service.shutdown();
    assert_eq!(
        finals.responses(),
        finals.accepted,
        "ceiling: lost a response"
    );
    assert_eq!(completed, requests, "ceiling: not every request completed");
    let ceiling_rps = requests as f64 / wall.as_secs_f64();
    println!("ceiling  {max_workers:>2} workers  {wall:>9.1?}  {ceiling_rps:>9.0} req/s  (floor 0: raw queue+cache plumbing)");

    // ── Phase 3: overload at `overload`× nominal capacity, reject ───────
    // Nominal capacity: `workers` slots each busy ~floor per request.
    let nominal_rps = max_workers as f64 / (floor_us as f64 * 1e-6);
    let offered_rps = nominal_rps * overload;
    let interval = Duration::from_secs_f64(1.0 / offered_rps);
    let service = ComplianceService::start(ServiceConfig {
        workers: max_workers,
        capacity,
        policy: AdmissionPolicy::Reject,
        default_deadline: None,
        engine_floor: Duration::from_micros(floor_us),
        ..ServiceConfig::default()
    });

    let start = Instant::now();
    let mut tickets = Vec::with_capacity(overload_requests as usize);
    let mut max_depth = 0usize;
    for i in 0..overload_requests {
        // Open-loop pacing: request `i`'s arrival time is a pure function
        // of `i`, independent of how the service is coping.
        let due = start + interval.mul_f64(i as f64);
        loop {
            let now = Instant::now();
            if now >= due {
                break;
            }
            let remaining = due - now;
            if remaining > Duration::from_micros(200) {
                std::thread::sleep(remaining - Duration::from_micros(100));
            } else {
                std::hint::spin_loop();
            }
        }
        match service.submit(request(&patterns, seed.wrapping_add(1), i)) {
            Ok(ticket) => tickets.push(ticket),
            Err(SubmitError::Overloaded) => {}
            Err(SubmitError::ShuttingDown) => unreachable!("admission stays open"),
        }
        if i % 64 == 0 {
            max_depth = max_depth.max(service.queue_depth());
        }
    }
    let offered_wall = start.elapsed();
    for ticket in tickets {
        assert!(
            matches!(ticket.wait().outcome, Outcome::Completed(_)),
            "overload: accepted requests must complete under reject policy"
        );
    }
    let wall = start.elapsed();
    let finals = service.shutdown();
    assert_eq!(
        finals.submitted, overload_requests,
        "overload: submissions miscounted"
    );
    assert_eq!(
        finals.responses(),
        finals.accepted,
        "overload: lost a response"
    );

    // The bounded queue pins end-to-end latency near the drain time of a
    // full queue. The ×10 headroom absorbs scheduler noise on loaded CI
    // machines; an unbounded queue under 2× load would blow through it
    // by orders of magnitude.
    let queue_bound_us = (capacity as u64 / max_workers as u64 + 2) * (floor_us + 200);
    let p99 = finals.end_to_end.p99_us;
    assert!(
        p99 <= queue_bound_us * 10,
        "overload: p99 end-to-end {p99}us exceeds 10x the full-queue bound {queue_bound_us}us"
    );

    let achieved_rps = finals.completed as f64 / wall.as_secs_f64();
    bench::rule(76);
    println!(
        "overload  offered {:>8.0} req/s ({}x nominal {:.0})  achieved {:>8.0} req/s",
        overload_requests as f64 / offered_wall.as_secs_f64(),
        overload,
        nominal_rps,
        achieved_rps
    );
    println!(
        "          shed rate {}  max observed depth {max_depth}/{capacity}",
        bench::pct(finals.shed_rate()),
    );
    println!(
        "          e2e p50 {}us  p95 {}us  p99 {}us (full-queue bound ~{}us)",
        finals.end_to_end.p50_us, finals.end_to_end.p95_us, p99, queue_bound_us
    );
    println!("metrics: {}", finals.to_json());

    // ── Record everything into BENCH_results.json ───────────────────────
    let metrics_json =
        results::parse(&finals.to_json()).expect("snapshot JSON parses under the bench model");
    let section = Json::obj()
        .set("name", "service_load")
        .set(
            "config",
            Json::obj()
                .set("requests", requests)
                .set("workers_max", max_workers)
                .set("capacity", capacity)
                .set("floor_us", floor_us)
                .set("overload_factor", overload)
                .set("overload_requests", overload_requests)
                .set("seed", seed),
        )
        .set("scaling", Json::Arr(scaling))
        .set(
            "cached_ceiling",
            Json::obj()
                .set("workers", max_workers)
                .set("throughput_rps", ceiling_rps),
        )
        .set(
            "overload",
            Json::obj()
                .set("policy", "reject")
                .set("nominal_rps", nominal_rps)
                .set("offered_rps", offered_rps)
                .set("achieved_rps", achieved_rps)
                .set("shed_rate", finals.shed_rate())
                .set("p50_e2e_us", finals.end_to_end.p50_us)
                .set("p95_e2e_us", finals.end_to_end.p95_us)
                .set("p99_e2e_us", p99)
                .set("full_queue_bound_us", queue_bound_us)
                .set("max_observed_depth", max_depth)
                .set("metrics", metrics_json),
        );
    results::record("service_load", section).expect("write BENCH_results.json");
    println!("wrote {}", results::RESULTS_FILE);
    println!("zero lost responses across all phases");
}
