//! Bench-trajectory gate: verifies `BENCH_results.json` is present,
//! parses, and contains a section for **every** registered driver.
//!
//! ```console
//! $ cargo run --release -p bench --bin check_results [-- --file PATH]
//! ```
//!
//! CI's bench-trajectory job runs the perf drivers and then this check
//! before uploading the results artifact: a driver that crashed, was
//! skipped, or silently stopped calling [`results::record`] turns the
//! job red instead of quietly thinning the perf history.

use bench::cli::Args;
use bench::results::{self, Json, REGISTERED_DRIVERS};
use std::process::ExitCode;

/// Every sweep point the `wire_load` driver emits must carry these
/// keys — the per-model comparison is useless if a point is missing
/// its throughput, tail latency, or memory column.
const WIRE_LOAD_POINT_KEYS: &[&str] = &[
    "connections",
    "total_requests",
    "throughput_rps",
    "rtt_p99_us",
    "peak_rss_kb",
];

/// Structural check for the `wire_load` section: a `servers` object
/// with at least one serving model, each holding a non-empty `sweep`
/// whose points all carry the required columns.
fn check_wire_load(section: &Json) -> Result<(), String> {
    let Some(Json::Obj(servers)) = section.get("servers") else {
        return Err("wire_load: missing \"servers\" object".into());
    };
    if servers.is_empty() {
        return Err("wire_load: \"servers\" is empty".into());
    }
    for (model, entry) in servers {
        let Some(Json::Arr(sweep)) = entry.get("sweep") else {
            return Err(format!("wire_load.{model}: missing \"sweep\" array"));
        };
        if sweep.is_empty() {
            return Err(format!("wire_load.{model}: sweep is empty"));
        }
        for (i, point) in sweep.iter().enumerate() {
            for key in WIRE_LOAD_POINT_KEYS {
                if !matches!(point.get(key), Some(Json::Num(_))) {
                    return Err(format!(
                        "wire_load.{model}: sweep point {i} lacks numeric {key:?}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Every sweep point the `simcore_scale` driver emits must carry the
/// scale axes: overlay size, event count, throughput, wall time, and
/// the point's peak RSS.
const SIMCORE_SCALE_POINT_KEYS: &[&str] = &[
    "nodes",
    "sim_events",
    "events_per_sec",
    "wall_ms",
    "peak_rss_kb",
];

/// Structural check for the `simcore_scale` section: both sweeps
/// present and non-empty with every point carrying the scale columns,
/// and the determinism phase recorded `identical: true`. Deliberately
/// does **not** require a particular overlay size — CI smoke runs pass
/// a small `--nodes`; the 100k+ points come from full runs.
fn check_simcore_scale(section: &Json) -> Result<(), String> {
    for sweep_key in ["oneswarm_sweep", "watermark_sweep"] {
        let Some(Json::Arr(sweep)) = section.get(sweep_key) else {
            return Err(format!("simcore_scale: missing {sweep_key:?} array"));
        };
        if sweep.is_empty() {
            return Err(format!("simcore_scale: {sweep_key} is empty"));
        }
        for (i, point) in sweep.iter().enumerate() {
            for key in SIMCORE_SCALE_POINT_KEYS {
                if !matches!(point.get(key), Some(Json::Num(_))) {
                    return Err(format!(
                        "simcore_scale.{sweep_key}: point {i} lacks numeric {key:?}"
                    ));
                }
            }
        }
    }
    match section.get("determinism").and_then(|d| d.get("identical")) {
        Some(Json::Bool(true)) => Ok(()),
        _ => Err("simcore_scale: determinism.identical is not true".into()),
    }
}

/// Every sweep point the `plan_search` driver emits must carry the
/// search axes: problem size, frontier work, expansion throughput,
/// cache amortization, and wall time.
const PLAN_SEARCH_POINT_KEYS: &[&str] = &[
    "items",
    "nodes_expanded",
    "candidates_evaluated",
    "nodes_per_sec",
    "cache_hit_rate",
    "wall_ms",
];

/// Structural check for the `plan_search` section: a non-empty sweep
/// whose points all carry the search columns, and the thread-count
/// determinism phase recorded `identical: true`. Deliberately does
/// **not** require a particular item count — CI smoke runs pass a
/// small `--items`.
fn check_plan_search(section: &Json) -> Result<(), String> {
    let Some(Json::Arr(sweep)) = section.get("sweep") else {
        return Err("plan_search: missing \"sweep\" array".into());
    };
    if sweep.is_empty() {
        return Err("plan_search: sweep is empty".into());
    }
    for (i, point) in sweep.iter().enumerate() {
        for key in PLAN_SEARCH_POINT_KEYS {
            if !matches!(point.get(key), Some(Json::Num(_))) {
                return Err(format!(
                    "plan_search: sweep point {i} lacks numeric {key:?}"
                ));
            }
        }
    }
    match section.get("determinism").and_then(|d| d.get("identical")) {
        Some(Json::Bool(true)) => Ok(()),
        _ => Err("plan_search: determinism.identical is not true".into()),
    }
}

/// Structural check for the `replay_serve` section: both replay phases
/// present with a real throughput number and **zero** divergences, and
/// a compaction phase that actually shrank the journal (ratio ≥ 2 — the
/// driver's workload is superseding by construction, so anything less
/// means the retention policy or the swap broke). Deliberately does
/// **not** require a particular record count — CI smoke runs pass a
/// small `--records`.
fn check_replay_serve(section: &Json) -> Result<(), String> {
    for phase in ["replay_live", "replay_compacted"] {
        let Some(entry @ Json::Obj(_)) = section.get(phase) else {
            return Err(format!("replay_serve: missing {phase:?} object"));
        };
        match entry.get("records_per_s") {
            Some(Json::Num(rps)) if *rps > 0.0 => {}
            _ => return Err(format!("replay_serve.{phase}: records_per_s not positive")),
        }
        match entry.get("divergences") {
            Some(Json::Num(d)) if *d == 0.0 => {}
            _ => return Err(format!("replay_serve.{phase}: divergences is not zero")),
        }
    }
    match section.get("compaction").and_then(|c| c.get("ratio")) {
        Some(Json::Num(ratio)) if *ratio >= 2.0 => Ok(()),
        Some(Json::Num(ratio)) => Err(format!(
            "replay_serve: compaction ratio {ratio:.2} is below 2x"
        )),
        _ => Err("replay_serve: compaction.ratio missing".into()),
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    let file = args
        .get("file")
        .unwrap_or(results::RESULTS_FILE)
        .to_string();

    let text = match std::fs::read_to_string(&file) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("FAIL: cannot read {file}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let Some(doc) = results::parse(&text) else {
        eprintln!("FAIL: {file} is not valid JSON");
        return ExitCode::FAILURE;
    };
    if !matches!(doc, Json::Obj(_)) {
        eprintln!("FAIL: {file} is not a JSON object");
        return ExitCode::FAILURE;
    }

    let mut missing = Vec::new();
    for &driver in REGISTERED_DRIVERS {
        match doc.get(driver) {
            Some(section @ Json::Obj(_)) => {
                let shape = match driver {
                    "wire_load" => check_wire_load(section),
                    "simcore_scale" => check_simcore_scale(section),
                    "plan_search" => check_plan_search(section),
                    "replay_serve" => check_replay_serve(section),
                    _ => Ok(()),
                };
                match shape {
                    Ok(()) => println!("ok: {driver}"),
                    Err(why) => {
                        eprintln!("FAIL: {why}");
                        missing.push(driver);
                    }
                }
            }
            Some(_) => {
                eprintln!("FAIL: section {driver:?} is not an object");
                missing.push(driver);
            }
            None => {
                eprintln!("FAIL: missing section {driver:?}");
                missing.push(driver);
            }
        }
    }

    if missing.is_empty() {
        println!(
            "{file}: all {} registered driver sections present",
            REGISTERED_DRIVERS.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "FAIL: {file} is missing {} of {} registered sections — \
             run the corresponding drivers (see REGISTERED_DRIVERS in \
             crates/bench/src/results.rs)",
            missing.len(),
            REGISTERED_DRIVERS.len()
        );
        ExitCode::FAILURE
    }
}
