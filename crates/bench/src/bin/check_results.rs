//! Bench-trajectory gate: verifies `BENCH_results.json` is present,
//! parses, and contains a section for **every** registered driver.
//!
//! ```console
//! $ cargo run --release -p bench --bin check_results [-- --file PATH]
//! ```
//!
//! CI's bench-trajectory job runs the perf drivers and then this check
//! before uploading the results artifact: a driver that crashed, was
//! skipped, or silently stopped calling [`results::record`] turns the
//! job red instead of quietly thinning the perf history.

use bench::cli::Args;
use bench::results::{self, Json, REGISTERED_DRIVERS};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::parse();
    let file = args
        .get("file")
        .unwrap_or(results::RESULTS_FILE)
        .to_string();

    let text = match std::fs::read_to_string(&file) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("FAIL: cannot read {file}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let Some(doc) = results::parse(&text) else {
        eprintln!("FAIL: {file} is not valid JSON");
        return ExitCode::FAILURE;
    };
    if !matches!(doc, Json::Obj(_)) {
        eprintln!("FAIL: {file} is not a JSON object");
        return ExitCode::FAILURE;
    }

    let mut missing = Vec::new();
    for &driver in REGISTERED_DRIVERS {
        match doc.get(driver) {
            Some(Json::Obj(_)) => println!("ok: {driver}"),
            Some(_) => {
                eprintln!("FAIL: section {driver:?} is not an object");
                missing.push(driver);
            }
            None => {
                eprintln!("FAIL: missing section {driver:?}");
                missing.push(driver);
            }
        }
    }

    if missing.is_empty() {
        println!(
            "{file}: all {} registered driver sections present",
            REGISTERED_DRIVERS.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "FAIL: {file} is missing {} of {} registered sections — \
             run the corresponding drivers (see REGISTERED_DRIVERS in \
             crates/bench/src/results.rs)",
            missing.len(),
            REGISTERED_DRIVERS.len()
        );
        ExitCode::FAILURE
    }
}
