//! Regenerates experiment **E-SUP**: the paper's §I warning quantified —
//! the same investigation run with and without proper process, and what
//! the court admits in each case.
//!
//! Run with: `cargo run -p bench --bin suppression`

use investigation::storyline::run_seized_server_storyline;
use watermark::experiment::WatermarkExperimentConfig;

fn main() {
    println!("E-SUP — suppression outcomes for the §IV-B storyline\n");
    let config = WatermarkExperimentConfig {
        suspects: 4,
        code_degree: 7,
        chip_ms: 300,
        ..WatermarkExperimentConfig::default()
    };

    println!(
        "{:<28} {:>12} {:>10} {:>10} {:>14}",
        "variant", "identified", "admitted", "excluded", "case survives"
    );
    bench::rule(80);
    for (label, lawful) in [
        ("lawful (warrant+order)", true),
        ("rogue (no process)", false),
    ] {
        let outcome = run_seized_server_storyline(&config, lawful);
        println!(
            "{:<28} {:>12} {:>10} {:>10} {:>14}",
            label,
            outcome.suspect_identified,
            outcome.court.admitted_count(),
            outcome.court.excluded_count(),
            outcome.court.case_survives(),
        );
    }
    println!();
    let lawful = run_seized_server_storyline(&config, true);
    println!("lawful variant, full court report:\n{}", lawful.court);
    let rogue = run_seized_server_storyline(&config, false);
    println!("rogue variant, full court report:\n{}", rogue.court);
    println!(
        "Shape check (paper §I): \"incorrect use of new techniques may result in\n\
         suppression of the gathered evidence in court\" — identical technical result,\n\
         opposite courtroom outcome."
    );
}
