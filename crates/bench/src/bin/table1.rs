//! Regenerates the paper's **Table 1** — "Warrant/Court Order/Subpoena in
//! Digital Crime Scenes" — by running all twenty scenes through the
//! compliance engine and printing paper verdict vs engine verdict.
//!
//! Run with: `cargo run -p bench --bin table1`

use forensic_law::assessment::Confidence;
use forensic_law::engine::ComplianceEngine;
use forensic_law::scenarios::table1;

fn main() {
    let engine = ComplianceEngine::new();
    println!("TABLE 1 — WARRANT/COURT ORDER/SUBPOENA IN DIGITAL CRIME SCENES");
    println!("(engine verdicts vs the paper's published column; (*) = authors' judgment rows)\n");
    println!(
        "{:<4} {:<72} {:>12} {:>22} {:>6}",
        "#", "scene", "paper", "engine", "match"
    );
    bench::rule(120);
    let mut matches = 0usize;
    let mut star_matches = 0usize;
    let rows = table1();
    for row in &rows {
        let assessment = engine.assess(row.action());
        let verdict = assessment.verdict();
        let agrees = verdict.needs_process() == row.paper_verdict().needs_process;
        let star_ok =
            (assessment.confidence() == Confidence::AuthorsJudgment) == row.paper_verdict().starred;
        if agrees {
            matches += 1;
        }
        if star_ok {
            star_matches += 1;
        }
        let mut summary = row.summary().to_string();
        summary.truncate(72);
        println!(
            "{:<4} {:<72} {:>12} {:>22} {:>6}",
            row.number(),
            summary,
            row.paper_verdict().to_string(),
            verdict.to_string(),
            if agrees { "✓" } else { "✗" },
        );
    }
    bench::rule(120);
    println!(
        "verdict agreement: {matches}/{} — confidence-marker agreement: {star_matches}/{}",
        rows.len(),
        rows.len()
    );
    if matches == rows.len() {
        println!("REPRODUCTION HOLDS: the engine reproduces every row of the paper's table.");
    } else {
        println!("REPRODUCTION FAILS: investigate the mismatched rows above.");
        std::process::exit(1);
    }
}
