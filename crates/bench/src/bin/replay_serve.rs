//! Bench driver for the journal replay load engine and segment
//! compaction, end to end: journal a large superseding session, refire
//! it against a live in-process wire server through the shared
//! [`wire::load`] core at max pacing, compact the journal down to its
//! latest-wins survivors, and refire the compacted session — asserting
//! zero divergences both times and a real compaction ratio. Records
//! into `BENCH_results.json` under `replay_serve`.
//!
//! ```console
//! $ cargo run --release --bin replay_serve -- [OPTIONS]
//!     --records N       records journaled and refired   (default 100000)
//!     --conns N         replay client connections       (default 64)
//!     --pipeline N      in-flight window per connection (default 32)
//!     --segment-kb N    segment rotation threshold, KiB (default 1024)
//!     --workers N       service worker threads          (default: cores, min 4)
//!     --threads N       assessor threads for the write  (default: cores)
//!     --seed S          workload seed                   (default 42)
//! ```
//!
//! The workload is *superseding by construction*: every request body is
//! distinct (the free-text `describe` field carries the record index)
//! but the engine-visible facts cycle through a small pool, so
//! compaction by fact-key collapses ~100k records to about a dozen —
//! the long-running-server disk-bound case the compactor exists for. A
//! sprinkle of repeated malformed lines rides along to exercise the
//! bad-request dedupe path over the wire.

use bench::cli::Args;
use bench::results::{self, Json};
use forensic_law::batch::BatchAssessor;
use forensic_law::factkey::FactKey;
use forensic_law::spec::{parse_jsonl, ActionSpec};
use journal::compact::{compact, Retention};
use journal::{read_all, Journal, JournalConfig, Mode, Record, RecordData, SyncPolicy};
use obs::TraceId;
use service::prelude::*;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};
use trials::derive_seed;
use wire::load::{self, LoadRequest, LoadSource};
use wire::prelude::*;

/// Engine-visible fact templates; `<D>` is the free-text slot that
/// makes every journaled request byte-distinct without changing its
/// fact-key.
const TEMPLATES: &[&str] = &[
    r#"{"actor": "leo", "data": "headers", "when": "realtime", "where": "isp", "describe": "<D>"}"#,
    r#"{"actor": "leo", "data": "content", "when": "realtime", "where": "isp", "describe": "<D>"}"#,
    r#"{"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider", "describe": "<D>"}"#,
    r#"{"actor": "leo", "data": "records", "when": "stored", "where": "provider", "describe": "<D>"}"#,
    r#"{"actor": "admin", "data": "headers", "when": "realtime", "where": "own-network", "describe": "<D>"}"#,
    r#"{"actor": "leo", "data": "content", "when": "stored-unopened", "where": "provider", "describe": "<D>"}"#,
    r#"{"actor": "leo", "data": "content", "when": "stored", "where": "device", "flags": ["consent"], "describe": "<D>"}"#,
    r#"{"actor": "private", "data": "content", "when": "stored", "where": "device", "describe": "<D>"}"#,
    r#"{"actor": "leo", "data": "content", "when": "realtime", "where": "wireless", "describe": "<D>"}"#,
    r#"{"actor": "employer", "data": "content", "when": "stored", "where": "own-network", "describe": "<D>"}"#,
];

/// Repeated malformed lines: identical bytes supersede each other, so
/// all of them compact down to [`MALFORMED.len()`] records.
const MALFORMED: &[&str] = &[
    "this is not a scenario",
    r#"{"actor": 42}"#,
    r#"{"data": "content", "when": "never"}"#,
];

/// Request `i` of the workload: mostly distinct-text verdict lines,
/// every 97th a malformed line.
fn line_for(seed: u64, i: u64) -> String {
    if i % 97 == 13 {
        MALFORMED[(i / 97 % MALFORMED.len() as u64) as usize].to_string()
    } else {
        let template = TEMPLATES[(derive_seed(seed, i) % TEMPLATES.len() as u64) as usize];
        template.replace("<D>", &format!("occurrence {i}"))
    }
}

/// The CLI `journal compact` retention policy, restated: verdicts
/// supersede by fact-key, malformed requests by raw bytes; nothing here
/// is load-dependent so nothing drops.
fn classify(record: &Record) -> Retention {
    let parsed = std::str::from_utf8(&record.request).ok().and_then(|line| {
        ActionSpec::from_json_line(line)
            .and_then(|s| s.to_action())
            .ok()
    });
    match (Status::from_byte(record.status), parsed) {
        (Some(Status::Ok), Some(action)) => {
            let mut key = Vec::with_capacity(9);
            key.push(0x01);
            key.extend_from_slice(&FactKey::of(&action).bits().to_be_bytes());
            Retention::Supersede(key)
        }
        (Some(Status::Ok), None) => Retention::Keep,
        (Some(Status::BadRequest), _) => {
            let mut key = Vec::with_capacity(1 + record.request.len());
            key.push(0x02);
            key.extend_from_slice(&record.request);
            Retention::Supersede(key)
        }
        _ => Retention::Drop,
    }
}

/// Refires journaled records against the live server at max pacing and
/// counts divergences from the journaled dispositions.
struct ReplaySource {
    shards: Vec<VecDeque<(u64, Vec<u8>)>>,
    /// seq → (journaled status byte, journaled verdict bytes).
    expected: HashMap<u64, (u8, Vec<u8>)>,
    divergences: u64,
    done: u64,
}

impl LoadSource for ReplaySource {
    fn next(&mut self, conn: usize) -> Option<LoadRequest> {
        self.shards[conn]
            .pop_front()
            .map(|(seq, payload)| LoadRequest {
                id: seq,
                payload,
                due_us: 0,
            })
    }

    fn complete(&mut self, _conn: usize, id: u64, status: Status, payload: &[u8], _rtt: Duration) {
        self.done += 1;
        let (journaled_status, journaled_verdict) = self
            .expected
            .remove(&id)
            .expect("response for a record never refired");
        let diverged = match Status::from_byte(journaled_status) {
            Some(Status::Ok) => status != Status::Ok || payload != journaled_verdict.as_slice(),
            Some(Status::BadRequest) => status != Status::BadRequest,
            _ => unreachable!("only deterministic records are refired"),
        };
        if diverged {
            self.divergences += 1;
        }
    }
}

/// One full refire of `records` against `addr`. Returns (wall,
/// refired, divergences).
fn refire(
    addr: std::net::SocketAddr,
    connections: usize,
    pipeline: usize,
    records: &[Record],
) -> (Duration, u64, u64) {
    let deterministic: Vec<&Record> = records
        .iter()
        .filter(|r| {
            matches!(
                Status::from_byte(r.status),
                Some(Status::Ok) | Some(Status::BadRequest)
            )
        })
        .collect();
    let connections = connections.max(1).min(deterministic.len().max(1));
    let mut shards: Vec<VecDeque<(u64, Vec<u8>)>> =
        (0..connections).map(|_| VecDeque::new()).collect();
    let mut expected = HashMap::with_capacity(deterministic.len());
    for (i, record) in deterministic.iter().enumerate() {
        shards[i % connections].push_back((record.seq, record.request.clone()));
        expected.insert(record.seq, (record.status, record.verdict.clone()));
    }
    let total = deterministic.len() as u64;
    let mut source = ReplaySource {
        shards,
        expected,
        divergences: 0,
        done: 0,
    };
    let wall = load::drive(addr, connections, pipeline, &mut source).expect("replay drive");
    assert_eq!(source.done, total, "driver returned with responses missing");
    (wall, total, source.divergences)
}

/// Either serving model behind one handle (epoll where available — the
/// C10K pairing the replay engine is built for).
fn start_server(service: &Arc<ComplianceService>) -> (std::net::SocketAddr, ServerHandle) {
    #[cfg(target_os = "linux")]
    {
        let server = EventServer::start("127.0.0.1:0", Arc::clone(service), WireConfig::default())
            .expect("bind loopback");
        (server.local_addr(), ServerHandle::Event(server))
    }
    #[cfg(not(target_os = "linux"))]
    {
        let server = WireServer::start("127.0.0.1:0", Arc::clone(service), WireConfig::default())
            .expect("bind loopback");
        (server.local_addr(), ServerHandle::Threaded(server))
    }
}

enum ServerHandle {
    #[cfg(target_os = "linux")]
    Event(EventServer),
    #[cfg(not(target_os = "linux"))]
    Threaded(WireServer),
}

impl ServerHandle {
    fn shutdown(self) {
        match self {
            #[cfg(target_os = "linux")]
            ServerHandle::Event(s) => {
                s.shutdown();
            }
            #[cfg(not(target_os = "linux"))]
            ServerHandle::Threaded(s) => {
                s.shutdown();
            }
        }
    }
}

fn main() {
    let args = Args::parse();
    let records = args.u64_flag("records", 100_000);
    let connections = args.usize_flag("conns", 64).max(1);
    let pipeline = args.usize_flag("pipeline", 32).max(1);
    let segment_kb = args.u64_flag("segment-kb", 1024).max(1);
    let workers = args.usize_flag(
        "workers",
        std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .max(4),
    );
    let threads = args.usize_flag(
        "threads",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    let seed = args.u64_flag("seed", 42);

    let dir = std::env::temp_dir().join(format!("lxj-replay-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "replay_serve: {records} records, {connections} conns x {pipeline} pipeline, \
         {segment_kb} KiB segments, seed {seed}"
    );
    bench::rule(76);

    // Phase 1: journal the superseding session. Verdicts are computed
    // through the batch assessor (the write path the CLI `journal`
    // command takes); malformed lines journal their diagnostic as
    // bad-request records, exactly as the wire server would.
    let lines: Vec<String> = (0..records).map(|i| line_for(seed, i)).collect();
    let joined = lines.join("\n");
    let batch = parse_jsonl(joined.as_bytes());
    let actions: Vec<_> = batch.lines.iter().map(|l| l.action.clone()).collect();
    let assessor = BatchAssessor::new().with_threads(threads);
    let assessments = assessor.assess_all(&actions);
    let mut verdict_by_line: HashMap<usize, Vec<u8>> = batch
        .lines
        .iter()
        .zip(&assessments)
        .map(|(l, a)| (l.line, a.verdict_line().into_bytes()))
        .collect();
    let mut diagnostic_by_line: HashMap<usize, Vec<u8>> = batch
        .errors
        .iter()
        .map(|e| (e.line, e.error.to_string().into_bytes()))
        .collect();

    let (journal, recovery) = Journal::open(
        &dir,
        JournalConfig {
            segment_bytes: segment_kb * 1024,
            sync: SyncPolicy::GroupCommit,
            ..JournalConfig::default()
        },
    )
    .expect("open fresh journal");
    assert_eq!(recovery.next_seq, 1, "bench directory must start empty");
    let write_start = Instant::now();
    let mut last_seq = 0;
    let mut journaled_ok = 0u64;
    let mut journaled_bad = 0u64;
    for (i, line) in lines.iter().enumerate() {
        let (status, verdict) = if let Some(verdict) = verdict_by_line.remove(&(i + 1)) {
            journaled_ok += 1;
            (Status::Ok, verdict)
        } else {
            journaled_bad += 1;
            (
                Status::BadRequest,
                diagnostic_by_line
                    .remove(&(i + 1))
                    .expect("every line is a verdict or an error"),
            )
        };
        last_seq = journal
            .append(RecordData {
                trace: TraceId::mint(),
                at_us: journal::now_us(),
                status: status.as_byte(),
                request: line.as_bytes().to_vec(),
                verdict,
            })
            .expect("append");
    }
    journal.wait_durable(last_seq).expect("group commit lands");
    let write_wall = write_start.elapsed();
    journal.close().expect("clean close");
    let bytes_journaled: u64 = std::fs::read_dir(&dir)
        .expect("journal dir")
        .filter_map(|e| e.ok())
        .map(|e| e.metadata().map_or(0, |m| m.len()))
        .sum();
    println!(
        "journal_write    {write_wall:>9.1?}  {:>9.0} rec/s  {journaled_ok} ok + {journaled_bad} bad, {bytes_journaled} bytes",
        records as f64 / write_wall.as_secs_f64()
    );

    // Phase 2: refire the recorded session against a live server.
    let (recovered, truncation) = read_all(&dir, Mode::Strict).expect("strict scan");
    assert!(truncation.is_none(), "clean close must leave no torn tail");
    assert_eq!(recovered.len() as u64, records, "scan lost records");
    let service = Arc::new(ComplianceService::start(ServiceConfig {
        workers,
        capacity: 1024,
        policy: AdmissionPolicy::Block,
        default_deadline: None,
        engine_floor: Duration::ZERO,
        ..ServiceConfig::default()
    }));
    let (addr, server) = start_server(&service);
    let (replay_wall, refired, divergences) = refire(addr, connections, pipeline, &recovered);
    let replay_rps = refired as f64 / replay_wall.as_secs_f64();
    println!(
        "replay_live      {replay_wall:>9.1?}  {replay_rps:>9.0} rec/s  {divergences} divergences"
    );
    assert_eq!(divergences, 0, "live replay diverged from the journal");

    // Phase 3: compact — the superseding workload must collapse.
    let compact_start = Instant::now();
    let report = compact(&dir, JournalConfig::default(), classify).expect("compact");
    let compact_wall = compact_start.elapsed();
    let ratio = report.ratio();
    println!(
        "compact          {compact_wall:>9.1?}  {} -> {} records, {} -> {} bytes ({ratio:.1}x)",
        report.input_records, report.surviving_records, report.bytes_before, report.bytes_after
    );
    assert!(
        ratio >= 2.0,
        "superseding workload must compact at least 2x, got {ratio:.2}x"
    );

    // Phase 4: the compacted journal must refire just as clean.
    let (compacted, truncation) = read_all(&dir, Mode::Strict).expect("strict scan after compact");
    assert!(truncation.is_none(), "compaction must write clean segments");
    assert_eq!(compacted.len() as u64, report.surviving_records);
    let (cwall, crefired, cdivergences) = refire(addr, connections, pipeline, &compacted);
    println!(
        "replay_compacted {cwall:>9.1?}  {:>9.0} rec/s  {cdivergences} divergences",
        crefired as f64 / cwall.as_secs_f64()
    );
    assert_eq!(
        cdivergences, 0,
        "compacted replay diverged from the journal"
    );

    server.shutdown();
    if let Ok(service) = Arc::try_unwrap(service) {
        service.shutdown();
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
    bench::rule(76);

    let section = Json::obj()
        .set("name", "replay_serve")
        .set(
            "config",
            Json::obj()
                .set("records", records)
                .set("connections", connections)
                .set("pipeline", pipeline)
                .set("segment_kb", segment_kb)
                .set("workers", workers)
                .set("threads", threads)
                .set("seed", seed),
        )
        .set(
            "journal_write",
            Json::obj()
                .set("wall_ms", write_wall.as_secs_f64() * 1e3)
                .set("records_per_s", records as f64 / write_wall.as_secs_f64())
                .set("ok_records", journaled_ok)
                .set("bad_records", journaled_bad)
                .set("bytes", bytes_journaled),
        )
        .set(
            "replay_live",
            Json::obj()
                .set("wall_ms", replay_wall.as_secs_f64() * 1e3)
                .set("records_per_s", replay_rps)
                .set("refired", refired)
                .set("divergences", divergences),
        )
        .set(
            "compaction",
            Json::obj()
                .set("wall_ms", compact_wall.as_secs_f64() * 1e3)
                .set("input_records", report.input_records)
                .set("surviving_records", report.surviving_records)
                .set("superseded", report.superseded)
                .set("bytes_before", report.bytes_before)
                .set("bytes_after", report.bytes_after)
                .set("ratio", ratio),
        )
        .set(
            "replay_compacted",
            Json::obj()
                .set("wall_ms", cwall.as_secs_f64() * 1e3)
                .set("records_per_s", crefired as f64 / cwall.as_secs_f64())
                .set("refired", crefired)
                .set("divergences", cdivergences),
        );
    results::record("replay_serve", section).expect("write BENCH_results.json");
    println!("wrote {}", results::RESULTS_FILE);
    println!(
        "replayed {records} journaled records live with zero divergences; \
         compacted {:.1}x and replayed clean again",
        ratio
    );
}
