//! Planner search benchmark: how fast the adaptive investigation
//! planner expands the lawful-process space as the evidence-goal count
//! climbs, and how hard the shared verdict cache works for it.
//!
//! Run with: `cargo run -p bench --bin plan_search --release`. Takes
//! `--items N` (the largest item count, default 12, capped at the
//! planner's 32-item limit) and `--threads T` for the assessor pool.
//!
//! The state space is a subset lattice — every extra same-rung item
//! roughly doubles the reachable frontier — so the interesting pair of
//! curves is nodes-expanded (exponential by design) against
//! nodes-expanded/s (which should stay flat: per-expansion work is one
//! batched, cache-amortized engine call). Each sweep point solves a
//! synthetic problem drawn from the Table 1 scenario space on a fresh
//! planner (cold cache); a final phase re-solves the largest problem at
//! 1, 2, and 8 assessor threads and asserts byte-identical plans, then
//! once more on a warmed planner to pin full cache amortization.
//! Everything lands under the `plan_search` key in
//! `BENCH_results.json`.

use bench::cli::Args;
use bench::results::{self, Json};
use planner::{parse_problem, PlanOutcome, Planner};
use std::fmt::Write as _;

/// The collect-spec pool, cycled to build synthetic problems: the
/// provider-records SCA ladder, device and public collections, and a
/// pen/trap stream — each at a different natural process rung.
const SPEC_POOL: &[(&str, &str)] = &[
    (
        "subscriber records",
        r#"{"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider"}"#,
    ),
    (
        "transaction logs",
        r#"{"actor": "leo", "data": "records", "when": "stored", "where": "provider"}"#,
    ),
    (
        "unopened mailbox",
        r#"{"actor": "leo", "data": "content", "when": "stored-unopened", "where": "provider"}"#,
    ),
    (
        "device image",
        r#"{"actor": "leo", "data": "content", "when": "stored", "where": "device"}"#,
    ),
    (
        "public posts",
        r#"{"actor": "leo", "data": "content", "when": "stored", "where": "public"}"#,
    ),
    (
        "pen register stream",
        r#"{"actor": "leo", "data": "headers", "when": "realtime", "where": "isp"}"#,
    ),
    (
        "admin flow logs",
        r#"{"actor": "admin", "data": "headers", "when": "stored", "where": "own-network"}"#,
    ),
    (
        "opened provider mail",
        r#"{"actor": "leo", "data": "content", "when": "stored", "where": "provider"}"#,
    ),
];

/// Showings the collected evidence may raise, cycled across items; the
/// empty slot means the item yields nothing.
const YIELDS_CYCLE: &[&str] = &[
    "reasonable-suspicion",
    "",
    "articulable-facts",
    "",
    "probable-cause",
    "",
];

/// Builds a deterministic synthetic problem with `items` evidence
/// items (every fourth one a lead), a consent route priced between
/// the subpoena and warrant rungs, and a mere-suspicion start.
fn problem_text(items: usize) -> String {
    let mut out = String::new();
    out.push_str("{\"start\": {\"standard\": \"mere-suspicion\"}}\n");
    out.push_str("{\"routes\": [\"consent\"]}\n");
    out.push_str("{\"costs\": {\"route\": 40}}\n");
    for i in 0..items {
        let (name, spec) = SPEC_POOL[i % SPEC_POOL.len()];
        let kind = if i % 4 == 3 { "lead" } else { "goal" };
        let yields = YIELDS_CYCLE[i % YIELDS_CYCLE.len()];
        let _ = write!(out, r#"{{"{kind}": "{name} #{i}", "collect": {spec}"#);
        if !yields.is_empty() {
            let _ = write!(out, r#", "yields": "{yields}""#);
        }
        out.push_str("}\n");
    }
    out
}

/// The item-count axis: doubling steps ending on `max`.
fn item_axis(max: usize) -> Vec<usize> {
    let mut sizes = vec![4usize, 6, 8, 10];
    sizes.retain(|&s| s < max);
    sizes.push(max);
    sizes
}

fn main() {
    let args = Args::parse();
    let max_items = args.usize_flag("items", 12).clamp(4, 32);
    let threads = args.usize_flag(
        "threads",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );

    println!("plan search — best-first over the lawful-process space\n");
    println!(
        "{:<8} {:>6} {:>10} {:>12} {:>8} {:>12} {:>10} {:>10} {:>10}",
        "items",
        "goals",
        "nodes",
        "candidates",
        "batches",
        "nodes/s",
        "hit rate",
        "wall ms",
        "cost"
    );
    bench::rule(94);

    let mut points = Vec::new();
    for items in item_axis(max_items) {
        let text = problem_text(items);
        let problem = parse_problem(text.as_bytes()).expect("synthetic problem parses");
        let goals = text.matches("\"goal\"").count();
        // Fresh planner per point: every solve starts cache-cold, so
        // the hit rate below is the *intra-search* amortization.
        let planner = Planner::with_threads(threads);
        let outcome = planner.solve(&problem).expect("synthetic problem solves");
        let stats = outcome.stats().clone();
        let (solved, total_cost) = match &outcome {
            PlanOutcome::Plan(plan) => (true, plan.total_cost),
            PlanOutcome::NoLawfulPath(_) => (false, 0),
        };
        assert!(solved, "synthetic problem at {items} items has no plan");
        let wall_ms = stats.wall.as_secs_f64() * 1e3;
        println!(
            "{:<8} {:>6} {:>10} {:>12} {:>8} {:>12.0} {:>9.1}% {:>10.1} {:>10}",
            items,
            goals,
            stats.nodes_expanded,
            stats.candidates_evaluated,
            stats.batch_calls,
            stats.nodes_per_second(),
            stats.cache_hit_rate() * 100.0,
            wall_ms,
            total_cost,
        );
        points.push(
            Json::obj()
                .set("items", items)
                .set("goals", goals)
                .set("nodes_expanded", stats.nodes_expanded)
                .set("candidates_evaluated", stats.candidates_evaluated)
                .set("batch_calls", stats.batch_calls)
                .set("nodes_per_sec", stats.nodes_per_second())
                .set("cache_hits", stats.cache_hits)
                .set("cache_misses", stats.cache_misses)
                .set("cache_hit_rate", stats.cache_hit_rate())
                .set("wall_ms", wall_ms)
                .set("total_cost", total_cost),
        );
    }

    // Determinism: the emitted plan bytes must not depend on the
    // assessor thread count.
    let text = problem_text(max_items);
    let problem = parse_problem(text.as_bytes()).expect("synthetic problem parses");
    let renders: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            Planner::with_threads(t)
                .solve(&problem)
                .expect("solves")
                .render()
        })
        .collect();
    let identical = renders.iter().all(|r| r == &renders[0]);
    assert!(identical, "plan bytes changed with the thread count");
    println!("\ndeterminism: {max_items}-item plan byte-identical at 1/2/8 assessor threads");

    // Warm cache: a second solve on the same planner must answer every
    // verdict lookup from the shared cache.
    let planner = Planner::with_threads(threads);
    planner.solve(&problem).expect("cold solve");
    let warm = planner.solve(&problem).expect("warm solve");
    let warm_stats = warm.stats().clone();
    assert_eq!(warm_stats.cache_misses, 0, "warm solve missed the cache");
    println!(
        "warm cache: second solve {} hits, {} misses ({:.1}% hit rate)",
        warm_stats.cache_hits,
        warm_stats.cache_misses,
        warm_stats.cache_hit_rate() * 100.0
    );

    results::record(
        "plan_search",
        Json::obj()
            .set(
                "config",
                Json::obj().set("items", max_items).set("threads", threads),
            )
            .set("sweep", Json::Arr(points))
            .set(
                "determinism",
                Json::obj()
                    .set(
                        "threads",
                        Json::Arr(vec![1u64.into(), 2u64.into(), 8u64.into()]),
                    )
                    .set("identical", identical),
            )
            .set(
                "warm_cache",
                Json::obj()
                    .set("hits", warm_stats.cache_hits)
                    .set("misses", warm_stats.cache_misses)
                    .set("hit_rate", warm_stats.cache_hit_rate()),
            ),
    )
    .expect("write BENCH_results.json");
    println!("recorded: plan_search section in {}", results::RESULTS_FILE);
}
