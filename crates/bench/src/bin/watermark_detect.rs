//! Regenerates experiment **E-IV-B**: the feasibility of the long-PN-code
//! DSSS flow watermark through an anonymizing proxy (paper §IV-B),
//! measured as suspect-identification accuracy vs code length and jitter,
//! against the naive rate-correlation baseline.
//!
//! Run with: `cargo run -p bench --bin watermark_detect --release`
//! (debug builds work but take minutes on the longer codes). Takes
//! `--trials N`, `--threads N`, and `--seed S`; trials fan out across the
//! worker threads with results independent of the worker count.

use bench::cli::Args;
use trials::TrialRunner;
use watermark::circuit_experiment::run_circuit_trial;
use watermark::experiment::{run_trials_on, WatermarkExperimentConfig};

fn main() {
    let args = Args::parse();
    let trials = args.usize_flag("trials", 8);
    let runner =
        TrialRunner::with_threads(args.usize_flag("threads", TrialRunner::new().threads()));
    let base_seed = args.u64_flag("seed", 0xbeef);
    let run_trials =
        |cfg: &WatermarkExperimentConfig, trials: usize| run_trials_on(&runner, cfg, trials).0;
    println!("E-IV-B — DSSS watermark traceback feasibility (paper §IV-B)\n");

    // Sweep 1: PN code length (longer codes → more despreading gain).
    println!("sweep 1: PN code length (8 suspects, jitter 5–60 ms, {trials} trials each)");
    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>10}",
        "code length", "observation(s)", "watermark", "baseline", "mean FP"
    );
    bench::rule(66);
    for degree in [6u32, 7, 8, 9] {
        let cfg = WatermarkExperimentConfig {
            code_degree: degree,
            chip_ms: 300,
            seed: base_seed ^ degree as u64,
            ..WatermarkExperimentConfig::default()
        };
        let len = (1u32 << degree) - 1;
        let obs_s = len as f64 * 0.3;
        let s = run_trials(&cfg, trials);
        println!(
            "{:<12} {:>14} {:>12} {:>12} {:>10.2}",
            len,
            format!("{obs_s:.0}"),
            bench::pct(s.watermark_accuracy),
            bench::pct(s.baseline_accuracy),
            s.mean_false_positives,
        );
    }

    // Sweep 2: proxy jitter (the anonymizer fighting back).
    println!("\nsweep 2: proxy jitter (code length 255, chip 300 ms)");
    println!(
        "{:<18} {:>12} {:>12}",
        "jitter band (ms)", "watermark", "baseline"
    );
    bench::rule(44);
    for (lo, hi) in [(0u64, 1u64), (5, 60), (50, 200), (100, 400)] {
        let cfg = WatermarkExperimentConfig {
            code_degree: 8,
            chip_ms: 300,
            proxy_jitter_ms: (lo, hi),
            seed: base_seed ^ 0xcafe ^ hi,
            ..WatermarkExperimentConfig::default()
        };
        let s = run_trials(&cfg, trials);
        println!(
            "{:<18} {:>12} {:>12}",
            format!("[{lo}, {hi})"),
            bench::pct(s.watermark_accuracy),
            bench::pct(s.baseline_accuracy),
        );
    }

    // Sweep 3: number of candidate suspects (identification gets harder).
    println!("\nsweep 3: candidate suspects (code length 255)");
    println!("{:<10} {:>12} {:>12}", "suspects", "watermark", "baseline");
    bench::rule(36);
    for suspects in [2usize, 4, 8, 16] {
        let cfg = WatermarkExperimentConfig {
            suspects,
            code_degree: 8,
            chip_ms: 300,
            seed: base_seed ^ 0xd00d ^ suspects as u64,
            ..WatermarkExperimentConfig::default()
        };
        let s = run_trials(&cfg, trials);
        println!(
            "{:<10} {:>12} {:>12}",
            suspects,
            bench::pct(s.watermark_accuracy),
            bench::pct(s.baseline_accuracy),
        );
    }

    // Sweep 4: three-hop onion circuit (the Tor-flavoured variant),
    // with and without mix batching at the middle relay.
    println!("\nsweep 4: three-hop onion circuit (code length 255, per-hop jitter 5-60 ms)");
    println!("{:<26} {:>12}", "middle-relay behaviour", "watermark");
    bench::rule(40);
    for (label, batching) in [
        ("jitter only", None),
        ("mix batching 100 ms", Some(100u64)),
        ("mix batching 250 ms", Some(250)),
    ] {
        let cfg = WatermarkExperimentConfig {
            code_degree: 8,
            chip_ms: 300,
            seed: base_seed ^ 0x0c1c,
            ..WatermarkExperimentConfig::default()
        };
        let (correct, _) = runner.run(trials, |t| {
            run_circuit_trial(&cfg, batching, t).watermark_correct()
        });
        let hits = correct.iter().filter(|&&c| c).count();
        println!(
            "{:<26} {:>12}",
            label,
            bench::pct(hits as f64 / trials as f64)
        );
    }

    println!(
        "\nShape check (paper §IV-B): the watermark identifies the suspect through the\n\
         jittering anonymizer — and through a full three-hop onion circuit — where\n\
         naive rate correlation degrades, using only rate observation: a court\n\
         order, not a wiretap warrant."
    );
}
