//! Parallel trial-runner scaling driver: the ROC/experiment evaluation
//! suite run on a sequential baseline vs a multi-worker
//! [`trials::TrialRunner`], plus the DSSS detector fast path vs its
//! retained naive reference — with every measurement written to
//! `BENCH_results.json` so the perf trajectory is tracked across PRs.
//!
//! ```console
//! $ cargo run --release --bin experiments -- --trials 16 --threads 8 --seed 48879
//! ```
//!
//! Every workload asserts that the parallel outcomes are identical to the
//! sequential ones before recording a speedup: the runner's determinism
//! contract means worker count may only ever change the wall clock.

use bench::cli::Args;
use bench::results::{self, Json};
use p2psim::experiment::{run_experiments_on, ExperimentConfig};
use std::time::Instant;
use trials::TrialRunner;
use watermark::detect::{ideal_series, Detector};
use watermark::experiment::{run_trials_on, WatermarkExperimentConfig};
use watermark::pn::PnCode;
use watermark::roc::{null_statistics_on, signal_statistics_on};

/// One measured workload: sequential wall, parallel wall, agreement.
struct Scaling {
    name: &'static str,
    seq_ms: f64,
    par_ms: f64,
    identical: bool,
}

impl Scaling {
    fn speedup(&self) -> f64 {
        if self.par_ms == 0.0 {
            f64::INFINITY
        } else {
            self.seq_ms / self.par_ms
        }
    }
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

fn scale<T: PartialEq>(
    name: &'static str,
    sequential: &TrialRunner,
    parallel: &TrialRunner,
    run: impl Fn(&TrialRunner) -> T,
) -> Scaling {
    let (seq_out, seq_ms) = timed(|| run(sequential));
    let (par_out, par_ms) = timed(|| run(parallel));
    Scaling {
        name,
        seq_ms,
        par_ms,
        identical: seq_out == par_out,
    }
}

fn main() {
    let args = Args::parse();
    let trials = args.usize_flag("trials", 16);
    let threads = args.usize_flag("threads", TrialRunner::new().threads());
    let seed = args.u64_flag("seed", 0xbeef);

    let sequential = TrialRunner::sequential();
    let parallel = TrialRunner::with_threads(threads);
    println!("experiment-suite scaling: {trials} trials, 1 vs {threads} workers, seed {seed:#x}");
    bench::rule(74);

    let mut rows: Vec<Scaling> = Vec::new();

    // E-IV-B: the watermark-through-proxy experiment (both conditions per
    // trial), the heaviest netsim workload in the suite.
    let wm_cfg = WatermarkExperimentConfig {
        suspects: 4,
        code_degree: 7,
        chip_ms: 300,
        seed,
        ..WatermarkExperimentConfig::default()
    };
    rows.push(scale("watermark_experiment", &sequential, &parallel, |r| {
        run_trials_on(r, &wm_cfg, trials).0
    }));

    // E-IV-A: the OneSwarm timing-attack experiment batch.
    let p2p_cfg = ExperimentConfig {
        peers: 48,
        sources: 8,
        targets: 12,
        probes: 3,
        seed,
        ..ExperimentConfig::default()
    };
    rows.push(scale("oneswarm_experiment", &sequential, &parallel, |r| {
        let (batch, _) = run_experiments_on(r, &p2p_cfg, trials);
        batch
            .results
            .iter()
            .map(|res| res.outcomes.clone())
            .collect::<Vec<_>>()
    }));

    // Detector calibration: null + signal statistic draws.
    let code = PnCode::m_sequence(9, 1);
    let roc_trials = trials * 25;
    rows.push(scale("roc_statistics", &sequential, &parallel, |r| {
        let null = null_statistics_on(r, &code, 2, 100.0, 30.0, roc_trials, seed);
        let signal = signal_statistics_on(r, &code, 2, 120.0, 40.0, 30.0, roc_trials, seed ^ 1);
        (null, signal)
    }));

    println!(
        "{:<24} {:>12} {:>12} {:>9}  identical",
        "workload", "1 worker", "n workers", "speedup"
    );
    for row in &rows {
        assert!(
            row.identical,
            "{}: parallel outcomes diverged from sequential",
            row.name
        );
        println!(
            "{:<24} {:>9.1} ms {:>9.1} ms {:>8.2}x  yes",
            row.name,
            row.seq_ms,
            row.par_ms,
            row.speedup()
        );
    }

    // Detector synchronization search: prefix-sum fast path vs the
    // retained naive reference (single-threaded, algorithmic speedup).
    let det_code = PnCode::m_sequence(10, 1);
    let oversample = 4;
    let max_offset = 6 * oversample;
    let mut series = vec![60.0; max_offset];
    series.extend(ideal_series(&det_code, oversample, 120.0, 40.0));
    let det = Detector::new(
        det_code.clone(),
        oversample,
        max_offset,
        Detector::sigma_threshold(det_code.len(), 4.0),
    );
    let reps = (trials as u32).max(8);
    let (fast, fast_ms) = timed(|| {
        let mut last = det.detect(&series);
        for _ in 1..reps {
            last = det.detect(&series);
        }
        last
    });
    let (reference, ref_ms) = timed(|| {
        let mut last = det.detect_reference(&series);
        for _ in 1..reps {
            last = det.detect_reference(&series);
        }
        last
    });
    assert_eq!(fast.best_offset, reference.best_offset);
    assert_eq!(fast.detected, reference.detected);
    let det_speedup = ref_ms / fast_ms.max(1e-9);
    println!(
        "{:<24} {:>9.1} ms {:>9.1} ms {:>8.2}x  yes   (reference vs prefix-sum, {} reps)",
        "detect_sync_search", ref_ms, fast_ms, det_speedup, reps
    );
    bench::rule(74);

    let entries: Vec<Json> = rows
        .iter()
        .map(|row| {
            Json::obj()
                .set("name", row.name)
                .set("trials", trials)
                .set("wall_ms_sequential", row.seq_ms)
                .set("wall_ms_parallel", row.par_ms)
                .set("speedup", row.speedup())
                .set("identical", row.identical)
        })
        .chain(std::iter::once(
            Json::obj()
                .set("name", "detect_sync_search")
                .set("trials", reps as u64)
                .set("wall_ms_reference", ref_ms)
                .set("wall_ms_fast", fast_ms)
                .set("speedup", det_speedup)
                .set("identical", true),
        ))
        .collect();
    let section = Json::obj()
        .set("name", "experiments")
        .set(
            "config",
            Json::obj()
                .set("trials", trials)
                .set("threads", threads)
                .set("seed", seed),
        )
        .set("entries", Json::Arr(entries));
    results::record("experiments", section).expect("write BENCH_results.json");
    println!("wrote {}", results::RESULTS_FILE);
}
