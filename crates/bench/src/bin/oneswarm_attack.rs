//! Regenerates experiment **E-IV-A**: the feasibility of the OneSwarm
//! timing attack (paper §IV-A), measured as source/proxy classification
//! quality across overlay sizes and delay regimes.
//!
//! Run with: `cargo run -p bench --bin oneswarm_attack` (use `--release`
//! for the larger sweeps).

use p2psim::experiment::{run_experiment, ExperimentConfig};
use p2psim::peer::DelayModel;

fn main() {
    println!("E-IV-A — OneSwarm timing-attack feasibility (paper §IV-A)\n");

    // Sweep 1: overlay size.
    println!("sweep 1: overlay size (trust degree 3, delays 150–300 ms, 5 probes/target)");
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>10}",
        "peers", "targets", "precision", "recall", "accuracy"
    );
    bench::rule(52);
    for peers in [32usize, 64, 128, 256] {
        let cfg = ExperimentConfig {
            peers,
            targets: (peers / 4).min(24),
            sources: peers / 8,
            seed: 0xa11ce ^ peers as u64,
            ..ExperimentConfig::default()
        };
        let r = run_experiment(&cfg);
        println!(
            "{:<8} {:>8} {:>10} {:>10} {:>10}",
            peers,
            cfg.targets,
            bench::pct(r.metrics.precision()),
            bench::pct(r.metrics.recall()),
            bench::pct(r.metrics.accuracy()),
        );
    }

    // Sweep 2: the delay gap that makes the attack work. As the source
    // delay band approaches the forward+source band, separation decays.
    println!("\nsweep 2: per-hop delay band (64 peers, 16 targets)");
    println!(
        "{:<22} {:>12} {:>10} {:>10}",
        "delay band (ms)", "threshold", "accuracy", "mean FP"
    );
    bench::rule(58);
    for (lo, hi) in [
        (50u64, 100u64),
        (150, 300),
        (300, 600),
        (500, 1000),
        // Wide bands: the delay *floor* no longer dominates the band
        // width, proxy and source response distributions overlap, and
        // false positives appear — the attack's breaking point.
        (10, 200),
        (5, 400),
    ] {
        let cfg = ExperimentConfig {
            delays: DelayModel {
                source_delay_ms: (lo, hi),
                forward_delay_ms: (lo, hi),
            },
            seed: 0xfeed ^ hi,
            ..ExperimentConfig::default()
        };
        let r = run_experiment(&cfg);
        let fp = r
            .outcomes
            .iter()
            .filter(|o| !o.is_source && o.classified_source)
            .count();
        println!(
            "{:<22} {:>12} {:>10} {:>10}",
            format!("[{lo}, {hi})"),
            format!("{:.0} ms", r.threshold_ms),
            bench::pct(r.metrics.accuracy()),
            fp,
        );
    }

    // Sweep 3: probes per target (more probes tighten the min-delay
    // estimate).
    println!("\nsweep 3: probes per target (64 peers)");
    println!("{:<8} {:>10}", "probes", "accuracy");
    bench::rule(20);
    for probes in [1usize, 2, 5, 10] {
        let cfg = ExperimentConfig {
            probes,
            seed: 0xbead ^ probes as u64,
            ..ExperimentConfig::default()
        };
        let r = run_experiment(&cfg);
        println!("{:<8} {:>10}", probes, bench::pct(r.metrics.accuracy()));
    }

    println!(
        "\nShape check (paper §IV-A): response-delay timing separates sources from\n\
         proxies with high accuracy using only protocol-visible traffic — workable\n\
         without warrant/court order/subpoena."
    );
}
