//! Regenerates experiment **E-IV-A**: the feasibility of the OneSwarm
//! timing attack (paper §IV-A), measured as source/proxy classification
//! quality across overlay sizes and delay regimes.
//!
//! Run with: `cargo run -p bench --bin oneswarm_attack` (use `--release`
//! for the larger sweeps). Takes `--trials N`, `--threads N`, and
//! `--seed S`; each configuration is averaged over the trials, which fan
//! out across the worker threads with results independent of the worker
//! count. `--nodes N` additionally runs the attack on population-scale
//! overlays up to N peers (100k+ works in release builds).

use bench::cli::Args;
use p2psim::experiment::{run_experiment, run_experiments_on, ExperimentBatch, ExperimentConfig};
use p2psim::peer::DelayModel;
use trials::TrialRunner;

fn main() {
    let args = Args::parse();
    let trials = args.usize_flag("trials", 1);
    let runner =
        TrialRunner::with_threads(args.usize_flag("threads", TrialRunner::new().threads()));
    let base_seed = args.u64_flag("seed", 0xa11ce);
    let run_batch =
        |cfg: &ExperimentConfig| -> ExperimentBatch { run_experiments_on(&runner, cfg, trials).0 };

    println!("E-IV-A — OneSwarm timing-attack feasibility (paper §IV-A)\n");

    // Sweep 1: overlay size.
    println!(
        "sweep 1: overlay size (trust degree 3, delays 150–300 ms, 5 probes/target, {trials} trial(s))"
    );
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>10}",
        "peers", "targets", "precision", "recall", "accuracy"
    );
    bench::rule(52);
    for peers in [32usize, 64, 128, 256] {
        let cfg = ExperimentConfig {
            peers,
            targets: (peers / 4).min(24),
            sources: peers / 8,
            seed: base_seed ^ peers as u64,
            ..ExperimentConfig::default()
        };
        let batch = run_batch(&cfg);
        println!(
            "{:<8} {:>8} {:>10} {:>10} {:>10}",
            peers,
            cfg.targets,
            bench::pct(batch.metrics.precision()),
            bench::pct(batch.metrics.recall()),
            bench::pct(batch.metrics.accuracy()),
        );
    }

    // Sweep 2: the delay gap that makes the attack work. As the source
    // delay band approaches the forward+source band, separation decays.
    println!("\nsweep 2: per-hop delay band (64 peers, 16 targets)");
    println!(
        "{:<22} {:>12} {:>10} {:>10}",
        "delay band (ms)", "threshold", "accuracy", "mean FP"
    );
    bench::rule(58);
    for (lo, hi) in [
        (50u64, 100u64),
        (150, 300),
        (300, 600),
        (500, 1000),
        // Wide bands: the delay *floor* no longer dominates the band
        // width, proxy and source response distributions overlap, and
        // false positives appear — the attack's breaking point.
        (10, 200),
        (5, 400),
    ] {
        let cfg = ExperimentConfig {
            delays: DelayModel {
                source_delay_ms: (lo, hi),
                forward_delay_ms: (lo, hi),
            },
            seed: base_seed ^ 0xfeed ^ hi,
            ..ExperimentConfig::default()
        };
        let batch = run_batch(&cfg);
        let fp: usize = batch
            .results
            .iter()
            .map(|r| {
                r.outcomes
                    .iter()
                    .filter(|o| !o.is_source && o.classified_source)
                    .count()
            })
            .sum();
        let threshold: f64 = batch.results.iter().map(|r| r.threshold_ms).sum::<f64>()
            / batch.results.len().max(1) as f64;
        println!(
            "{:<22} {:>12} {:>10} {:>10.1}",
            format!("[{lo}, {hi})"),
            format!("{threshold:.0} ms"),
            bench::pct(batch.metrics.accuracy()),
            fp as f64 / batch.results.len().max(1) as f64,
        );
    }

    // Sweep 3: probes per target (more probes tighten the min-delay
    // estimate).
    println!("\nsweep 3: probes per target (64 peers)");
    println!("{:<8} {:>10}", "probes", "accuracy");
    bench::rule(20);
    for probes in [1usize, 2, 5, 10] {
        let cfg = ExperimentConfig {
            probes,
            seed: base_seed ^ 0xbead ^ probes as u64,
            ..ExperimentConfig::default()
        };
        let batch = run_batch(&cfg);
        println!("{:<8} {:>10}", probes, bench::pct(batch.metrics.accuracy()));
    }

    // Sweep 4 (opt-in): population-scale overlays. `--nodes N` runs the
    // attack on overlays up to N peers (one trial per point — each point
    // is a whole-population run, so the averaging axis above does not
    // apply). Skipped by default to keep the standard output — the
    // golden fixture — and runtime unchanged.
    if args.get("nodes").is_some() {
        let nodes = args.usize_flag("nodes", 100_000).max(64);
        println!("\nsweep 4: population-scale overlay (--nodes, 1 trial/point, 3 probes)");
        println!(
            "{:<10} {:>8} {:>10} {:>12} {:>12} {:>10}",
            "peers", "targets", "accuracy", "events", "wall ms", "Mev/s"
        );
        bench::rule(68);
        let mut sizes = vec![nodes / 10, nodes];
        sizes.retain(|&s| s >= 64);
        sizes.dedup();
        for peers in sizes {
            let cfg = ExperimentConfig {
                peers,
                targets: (peers / 4).clamp(1, 24),
                sources: (peers / 8).max(1),
                probes: 3,
                seed: base_seed ^ peers as u64,
                ..ExperimentConfig::default()
            };
            let start = std::time::Instant::now();
            let result = run_experiment(&cfg);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            println!(
                "{:<10} {:>8} {:>10} {:>12} {:>12.0} {:>10.2}",
                peers,
                cfg.targets,
                bench::pct(result.metrics.accuracy()),
                result.sim_events,
                wall_ms,
                result.sim_events as f64 / wall_ms.max(1e-9) / 1e3,
            );
        }
    }

    println!(
        "\nShape check (paper §IV-A): response-delay timing separates sources from\n\
         proxies with high accuracy using only protocol-visible traffic — workable\n\
         without warrant/court order/subpoena."
    );
}
