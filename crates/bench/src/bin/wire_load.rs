//! Load driver for the `wire` crate: N pipelined connections over real
//! loopback TCP against an in-process server, recording client-measured
//! round-trip quantiles, throughput, and peak RSS per sweep point into
//! `BENCH_results.json` under `wire_load` — one sweep per serving
//! model, so the epoll event loop and the thread-per-connection server
//! are directly comparable.
//!
//! ```console
//! $ cargo run --release --bin wire_load -- [OPTIONS]
//!     --requests N      requests per connection        (default 500)
//!     --conns N         largest connection count swept (default 8;
//!                       capped by the fd soft limit, loudly)
//!     --pipeline N      in-flight window per connection (default 16)
//!     --server MODEL    epoll|threaded|both (default both on Linux,
//!                       threaded elsewhere)
//!     --addr HOST:PORT  drive an external `serve --tcp` server instead
//!                       of an in-process one (halves the fd cost per
//!                       connection: 1 fd, not a loopback pair; books
//!                       are asserted client-side only)
//!     --workers N       service worker threads         (default: cores, min 4)
//!     --capacity N      service queue capacity         (default 512)
//!     --floor-us F      simulated engine floor, µs     (default 200)
//!     --seed S          workload seed                  (default 42)
//! ```
//!
//! One experiment: sweep 1, 2, 4, … connections (plus `--conns` itself
//! when it is not a power of two — `--conns 10000` ends on a true
//! C10K point), each pipelining `--pipeline` requests deep, all
//! multiplexed into the one bounded-queue service. The load generator
//! is the shared [`wire::load`] core — on Linux a single epoll
//! readiness loop over nonblocking sockets, so ten thousand client
//! connections cost two threads, not twenty thousand; the same core
//! paces journal replay in `replay --serve`. The thread-per-connection
//! server's sweep is capped at [`THREADED_SWEEP_CAP`] connections —
//! 2 OS threads per connection does not survive C10K, which is the
//! point of the comparison — and the cap is always logged.
//!
//! The driver asserts exactly-once delivery at every point: every
//! request got exactly one `ok` answer (an unknown or repeated
//! response id panics), and the server's books agree.

use bench::cli::Args;
use bench::results::{self, Json};
use service::metrics::Histogram;
use service::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use trials::derive_seed;
use wire::prelude::*;

/// A pool of raw JSONL action lines spanning the spec vocabulary —
/// the wire payload is text, so the pool is text.
const LINES: &[&str] = &[
    r#"{"actor": "leo", "data": "headers", "when": "realtime", "where": "isp", "describe": "pen/trap stream"}"#,
    r#"{"actor": "leo", "data": "content", "when": "realtime", "where": "isp", "describe": "live interception"}"#,
    r#"{"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider", "describe": "subscriber records"}"#,
    r#"{"actor": "leo", "data": "records", "when": "stored", "where": "provider", "describe": "transaction records"}"#,
    r#"{"actor": "admin", "data": "headers", "when": "realtime", "where": "own-network", "describe": "ops review"}"#,
    r#"{"actor": "leo", "data": "content", "when": "stored-unopened", "where": "provider", "describe": "stored unopened mail"}"#,
    r#"{"actor": "leo", "data": "content", "when": "stored", "where": "device", "flags": ["consent"], "describe": "consented device exam"}"#,
    r#"{"actor": "private", "data": "content", "when": "stored", "where": "device", "describe": "private party search"}"#,
    r#"{"actor": "leo", "data": "content", "when": "realtime", "where": "wireless", "describe": "open wifi capture"}"#,
    r#"{"actor": "leo", "data": "headers", "when": "realtime", "where": "isp", "flags": ["rate-only"], "describe": "rate observation"}"#,
    r#"{"actor": "employer", "data": "content", "when": "stored", "where": "own-network", "describe": "workplace mail review"}"#,
    r#"{"actor": "leo", "data": "content", "when": "stored", "where": "media", "flags": ["hash-search"], "describe": "forensic media sweep"}"#,
];

/// Thread-per-connection serving spends 2 OS threads per socket; past
/// this many connections the sweep would be benchmarking the thread
/// scheduler's collapse, so the threaded model's sweep stops here
/// (logged, never silent).
const THREADED_SWEEP_CAP: usize = 512;

/// Fds reserved for everything that is not a benchmark connection
/// pair: listener, epoll instances, eventfd, stdio, and slack.
const FD_HEADROOM: u64 = 64;

/// Request `i` on connection `c` is a pure function of `(seed, c, i)`.
fn line_for(seed: u64, c: u64, i: u64) -> &'static str {
    LINES[(derive_seed(seed.wrapping_add(c), i) % LINES.len() as u64) as usize]
}

/// The process's soft `RLIMIT_NOFILE`, probed from `/proc/self/limits`.
#[cfg(target_os = "linux")]
fn fd_soft_limit() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = text.lines().find(|l| l.starts_with("Max open files"))?;
    // "Max open files   <soft>   <hard>   files"
    line.split_whitespace().nth(3)?.parse().ok()
}

#[cfg(not(target_os = "linux"))]
fn fd_soft_limit() -> Option<u64> {
    None
}

/// Peak resident set (`VmHWM`) in KiB. Covers server and load
/// generator together — both live in this process.
#[cfg(target_os = "linux")]
fn peak_rss_kb() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = text.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_kb() -> Option<u64> {
    None
}

/// Resets the RSS high-water mark so each sweep point reports its own
/// peak. Best-effort: if the kernel refuses, `VmHWM` stays monotonic
/// across points (still an upper bound, noted in the config).
fn reset_peak_rss() -> bool {
    #[cfg(target_os = "linux")]
    {
        std::fs::write("/proc/self/clear_refs", "5").is_ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// Either serving model behind one handle.
enum BenchServer {
    Threaded(WireServer),
    #[cfg(target_os = "linux")]
    Event(EventServer),
}

impl BenchServer {
    fn start(model: &str, service: &Arc<ComplianceService>) -> BenchServer {
        match model {
            "threaded" => BenchServer::Threaded(
                WireServer::start("127.0.0.1:0", Arc::clone(service), WireConfig::default())
                    .expect("bind loopback"),
            ),
            #[cfg(target_os = "linux")]
            "epoll" => BenchServer::Event(
                EventServer::start("127.0.0.1:0", Arc::clone(service), WireConfig::default())
                    .expect("bind loopback"),
            ),
            other => unreachable!("unvalidated server model {other:?}"),
        }
    }

    fn local_addr(&self) -> std::net::SocketAddr {
        match self {
            BenchServer::Threaded(s) => s.local_addr(),
            #[cfg(target_os = "linux")]
            BenchServer::Event(s) => s.local_addr(),
        }
    }

    fn shutdown(self) -> WireMetricsSnapshot {
        match self {
            BenchServer::Threaded(s) => s.shutdown(),
            #[cfg(target_os = "linux")]
            BenchServer::Event(s) => s.shutdown().metrics,
        }
    }
}

/// The sweep workload as a [`LoadSource`] for the shared
/// [`wire::load`] driver: `requests` per connection at max pacing
/// (`due_us: 0` — the sweep measures capacity, not a schedule), ids
/// globally unique, every response asserted `ok` with a verdict
/// payload and its round trip recorded.
struct SweepSource<'a> {
    seed: u64,
    requests: u64,
    /// Requests emitted so far, per connection.
    sent: Vec<u64>,
    /// Responses received so far, across all connections.
    done: u64,
    rtt: &'a Histogram,
}

impl LoadSource for SweepSource<'_> {
    fn next(&mut self, conn: usize) -> Option<LoadRequest> {
        let i = self.sent[conn];
        if i == self.requests {
            return None;
        }
        self.sent[conn] = i + 1;
        Some(LoadRequest {
            id: conn as u64 * self.requests + i,
            payload: line_for(self.seed, conn as u64, i).as_bytes().to_vec(),
            due_us: 0,
        })
    }

    fn complete(&mut self, _conn: usize, _id: u64, status: Status, payload: &[u8], rtt: Duration) {
        self.rtt.record(rtt);
        assert_eq!(status, Status::Ok, "unexpected in-band status");
        assert!(!payload.is_empty(), "verdict payload missing");
        self.done += 1;
    }
}

/// One sweep point through the shared load core (epoll on Linux — two
/// threads total whatever the connection count — threads elsewhere).
fn drive(
    addr: std::net::SocketAddr,
    connections: usize,
    requests: u64,
    pipeline: usize,
    seed: u64,
) -> (Duration, Arc<Histogram>) {
    let rtt = Arc::new(Histogram::default());
    let mut source = SweepSource {
        seed,
        requests,
        sent: vec![0; connections],
        done: 0,
        rtt: &rtt,
    };
    let wall = wire::load::drive(addr, connections, pipeline, &mut source).expect("load drive");
    assert_eq!(
        source.done,
        requests * connections as u64,
        "a connection under-delivered"
    );
    (wall, rtt)
}

/// Doubling sweep 1, 2, 4, … ≤ max, always ending on `max` itself.
fn sweep_points(max: usize) -> Vec<usize> {
    let mut sweep = vec![1usize];
    while *sweep.last().expect("non-empty") * 2 <= max {
        sweep.push(sweep.last().expect("non-empty") * 2);
    }
    if *sweep.last().expect("non-empty") != max {
        sweep.push(max);
    }
    sweep
}

fn main() {
    let args = Args::parse();
    let requests = args.u64_flag("requests", 500);
    // `--conns` is the documented spelling; `--connections` still works.
    let requested_max = args
        .get("conns")
        .map(|_| args.usize_flag("conns", 8))
        .unwrap_or_else(|| args.usize_flag("connections", 8))
        .max(1);
    let pipeline = args.usize_flag("pipeline", 16).max(1);
    // The engine floor is a sleep, so workers overlap it even on one
    // core — keep at least 4 so connection scaling is visible on small
    // machines.
    let workers = args.usize_flag(
        "workers",
        std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .max(4),
    );
    let capacity = args.usize_flag("capacity", 512);
    let floor_us = args.u64_flag("floor-us", 200);
    let seed = args.u64_flag("seed", 42);
    let external = args.get("addr").map(str::to_string);
    let default_server = if cfg!(target_os = "linux") {
        "both"
    } else {
        "threaded"
    };
    let server_flag = args.get("server").unwrap_or(default_server).to_string();
    let models: Vec<&str> = if external.is_some() {
        vec!["external"]
    } else {
        match server_flag.as_str() {
            "both" => vec!["epoll", "threaded"],
            m @ ("epoll" | "threaded") => vec![m],
            other => {
                eprintln!("unknown --server {other:?} (epoll|threaded|both)");
                std::process::exit(2);
            }
        }
    };
    if !cfg!(target_os = "linux") && models.contains(&"epoll") {
        eprintln!("--server epoll requires Linux (epoll); use --server threaded");
        std::process::exit(2);
    }

    // Never let the sweep run the process out of fds: each in-process
    // connection is two of them (client end + server end); against an
    // external server only the client end lives here. A probe failure
    // caps conservatively rather than silently — the cap is always
    // printed and recorded.
    let fds_per_conn: u64 = if external.is_some() { 1 } else { 2 };
    let soft_limit = fd_soft_limit();
    let conn_cap = soft_limit
        .map(|soft| (soft.saturating_sub(FD_HEADROOM) / fds_per_conn) as usize)
        .unwrap_or(THREADED_SWEEP_CAP)
        .max(1);
    let max_connections = requested_max.min(conn_cap);
    println!(
        "wire_load: {} line pool, seed {seed}, floor {floor_us}us, {workers} workers, pipeline {pipeline}",
        LINES.len()
    );
    match soft_limit {
        Some(soft) => println!(
            "fd probe: soft limit {soft}, {fds_per_conn} fd(s) per connection → \
             at most {conn_cap} connections (headroom {FD_HEADROOM})"
        ),
        None => println!("fd probe: unavailable; assuming at most {conn_cap} connections"),
    }
    if max_connections < requested_max {
        println!(
            "CAPPED: sweeping to {max_connections} connections, not the requested \
             {requested_max} (raise ulimit -n to go higher)"
        );
    }
    let rss_resets = reset_peak_rss();
    if !rss_resets {
        println!("note: peak-RSS reset unavailable; per-point peak_rss_kb is monotonic");
    }
    bench::rule(76);

    let mut servers_json = Json::obj();
    for model in &models {
        let model_max = if *model == "threaded" {
            let capped = max_connections.min(THREADED_SWEEP_CAP);
            if capped < max_connections {
                println!(
                    "threaded sweep capped at {capped} connections \
                     (2 OS threads per connection; the epoll sweep goes to {max_connections})"
                );
            }
            capped
        } else {
            max_connections
        };

        let mut points = Vec::new();
        let mut base_rps = 0.0;
        for &connections in &sweep_points(model_max) {
            reset_peak_rss();
            let total = requests * connections as u64;
            let (wall, rtt, wire_finals) = match &external {
                Some(target) => {
                    use std::net::ToSocketAddrs as _;
                    let addr = target
                        .to_socket_addrs()
                        .expect("resolve --addr")
                        .next()
                        .expect("--addr resolves to an address");
                    let (wall, rtt) = drive(addr, connections, requests, pipeline, seed);
                    (wall, rtt, None)
                }
                None => {
                    let service = Arc::new(ComplianceService::start(ServiceConfig {
                        workers,
                        capacity,
                        policy: AdmissionPolicy::Block,
                        default_deadline: None,
                        engine_floor: Duration::from_micros(floor_us),
                        ..ServiceConfig::default()
                    }));
                    let server = BenchServer::start(model, &service);
                    let addr = server.local_addr();
                    let (wall, rtt) = drive(addr, connections, requests, pipeline, seed);
                    let wire_finals = server.shutdown();
                    let finals = Arc::try_unwrap(service)
                        .expect("server drained; last handle")
                        .shutdown();
                    assert_eq!(wire_finals.frames_in, total, "server missed request frames");
                    assert_eq!(wire_finals.frames_out, total, "server lost response frames");
                    assert_eq!(wire_finals.protocol_errors, 0, "protocol errors under load");
                    assert_eq!(
                        finals.responses(),
                        finals.accepted,
                        "service lost a response"
                    );
                    (wall, rtt, Some(wire_finals))
                }
            };
            // Client-side exactly-once holds in both modes: every id
            // was answered exactly once (duplicates panic in `drive`).
            let rtt = rtt.snapshot();
            assert_eq!(rtt.count, total, "client reaped a different response count");
            let rss_kb = peak_rss_kb().unwrap_or(0);

            let rps = total as f64 / wall.as_secs_f64();
            if connections == 1 {
                base_rps = rps;
            }
            println!(
                "{model:>8}  {connections:>5} conns  {:>9.1?}  {:>9.0} req/s  {:>5.2}x vs 1 conn  p99 {}us  rss {}KiB",
                wall, rps, rps / base_rps, rtt.p99_us, rss_kb
            );
            let mut point = Json::obj()
                .set("connections", connections)
                .set("requests_per_connection", requests)
                .set("total_requests", total)
                .set("wall_ms", wall.as_secs_f64() * 1e3)
                .set("throughput_rps", rps)
                .set("speedup_vs_1", rps / base_rps)
                .set("rtt_p50_us", rtt.p50_us)
                .set("rtt_p95_us", rtt.p95_us)
                .set("rtt_p99_us", rtt.p99_us)
                .set("rtt_max_us", rtt.max_us)
                .set("peak_rss_kb", rss_kb);
            if let Some(finals) = wire_finals {
                point = point
                    .set("peak_inflight", finals.peak_inflight)
                    .set("wakeups", finals.wakeups)
                    .set("writev_batches", finals.writev_batches)
                    .set("bytes_in", finals.bytes_in)
                    .set("bytes_out", finals.bytes_out);
            }
            points.push(point);
        }
        servers_json = servers_json.set(
            model,
            Json::obj()
                .set("connections_max", model_max)
                .set("sweep", Json::Arr(points)),
        );
    }

    bench::rule(76);
    let section = Json::obj()
        .set("name", "wire_load")
        .set(
            "config",
            Json::obj()
                .set("requests_per_connection", requests)
                .set("connections_requested", requested_max)
                .set("connections_max", max_connections)
                .set("fd_soft_limit", soft_limit.map_or(Json::Null, Json::from))
                .set("fd_conn_cap", conn_cap)
                .set(
                    "external_addr",
                    external.as_deref().map_or(Json::Null, Json::from),
                )
                .set("rss_resets_per_point", rss_resets)
                .set("pipeline", pipeline)
                .set("workers", workers)
                .set("capacity", capacity)
                .set("floor_us", floor_us)
                .set("seed", seed),
        )
        .set("servers", servers_json);
    results::record("wire_load", section).expect("write BENCH_results.json");
    println!("wrote {}", results::RESULTS_FILE);
    println!("zero lost or duplicated responses across every sweep");
}
