//! Load driver for the `wire` crate: N pipelined connections over real
//! loopback TCP against an in-process [`WireServer`], recording
//! client-measured round-trip quantiles into `BENCH_results.json`
//! under `wire_load`.
//!
//! ```console
//! $ cargo run --release --bin wire_load -- [OPTIONS]
//!     --requests N      requests per connection        (default 500)
//!     --connections N   largest connection count swept (default 8)
//!     --pipeline N      in-flight window per connection (default 16)
//!     --workers N       service worker threads         (default: cores, min 4)
//!     --capacity N      service queue capacity         (default 512)
//!     --floor-us F      simulated engine floor, µs     (default 200)
//!     --seed S          workload seed                  (default 42)
//! ```
//!
//! One experiment: sweep 1, 2, 4, … connections, each pipelining
//! `--pipeline` requests deep over its own socket, all multiplexed into
//! the one bounded-queue service. The engine floor models a heavier
//! assessment pipeline so connection scaling is visible (with a zero
//! floor the cache answers everything at memory speed and the sweep
//! measures only syscall overhead). Round trips are measured at the
//! *client* — frame encode, loopback, queue, engine, response frame —
//! into the same log-linear histogram the service uses.
//!
//! The driver asserts zero lost responses at every point: every request
//! submitted got exactly one `ok` answer, and the server's books agree.

use bench::cli::Args;
use bench::results::{self, Json};
use service::metrics::Histogram;
use service::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};
use trials::derive_seed;
use wire::prelude::*;

/// A pool of raw JSONL action lines spanning the spec vocabulary —
/// the wire payload is text, so the pool is text.
const LINES: &[&str] = &[
    r#"{"actor": "leo", "data": "headers", "when": "realtime", "where": "isp", "describe": "pen/trap stream"}"#,
    r#"{"actor": "leo", "data": "content", "when": "realtime", "where": "isp", "describe": "live interception"}"#,
    r#"{"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider", "describe": "subscriber records"}"#,
    r#"{"actor": "leo", "data": "records", "when": "stored", "where": "provider", "describe": "transaction records"}"#,
    r#"{"actor": "admin", "data": "headers", "when": "realtime", "where": "own-network", "describe": "ops review"}"#,
    r#"{"actor": "leo", "data": "content", "when": "stored-unopened", "where": "provider", "describe": "stored unopened mail"}"#,
    r#"{"actor": "leo", "data": "content", "when": "stored", "where": "device", "flags": ["consent"], "describe": "consented device exam"}"#,
    r#"{"actor": "private", "data": "content", "when": "stored", "where": "device", "describe": "private party search"}"#,
    r#"{"actor": "leo", "data": "content", "when": "realtime", "where": "wireless", "describe": "open wifi capture"}"#,
    r#"{"actor": "leo", "data": "headers", "when": "realtime", "where": "isp", "flags": ["rate-only"], "describe": "rate observation"}"#,
    r#"{"actor": "employer", "data": "content", "when": "stored", "where": "own-network", "describe": "workplace mail review"}"#,
    r#"{"actor": "leo", "data": "content", "when": "stored", "where": "media", "flags": ["hash-search"], "describe": "forensic media sweep"}"#,
];

/// Request `i` on connection `c` is a pure function of `(seed, c, i)`.
fn line_for(seed: u64, c: u64, i: u64) -> &'static str {
    LINES[(derive_seed(seed.wrapping_add(c), i) % LINES.len() as u64) as usize]
}

/// One sweep point: `connections` client threads, each driving
/// `requests` calls at `pipeline` depth. Returns (wall, rtt histogram).
fn drive(
    addr: std::net::SocketAddr,
    connections: usize,
    requests: u64,
    pipeline: usize,
    seed: u64,
) -> (Duration, Arc<Histogram>) {
    let rtt = Arc::new(Histogram::default());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..connections as u64 {
            let rtt = Arc::clone(&rtt);
            scope.spawn(move || {
                let client = WireClient::connect(addr).expect("dial loopback");
                let mut window = std::collections::VecDeque::with_capacity(pipeline);
                let reap = |(sent, call): (Instant, PendingCall)| {
                    let response = call.wait().expect("server answers every call");
                    rtt.record(sent.elapsed());
                    assert_eq!(response.status, Status::Ok, "unexpected in-band status");
                    assert!(!response.payload.is_empty(), "verdict payload missing");
                };
                for i in 0..requests {
                    if window.len() == pipeline {
                        reap(window.pop_front().expect("window is non-empty"));
                    }
                    let payload = line_for(seed, c, i).as_bytes().to_vec();
                    let call = client.submit(payload, 0).expect("submit");
                    window.push_back((Instant::now(), call));
                }
                for entry in window {
                    reap(entry);
                }
            });
        }
    });
    (start.elapsed(), rtt)
}

fn main() {
    let args = Args::parse();
    let requests = args.u64_flag("requests", 500);
    let max_connections = args.usize_flag("connections", 8).max(1);
    let pipeline = args.usize_flag("pipeline", 16).max(1);
    // The engine floor is a sleep, so workers overlap it even on one
    // core — keep at least 4 so connection scaling is visible on small
    // machines.
    let workers = args.usize_flag(
        "workers",
        std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .max(4),
    );
    let capacity = args.usize_flag("capacity", 512);
    let floor_us = args.u64_flag("floor-us", 200);
    let seed = args.u64_flag("seed", 42);

    println!(
        "wire_load: {} line pool, seed {seed}, floor {floor_us}us, {workers} workers, pipeline {pipeline}",
        LINES.len()
    );
    bench::rule(76);

    let mut sweep = vec![1usize];
    while *sweep.last().expect("non-empty") * 2 <= max_connections {
        sweep.push(sweep.last().expect("non-empty") * 2);
    }

    let mut points = Vec::new();
    let mut base_rps = 0.0;
    for &connections in &sweep {
        let service = Arc::new(ComplianceService::start(ServiceConfig {
            workers,
            capacity,
            policy: AdmissionPolicy::Block,
            default_deadline: None,
            engine_floor: Duration::from_micros(floor_us),
        }));
        let server = WireServer::start("127.0.0.1:0", Arc::clone(&service), WireConfig::default())
            .expect("bind loopback");
        let addr = server.local_addr();

        let total = requests * connections as u64;
        let (wall, rtt) = drive(addr, connections, requests, pipeline, seed);
        let wire_finals = server.shutdown();
        let finals = Arc::try_unwrap(service)
            .expect("server drained; last handle")
            .shutdown();

        assert_eq!(wire_finals.frames_in, total, "server missed request frames");
        assert_eq!(wire_finals.frames_out, total, "server lost response frames");
        assert_eq!(wire_finals.protocol_errors, 0, "protocol errors under load");
        assert_eq!(
            finals.responses(),
            finals.accepted,
            "service lost a response"
        );
        let rtt = rtt.snapshot();
        assert_eq!(rtt.count, total, "client reaped a different response count");

        let rps = total as f64 / wall.as_secs_f64();
        if connections == 1 {
            base_rps = rps;
        }
        println!(
            "wire  {connections:>2} conns  {:>9.1?}  {:>9.0} req/s  {:>5.2}x vs 1 conn  rtt p50 {}us p95 {}us p99 {}us",
            wall,
            rps,
            rps / base_rps,
            rtt.p50_us,
            rtt.p95_us,
            rtt.p99_us
        );
        points.push(
            Json::obj()
                .set("connections", connections)
                .set("requests_per_connection", requests)
                .set("total_requests", total)
                .set("wall_ms", wall.as_secs_f64() * 1e3)
                .set("throughput_rps", rps)
                .set("speedup_vs_1", rps / base_rps)
                .set("rtt_p50_us", rtt.p50_us)
                .set("rtt_p95_us", rtt.p95_us)
                .set("rtt_p99_us", rtt.p99_us)
                .set("rtt_max_us", rtt.max_us)
                .set("peak_inflight", wire_finals.peak_inflight)
                .set("bytes_in", wire_finals.bytes_in)
                .set("bytes_out", wire_finals.bytes_out),
        );
    }

    bench::rule(76);
    let section = Json::obj()
        .set("name", "wire_load")
        .set(
            "config",
            Json::obj()
                .set("requests_per_connection", requests)
                .set("connections_max", max_connections)
                .set("pipeline", pipeline)
                .set("workers", workers)
                .set("capacity", capacity)
                .set("floor_us", floor_us)
                .set("seed", seed),
        )
        .set("sweep", Json::Arr(points));
    results::record("wire_load", section).expect("write BENCH_results.json");
    println!("wrote {}", results::RESULTS_FILE);
    println!("zero lost responses across the sweep");
}
