//! Population-scale engine benchmark: how fast, how big, and how
//! deterministic the simcore-backed overlay simulators run as node
//! counts climb from thousands to hundreds of thousands.
//!
//! Run with: `cargo run -p bench --bin simcore_scale --release`. Takes
//! `--nodes N` (the largest overlay size, default 100 000) and
//! `--seed S`. Two sweeps ride the same size axis:
//!
//! * **oneswarm** — the E-IV-A timing attack on an overlay of N peers
//!   (one trial per point; the per-trial averaging axis lives in
//!   `oneswarm_attack`);
//! * **watermark** — one population-scale DSSS despread
//!   ([`watermark::population`]) with ~N/3 candidate suspects.
//!
//! Each point reports wall time, simulator events, events/second, and
//! the point's peak RSS (`VmHWM`, reset between points where the kernel
//! allows). A final phase re-runs a mid-size configuration at 1, 2, and
//! 8 workers and asserts bit-identical results — the determinism
//! contract the engine is built around. Everything is recorded under
//! the `simcore_scale` key in `BENCH_results.json`.

use bench::cli::Args;
use bench::results::{self, Json};
use p2psim::experiment::{run_experiment, run_experiments_on, ExperimentConfig};
use std::time::Instant;
use trials::TrialRunner;
use watermark::population::{run_population, PopulationConfig};

/// Peak resident set (`VmHWM`) in KiB for this process.
#[cfg(target_os = "linux")]
fn peak_rss_kb() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = text.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_kb() -> Option<u64> {
    None
}

/// Resets the RSS high-water mark so each sweep point reports its own
/// peak. Best-effort: if the kernel refuses, `VmHWM` stays monotonic
/// across points (still an upper bound; noted in the recorded config).
fn reset_peak_rss() -> bool {
    #[cfg(target_os = "linux")]
    {
        std::fs::write("/proc/self/clear_refs", "5").is_ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

fn rss_json() -> Json {
    match peak_rss_kb() {
        Some(kb) => Json::Num(kb as f64),
        None => Json::Num(0.0),
    }
}

/// The size axis: round decades up to `max`, always ending on `max`.
fn size_axis(max: usize) -> Vec<usize> {
    let mut sizes = vec![1_000usize, 10_000, 100_000];
    sizes.retain(|&s| s < max);
    sizes.push(max);
    sizes
}

fn oneswarm_config(peers: usize, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        peers,
        targets: (peers / 4).clamp(1, 24),
        sources: (peers / 8).max(1),
        probes: 3,
        seed,
        ..ExperimentConfig::default()
    }
}

fn events_per_sec(events: u64, wall_ms: f64) -> f64 {
    if wall_ms <= 0.0 {
        0.0
    } else {
        events as f64 / (wall_ms / 1000.0)
    }
}

fn main() {
    let args = Args::parse();
    let max_nodes = args.usize_flag("nodes", 100_000).max(64);
    let base_seed = args.u64_flag("seed", 0x5ca1e);
    let rss_resets = reset_peak_rss();

    println!("simcore scale — population-size overlays on the deterministic engine\n");
    if !rss_resets {
        println!("note: VmHWM reset unavailable; peak RSS is monotonic across points\n");
    }

    // Sweep 1: the OneSwarm timing attack, one trial per overlay size.
    println!("oneswarm timing attack vs overlay size (1 trial/point):");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "peers", "accuracy", "events", "wall ms", "Mev/s", "peak RSS MB"
    );
    bench::rule(74);
    let mut oneswarm_points = Vec::new();
    for peers in size_axis(max_nodes) {
        reset_peak_rss();
        let cfg = oneswarm_config(peers, base_seed ^ peers as u64);
        let start = Instant::now();
        let result = run_experiment(&cfg);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let evs = events_per_sec(result.sim_events, wall_ms);
        println!(
            "{:<10} {:>10} {:>12} {:>12.0} {:>12.2} {:>12.1}",
            peers,
            bench::pct(result.metrics.accuracy()),
            result.sim_events,
            wall_ms,
            evs / 1e6,
            peak_rss_kb().unwrap_or(0) as f64 / 1024.0,
        );
        oneswarm_points.push(
            Json::obj()
                .set("nodes", peers)
                .set("accuracy", result.metrics.accuracy())
                .set("sim_events", result.sim_events)
                .set("wall_ms", wall_ms)
                .set("events_per_sec", evs)
                .set("peak_rss_kb", rss_json()),
        );
    }

    // Sweep 2: population-scale watermark despreading. Each size builds
    // the largest `2 + 3·k ≤ nodes` overlay and despreads every one of
    // the k candidate suspects.
    println!("\nwatermark population despread vs overlay size:");
    println!(
        "{:<10} {:>9} {:>8} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "nodes", "suspects", "correct", "sep", "events", "wall ms", "Mev/s", "peak RSS MB"
    );
    bench::rule(88);
    let mut watermark_points = Vec::new();
    for nodes in size_axis(max_nodes) {
        reset_peak_rss();
        let cfg = PopulationConfig {
            nodes,
            seed: base_seed ^ 0xbeef ^ nodes as u64,
            ..PopulationConfig::default()
        };
        let start = Instant::now();
        let result = run_population(&cfg);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let evs = events_per_sec(result.sim_events, wall_ms);
        assert!(
            result.correct(),
            "population despread failed at {nodes} nodes: identified {:?}, truth {}",
            result.identified,
            result.true_suspect
        );
        println!(
            "{:<10} {:>9} {:>8} {:>6.2} {:>12} {:>12.0} {:>12.2} {:>12.1}",
            result.nodes,
            result.suspects,
            "yes",
            result.separation(),
            result.sim_events,
            wall_ms,
            evs / 1e6,
            peak_rss_kb().unwrap_or(0) as f64 / 1024.0,
        );
        watermark_points.push(
            Json::obj()
                .set("nodes", result.nodes)
                .set("suspects", result.suspects)
                .set("correct", result.correct())
                .set("separation", result.separation())
                .set("target_statistic", result.target_statistic)
                .set("null_max_abs", result.null_max_abs)
                .set("false_positives", result.false_positives)
                .set("sim_events", result.sim_events)
                .set("wall_ms", wall_ms)
                .set("events_per_sec", evs)
                .set("peak_rss_kb", rss_json()),
        );
    }

    // Phase 3: the determinism contract. The same batch fanned across
    // 1, 2, and 8 workers must produce bit-identical results, and a
    // population run must be a pure function of its config.
    let det_peers = max_nodes.min(2_000);
    let det_cfg = oneswarm_config(det_peers, base_seed ^ 0xd_e7);
    let fingerprints: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&workers| {
            let runner = TrialRunner::with_threads(workers);
            let (batch, _) = run_experiments_on(&runner, &det_cfg, 4);
            format!("{:?}", batch.results)
        })
        .collect();
    let workers_identical = fingerprints.iter().all(|f| f == &fingerprints[0]);
    assert!(
        workers_identical,
        "worker count changed results at {det_peers} peers"
    );
    let pop_cfg = PopulationConfig {
        nodes: max_nodes.min(1_000),
        seed: base_seed ^ 0xbeef,
        ..PopulationConfig::default()
    };
    let replayed_identical = run_population(&pop_cfg) == run_population(&pop_cfg);
    assert!(replayed_identical, "population run is not replayable");
    println!(
        "\ndeterminism: {det_peers}-peer batch bit-identical at 1/2/8 workers; \
         population run replays exactly"
    );

    results::record(
        "simcore_scale",
        Json::obj()
            .set(
                "config",
                Json::obj()
                    .set("nodes", max_nodes)
                    .set("seed", base_seed)
                    .set("rss_reset", rss_resets),
            )
            .set("oneswarm_sweep", Json::Arr(oneswarm_points))
            .set("watermark_sweep", Json::Arr(watermark_points))
            .set(
                "determinism",
                Json::obj()
                    .set(
                        "workers",
                        Json::Arr(vec![1u64.into(), 2u64.into(), 8u64.into()]),
                    )
                    .set("identical", workers_identical && replayed_identical),
            ),
    )
    .expect("write BENCH_results.json");
    println!(
        "recorded: simcore_scale section in {}",
        results::RESULTS_FILE
    );
}
