//! Batch-assessment throughput driver: sequential engine calls vs the
//! sharded verdict cache vs the multi-threaded batch assessor, over a
//! large synthetic workload.
//!
//! ```console
//! $ cargo run --release --bin throughput -- [N_ACTIONS] [--threads N] [--seed S]
//! ```
//!
//! The workload cycles the paper's twenty Table 1 fact patterns plus a
//! spread of perturbed variants — many repeats of a few hundred distinct
//! fact keys, the shape of a real capture-archive sweep. The driver
//! prints per-strategy wall-clock, throughput, the speedup over the
//! sequential baseline, and the cache's hit/miss statistics, and records
//! the measurements in `BENCH_results.json`. `--seed` shuffles the
//! workload order (0 keeps the cyclic order); `--threads` pins the batch
//! assessor's worker count.

use bench::cli::Args;
use bench::results::{self, Json};
use forensic_law::batch::{BatchAssessor, VerdictCache};
use forensic_law::engine::ComplianceEngine;
use forensic_law::prelude::*;
use forensic_law::scenarios::table1;
use netsim::rng::SimRng;
use std::hint::black_box;
use std::time::Instant;

const DEFAULT_ACTIONS: usize = 100_000;

/// Deterministic synthetic workload: the Table 1 actions interleaved
/// with single-flag perturbations of each, cycled up to `n` entries and
/// optionally shuffled by `seed` (0 = keep the cyclic order).
fn workload(n: usize, seed: u64) -> Vec<InvestigativeAction> {
    let mut patterns: Vec<InvestigativeAction> =
        table1().iter().map(|s| s.action().clone()).collect();

    // Perturb each row along a few doctrinally interesting axes to widen
    // the key space beyond the bare table.
    let base = patterns.clone();
    for action in &base {
        let mut consented = InvestigativeAction::builder(action.actor(), action.data());
        consented.with_consent(Consent::by(ConsentAuthority::TargetSelf));
        patterns.push(consented.build());

        let mut probation = InvestigativeAction::builder(action.actor(), action.data());
        probation.target_on_probation();
        patterns.push(probation.build());

        let mut rate_only = InvestigativeAction::builder(action.actor(), action.data());
        rate_only.rate_observation_only();
        patterns.push(rate_only.build());
    }

    let mut actions: Vec<InvestigativeAction> = (0..n)
        .map(|i| patterns[i % patterns.len()].clone())
        .collect();
    if seed != 0 {
        SimRng::seed_from(seed).shuffle(&mut actions);
    }
    actions
}

fn count_need(assessments: impl IntoIterator<Item = Verdict>) -> usize {
    assessments
        .into_iter()
        .filter(|v| v.needs_process())
        .count()
}

fn main() {
    let args = Args::parse();
    let n: usize = args
        .positional(0)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| args.usize_flag("actions", DEFAULT_ACTIONS));
    let threads = args.usize_flag(
        "threads",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    let seed = args.u64_flag("seed", 0);

    println!("batch-assessment throughput over {n} synthetic actions ({threads} threads)");
    bench::rule(72);

    let actions = workload(n, seed);
    let engine = ComplianceEngine::new();

    // Strategy 1: sequential, no cache — one full engine run per action.
    let start = Instant::now();
    let need_seq = count_need(actions.iter().map(|a| engine.assess(a).verdict()));
    let seq = start.elapsed();
    println!(
        "sequential      {:>10.1?}  {:>12.0} actions/s",
        seq,
        n as f64 / seq.as_secs_f64()
    );

    // Strategy 2: sequential through the sharded verdict cache.
    let cache = VerdictCache::new();
    let start = Instant::now();
    let need_cached = count_need(actions.iter().map(|a| cache.assess(&engine, a).verdict()));
    let cached = start.elapsed();
    println!(
        "cached          {:>10.1?}  {:>12.0} actions/s   {:>6.1}x vs sequential",
        cached,
        n as f64 / cached.as_secs_f64(),
        seq.as_secs_f64() / cached.as_secs_f64()
    );
    println!("  cache: {}", cache.stats());

    // Strategy 3: the batch assessor (threads + shared cache).
    let assessor = BatchAssessor::new().with_threads(threads);
    let start = Instant::now();
    let (assessments, report) = assessor.assess_all_with_report(&actions);
    let batched = start.elapsed();
    let need_batched = count_need(assessments.iter().map(|a| a.verdict()));
    black_box(&assessments);
    println!(
        "batched         {:>10.1?}  {:>12.0} actions/s   {:>6.1}x vs sequential",
        batched,
        n as f64 / batched.as_secs_f64(),
        seq.as_secs_f64() / batched.as_secs_f64()
    );
    println!("  threads: {}", report.threads);
    println!("  cache: {}", assessor.cache().stats());

    bench::rule(72);
    assert_eq!(need_seq, need_cached, "cached strategy changed answers");
    assert_eq!(need_seq, need_batched, "batched strategy changed answers");
    println!(
        "agreement: all three strategies say {} of {} actions need process",
        need_seq, n
    );

    let speedup = seq.as_secs_f64() / batched.as_secs_f64();
    println!("batched speedup over sequential: {speedup:.1}x");

    let entry = |name: &str, wall: std::time::Duration| {
        Json::obj()
            .set("name", name)
            .set("trials", n)
            .set("wall_ms", wall.as_secs_f64() * 1e3)
            .set("speedup", seq.as_secs_f64() / wall.as_secs_f64())
    };
    let section = Json::obj()
        .set("name", "throughput")
        .set(
            "config",
            Json::obj()
                .set("actions", n)
                .set("threads", threads)
                .set("seed", seed),
        )
        .set(
            "entries",
            Json::Arr(vec![
                entry("sequential", seq),
                entry("cached", cached),
                entry("batched", batched),
            ]),
        );
    results::record("throughput", section).expect("write BENCH_results.json");
    println!("wrote {}", results::RESULTS_FILE);
}
