//! Batch-assessment throughput driver: sequential engine calls vs the
//! sharded verdict cache vs the multi-threaded batch assessor, over a
//! large synthetic workload.
//!
//! ```console
//! $ cargo run --release --bin throughput [N_ACTIONS]
//! ```
//!
//! The workload cycles the paper's twenty Table 1 fact patterns plus a
//! spread of perturbed variants — many repeats of a few hundred distinct
//! fact keys, the shape of a real capture-archive sweep. The driver
//! prints per-strategy wall-clock, throughput, the speedup over the
//! sequential baseline, and the cache's hit/miss statistics.

use forensic_law::batch::{BatchAssessor, VerdictCache};
use forensic_law::engine::ComplianceEngine;
use forensic_law::prelude::*;
use forensic_law::scenarios::table1;
use std::hint::black_box;
use std::time::Instant;

const DEFAULT_ACTIONS: usize = 100_000;

/// Deterministic synthetic workload: the Table 1 actions interleaved
/// with single-flag perturbations of each, cycled up to `n` entries.
fn workload(n: usize) -> Vec<InvestigativeAction> {
    let mut patterns: Vec<InvestigativeAction> =
        table1().iter().map(|s| s.action().clone()).collect();

    // Perturb each row along a few doctrinally interesting axes to widen
    // the key space beyond the bare table.
    let base = patterns.clone();
    for action in &base {
        let mut consented = InvestigativeAction::builder(action.actor(), action.data());
        consented.with_consent(Consent::by(ConsentAuthority::TargetSelf));
        patterns.push(consented.build());

        let mut probation = InvestigativeAction::builder(action.actor(), action.data());
        probation.target_on_probation();
        patterns.push(probation.build());

        let mut rate_only = InvestigativeAction::builder(action.actor(), action.data());
        rate_only.rate_observation_only();
        patterns.push(rate_only.build());
    }

    (0..n)
        .map(|i| patterns[i % patterns.len()].clone())
        .collect()
}

fn count_need(assessments: impl IntoIterator<Item = Verdict>) -> usize {
    assessments
        .into_iter()
        .filter(|v| v.needs_process())
        .count()
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(DEFAULT_ACTIONS);

    println!("batch-assessment throughput over {n} synthetic actions");
    bench::rule(72);

    let actions = workload(n);
    let engine = ComplianceEngine::new();

    // Strategy 1: sequential, no cache — one full engine run per action.
    let start = Instant::now();
    let need_seq = count_need(actions.iter().map(|a| engine.assess(a).verdict()));
    let seq = start.elapsed();
    println!(
        "sequential      {:>10.1?}  {:>12.0} actions/s",
        seq,
        n as f64 / seq.as_secs_f64()
    );

    // Strategy 2: sequential through the sharded verdict cache.
    let cache = VerdictCache::new();
    let start = Instant::now();
    let need_cached = count_need(actions.iter().map(|a| cache.assess(&engine, a).verdict()));
    let cached = start.elapsed();
    println!(
        "cached          {:>10.1?}  {:>12.0} actions/s   {:>6.1}x vs sequential",
        cached,
        n as f64 / cached.as_secs_f64(),
        seq.as_secs_f64() / cached.as_secs_f64()
    );
    println!("  cache: {}", cache.stats());

    // Strategy 3: the batch assessor (threads + shared cache).
    let assessor = BatchAssessor::new();
    let start = Instant::now();
    let (assessments, report) = assessor.assess_all_with_report(&actions);
    let batched = start.elapsed();
    let need_batched = count_need(assessments.iter().map(|a| a.verdict()));
    black_box(&assessments);
    println!(
        "batched         {:>10.1?}  {:>12.0} actions/s   {:>6.1}x vs sequential",
        batched,
        n as f64 / batched.as_secs_f64(),
        seq.as_secs_f64() / batched.as_secs_f64()
    );
    println!("  threads: {}", report.threads);
    println!("  cache: {}", assessor.cache().stats());

    bench::rule(72);
    assert_eq!(need_seq, need_cached, "cached strategy changed answers");
    assert_eq!(need_seq, need_batched, "batched strategy changed answers");
    println!(
        "agreement: all three strategies say {} of {} actions need process",
        need_seq, n
    );

    let speedup = seq.as_secs_f64() / batched.as_secs_f64();
    println!("batched speedup over sequential: {speedup:.1}x");
}
