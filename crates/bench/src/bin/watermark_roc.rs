//! Detector calibration tables: null/signal statistic spreads and ROC
//! operating points for the DSSS despreader — the quantitative basis for
//! choosing the sigma threshold used in E-IV-B.
//!
//! Run with: `cargo run -p bench --bin watermark_roc --release`. Takes
//! `--trials N` (statistic draws per table row), `--threads N`, and
//! `--seed S`; draws fan out across the worker threads with results
//! independent of the worker count. `--nodes N` additionally runs one
//! population-scale despread: an N-node overlay where every candidate
//! suspect (~N/3) is despread in the same simulation and the target
//! must beat the whole empirical null population.

use bench::cli::Args;
use trials::TrialRunner;
use watermark::pn::PnCode;
use watermark::population::{run_population, PopulationConfig};
use watermark::roc::{auc, null_statistics_on, roc_curve, signal_statistics_on};

fn main() {
    let args = Args::parse();
    let draws = args.usize_flag("trials", 400);
    let runner =
        TrialRunner::with_threads(args.usize_flag("threads", TrialRunner::new().threads()));
    let base_seed = args.u64_flag("seed", 0);

    println!("watermark detector calibration (ours; supports E-IV-B threshold choice)\n");

    // Null spread vs code length: σ ≈ 1/√N.
    println!("null-statistic spread vs code length (noise σ=30 on mean rate 100):");
    println!(
        "{:<12} {:>12} {:>14}",
        "code length", "measured σ", "1/√N predicted"
    );
    bench::rule(40);
    for degree in [6u32, 8, 10] {
        let code = PnCode::m_sequence(degree, 1);
        let stats = null_statistics_on(
            &runner,
            &code,
            2,
            100.0,
            30.0,
            draws,
            base_seed ^ degree as u64,
        );
        let mean = stats.iter().sum::<f64>() / stats.len() as f64;
        let sigma =
            (stats.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / stats.len() as f64).sqrt();
        println!(
            "{:<12} {:>12.4} {:>14.4}",
            code.len(),
            sigma,
            1.0 / (code.len() as f64).sqrt()
        );
    }

    // ROC vs noise.
    println!("\nROC (code length 255, rates 120/40) vs observation noise:");
    println!("{:<10} {:>8} {:>22}", "noise σ", "AUC", "TPR at FPR≈1%");
    bench::rule(42);
    let code = PnCode::m_sequence(8, 1);
    for (i, noise) in [20.0f64, 60.0, 150.0, 400.0].iter().enumerate() {
        let null = null_statistics_on(
            &runner,
            &code,
            2,
            100.0,
            *noise,
            draws,
            base_seed ^ (10 + i as u64),
        );
        let signal = signal_statistics_on(
            &runner,
            &code,
            2,
            120.0,
            40.0,
            *noise,
            draws,
            base_seed ^ (20 + i as u64),
        );
        let thresholds: Vec<f64> = (0..100).map(|k| k as f64 / 100.0).collect();
        let roc = roc_curve(&null, &signal, &thresholds);
        let a = auc(&roc);
        let tpr_at_1pct = roc
            .iter()
            .filter(|p| p.fpr <= 0.01)
            .map(|p| p.tpr)
            .fold(0.0f64, f64::max);
        println!("{:<10} {:>8.4} {:>22.2}", noise, a, tpr_at_1pct);
    }

    // Population-scale despread (opt-in): `--nodes N` builds one N-node
    // overlay, watermarks a single account, and despreads every
    // candidate suspect against the same code — the target must beat
    // the max over the whole empirical null population, the scale
    // analogue of the per-threshold ROC above. Skipped by default to
    // keep the standard output — the golden fixture — and runtime
    // unchanged.
    if args.get("nodes").is_some() {
        let nodes = args.usize_flag("nodes", 100_000).max(8);
        let cfg = PopulationConfig {
            nodes,
            seed: 0xbeef ^ base_seed,
            ..PopulationConfig::default()
        };
        println!(
            "\npopulation-scale despread (--nodes {nodes}): one watermarked account,\n\
             every candidate suspect despread in the same run"
        );
        let start = std::time::Instant::now();
        let r = run_population(&cfg);
        let wall = start.elapsed().as_secs_f64();
        println!("{:<26} {:>12}", "overlay nodes", r.nodes);
        println!("{:<26} {:>12}", "candidate suspects", r.suspects);
        println!(
            "{:<26} {:>12}",
            "identified correctly",
            if r.correct() { "yes" } else { "NO" }
        );
        println!("{:<26} {:>12.4}", "target |statistic|", r.target_statistic);
        println!("{:<26} {:>12.4}", "null mean |statistic|", r.null_mean_abs);
        println!("{:<26} {:>12.4}", "null max |statistic|", r.null_max_abs);
        println!("{:<26} {:>12.2}", "separation (target/max)", r.separation());
        println!("{:<26} {:>12}", "false positives (4σ)", r.false_positives);
        println!(
            "{:<26} {:>12} ({:.1}s wall, {:.2} Mev/s)",
            "simulator events",
            r.sim_events,
            wall,
            r.sim_events as f64 / wall.max(1e-9) / 1e6,
        );
        assert!(
            r.correct(),
            "population despread failed: identified {:?}, truth {}",
            r.identified,
            r.true_suspect
        );
    }

    println!(
        "\nReading: at the experiment's operating point (noise well below the 80-pps\n\
         modulation swing) the detector is near-perfect; the 4σ threshold used in\n\
         E-IV-B buys a ≈6e-5 theoretical false-positive rate per (suspect, offset)."
    );
}
