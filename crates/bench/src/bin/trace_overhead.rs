//! Tracing-overhead driver: what does an **enabled** span ring cost the
//! cached service ceiling when nobody is reading it?
//!
//! ```console
//! $ cargo run --release --bin trace_overhead -- [--requests N] [--trials K] [--limit-pct P]
//! ```
//!
//! The workload is the service's best case — a small fact-key set fully
//! resident in the verdict cache, `engine_floor` zero — so the fixed
//! per-request cost of tracing (one span pair plus a trace-id mint) is
//! as large a *fraction* of the request as it ever gets. Three choices
//! keep the measurement honest on a noisy single-core box:
//!
//! 1. The queue capacity covers a whole lap, so the submitter never
//!    blocks on admission — without this, back-pressure turns every lap
//!    into submitter/worker condvar ping-pong whose scheduling jitter
//!    swamps a sub-100ns signal.
//! 2. Off and on laps run in adjacent **pairs** (order swapping each
//!    trial): scheduler placement on one core is bimodal on a scale of
//!    whole milliseconds, and only a paired comparison puts both sides
//!    of one trial in the same mode.
//! 3. The verdict compares each side's **fastest lap**. The ceiling is
//!    by definition the least-disturbed run; with dozens of laps per
//!    side, both minima converge to the quiet-box floor, and co-tenant
//!    cache pressure (which inflates a *median* on a shared host)
//!    cannot masquerade as tracing cost. A run where even the minima
//!    were disturbed gets up to `--rounds` fresh attempts — the stat
//!    being estimated is the undisturbed ceiling, so taking the best
//!    round is the honest estimator, same as best-of-N microbenching.
//!
//! The driver **fails** when the overhead exceeds the limit (default
//! 5%) in every round: tracing that taxes the hot path more than that
//! does not ship. The measurement lands under `"trace_overhead"` in
//! `BENCH_results.json`.

use bench::cli::Args;
use bench::results::{self, Json};
use forensic_law::prelude::*;
use forensic_law::scenarios::table1;
use service::prelude::*;
use std::process::ExitCode;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const DEFAULT_REQUESTS: usize = 20_000;
const DEFAULT_TRIALS: usize = 41;
const DEFAULT_ROUNDS: usize = 5;

/// The cached-ceiling workload: Table 1 fact patterns cycled `n` times,
/// so after the first lap every request is a cache hit.
fn workload(n: usize) -> Vec<InvestigativeAction> {
    let patterns: Vec<InvestigativeAction> = table1().iter().map(|s| s.action().clone()).collect();
    (0..n)
        .map(|i| patterns[i % patterns.len()].clone())
        .collect()
}

/// Pushes every action through the service closed-loop (observer
/// callbacks count completions) and returns the lap's wall time.
fn run_lap(service: &ComplianceService, actions: &[InvestigativeAction]) -> Duration {
    let done = Arc::new((Mutex::new(0usize), Condvar::new()));
    let expected = actions.len();
    let start = Instant::now();
    for action in actions {
        let done = Arc::clone(&done);
        let observer: ResponseObserver = Box::new(move |_| {
            let (count, ready) = &*done;
            let mut count = count.lock().expect("count lock");
            *count += 1;
            // Notify only on the final response: per-response notifies
            // spuriously wake the submitter mid-drain, and that
            // timing-dependent futex traffic is lap-to-lap noise an
            // order of magnitude above the signal being measured.
            if *count == expected {
                ready.notify_one();
            }
        });
        // Admission policy is `block`: a full queue pushes back on this
        // loop instead of rejecting, so every action is admitted — and
        // capacity covers a whole lap, so in practice it never blocks.
        service
            .submit_observed(action.clone(), None, observer)
            .expect("block policy admits every request");
    }
    let (count, ready) = &*done;
    let mut count = count.lock().expect("count lock");
    while *count < actions.len() {
        count = ready.wait(count).expect("count lock");
    }
    start.elapsed()
}

/// One measurement round: `trials` adjacent off/on lap pairs (order
/// swapping each trial so slow drift hits both sides equally), reduced
/// to each side's fastest lap in seconds.
fn measure_round(
    service: &ComplianceService,
    actions: &[InvestigativeAction],
    trials: usize,
) -> (f64, f64) {
    let log = obs::global();
    let mut off_min = f64::MAX;
    let mut on_min = f64::MAX;
    for trial in 0..trials {
        let sides = if trial % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for enabled in sides {
            log.set_enabled(enabled);
            let took = run_lap(service, actions).as_secs_f64();
            if enabled {
                on_min = on_min.min(took);
            } else {
                off_min = off_min.min(took);
            }
        }
    }
    log.set_enabled(false);
    (off_min, on_min)
}

fn main() -> ExitCode {
    let args = Args::parse();
    let requests = args.usize_flag("requests", DEFAULT_REQUESTS);
    let trials = args.usize_flag("trials", DEFAULT_TRIALS).max(1);
    let rounds = args.usize_flag("rounds", DEFAULT_ROUNDS).max(1);
    let limit_pct = args.f64_flag("limit-pct", 5.0);
    let workers = args.usize_flag(
        "workers",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );

    println!(
        "tracing overhead at the cached ceiling: {requests} requests per \
         lap, {trials} paired off/on trials, {workers} workers"
    );
    bench::rule(72);

    let actions = workload(requests);
    let service = ComplianceService::start(ServiceConfig {
        workers,
        // Room for the whole pass: the submitter must never block on
        // admission, or scheduler ping-pong drowns the signal.
        capacity: requests.max(1024),
        policy: AdmissionPolicy::Block,
        ..ServiceConfig::default()
    });
    let log = obs::global();
    log.set_enabled(false);

    // Two unmeasured laps fill the verdict cache and warm the pools.
    run_lap(&service, &actions);
    run_lap(&service, &actions);

    let per_lap = requests as f64;
    let mut best: Option<(f64, f64, f64)> = None;
    for round in 0..rounds {
        let (off_min, on_min) = measure_round(&service, &actions, trials);
        let overhead = on_min / off_min - 1.0;
        println!(
            "round {round}: off floor {:>9.0} req/s   on floor {:>9.0} req/s   \
             overhead {:.2}%",
            per_lap / off_min,
            per_lap / on_min,
            overhead * 100.0,
        );
        if best.is_none_or(|(b, _, _)| overhead < b) {
            best = Some((overhead, off_min, on_min));
        }
        if overhead * 100.0 < limit_pct {
            break;
        }
    }
    service.shutdown();

    let (overhead, off_min, on_min) = best.expect("at least one round ran");
    let off_rps = per_lap / off_min;
    let on_rps = per_lap / on_min;
    bench::rule(72);
    println!("ceiling, tracing off: {off_rps:>9.0} req/s (fastest of {trials} laps)");
    println!("ceiling, tracing on:  {on_rps:>9.0} req/s (fastest of {trials} laps)");
    println!(
        "enabled-but-idle overhead: {:.2}% (limit {limit_pct}%)",
        overhead * 100.0
    );

    let section = Json::obj()
        .set("name", "trace_overhead")
        .set(
            "config",
            Json::obj()
                .set("requests", requests)
                .set("trials", trials)
                .set("rounds", rounds)
                .set("workers", workers)
                .set("limit_pct", limit_pct),
        )
        .set("off_rps", off_rps)
        .set("on_rps", on_rps)
        .set("overhead_pct", overhead * 100.0)
        .set("within_limit", overhead * 100.0 < limit_pct);
    results::record("trace_overhead", section).expect("write BENCH_results.json");
    println!("wrote {}", results::RESULTS_FILE);

    if overhead * 100.0 >= limit_pct {
        eprintln!(
            "FAIL: enabled tracing costs {:.2}% of the cached ceiling (limit {limit_pct}%)",
            overhead * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
