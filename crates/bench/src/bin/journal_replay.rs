//! Bench driver for the durable request journal: measures the three
//! phases of the journal lifecycle end to end and records them into
//! `BENCH_results.json` under `journal_replay`.
//!
//! ```console
//! $ cargo run --release --bin journal_replay -- [OPTIONS]
//!     --records N       records journaled and replayed  (default 100000)
//!     --segment-kb N    segment rotation threshold, KiB (default 4096)
//!     --threads N       replay assessor threads         (default: cores)
//!     --seed S          workload seed                   (default 42)
//! ```
//!
//! Phase 1 (`journal_write`): assess a deterministic JSONL workload
//! through the [`BatchAssessor`], then stream one journal record per
//! request — raw request bytes plus the canonical verdict line — through
//! the group-commit writer, finishing with a durability wait on the last
//! sequence number. Phase 2 (`recovery_scan`): reopen the directory and
//! time the full checksum-validating recovery scan. Phase 3
//! (`replay_diff`): re-assess every recovered request and diff the
//! verdict bytes against the journal — the replay oracle must report
//! zero divergences, which the driver asserts.

use bench::cli::Args;
use bench::results::{self, Json};
use forensic_law::batch::BatchAssessor;
use forensic_law::spec::parse_jsonl;
use journal::{read_all, Journal, JournalConfig, Mode, RecordData, SyncPolicy};
use obs::TraceId;
use std::time::Instant;
use trials::derive_seed;

/// The same JSONL pool the wire drivers use.
const LINES: &[&str] = &[
    r#"{"actor": "leo", "data": "headers", "when": "realtime", "where": "isp", "describe": "pen/trap stream"}"#,
    r#"{"actor": "leo", "data": "content", "when": "realtime", "where": "isp", "describe": "live interception"}"#,
    r#"{"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider", "describe": "subscriber records"}"#,
    r#"{"actor": "leo", "data": "records", "when": "stored", "where": "provider", "describe": "transaction records"}"#,
    r#"{"actor": "admin", "data": "headers", "when": "realtime", "where": "own-network", "describe": "ops review"}"#,
    r#"{"actor": "leo", "data": "content", "when": "stored-unopened", "where": "provider", "describe": "stored unopened mail"}"#,
    r#"{"actor": "leo", "data": "content", "when": "stored", "where": "device", "flags": ["consent"], "describe": "consented device exam"}"#,
    r#"{"actor": "private", "data": "content", "when": "stored", "where": "device", "describe": "private party search"}"#,
    r#"{"actor": "leo", "data": "content", "when": "realtime", "where": "wireless", "describe": "open wifi capture"}"#,
    r#"{"actor": "employer", "data": "content", "when": "stored", "where": "own-network", "describe": "workplace mail review"}"#,
];

fn main() {
    let args = Args::parse();
    let records = args.u64_flag("records", 100_000);
    let segment_kb = args.u64_flag("segment-kb", 4096).max(1);
    let threads = args.usize_flag(
        "threads",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    let seed = args.u64_flag("seed", 42);

    let dir = std::env::temp_dir().join(format!("lxj-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "journal_replay: {records} records, {segment_kb} KiB segments, {threads} replay threads, seed {seed}"
    );
    bench::rule(76);

    // The workload and its verdicts, computed once up front so phase 1
    // times the journal, not the engine.
    let lines: Vec<&'static str> = (0..records)
        .map(|i| LINES[(derive_seed(seed, i) % LINES.len() as u64) as usize])
        .collect();
    let batch = parse_jsonl(lines.join("\n").as_bytes());
    assert!(batch.is_clean(), "workload pool must parse");
    let actions: Vec<_> = batch.lines.iter().map(|l| l.action.clone()).collect();
    let assessor = BatchAssessor::new().with_threads(threads);
    let verdicts: Vec<Vec<u8>> = assessor
        .assess_all(&actions)
        .iter()
        .map(|a| a.verdict_line().into_bytes())
        .collect();

    // Phase 1: group-commit write path, one append per request, one
    // durability wait at the end.
    let (journal, recovery) = Journal::open(
        &dir,
        JournalConfig {
            segment_bytes: segment_kb * 1024,
            sync: SyncPolicy::GroupCommit,
            ..JournalConfig::default()
        },
    )
    .expect("open fresh journal");
    assert_eq!(recovery.next_seq, 1, "bench directory must start empty");
    let write_start = Instant::now();
    let mut last_seq = 0;
    for (line, verdict) in lines.iter().zip(&verdicts) {
        last_seq = journal
            .append(RecordData {
                trace: TraceId::mint(),
                at_us: journal::now_us(),
                status: 0, // wire Status::Ok
                request: line.as_bytes().to_vec(),
                verdict: verdict.clone(),
            })
            .expect("append");
    }
    journal.wait_durable(last_seq).expect("group commit lands");
    let write_wall = write_start.elapsed();
    journal.close().expect("clean close");
    let bytes: u64 = std::fs::read_dir(&dir)
        .expect("journal dir")
        .filter_map(|e| e.ok())
        .map(|e| e.metadata().map_or(0, |m| m.len()))
        .sum();
    let segments = std::fs::read_dir(&dir).expect("journal dir").count() as u64;
    let write_rps = records as f64 / write_wall.as_secs_f64();
    println!(
        "journal_write   {write_wall:>9.1?}  {write_rps:>9.0} rec/s  {bytes} bytes in {segments} segment(s)"
    );

    // Phase 2: full recovery scan — every CRC re-verified.
    let scan_start = Instant::now();
    let (recovered, truncation) = read_all(&dir, Mode::Recover).expect("recovery scan");
    let scan_wall = scan_start.elapsed();
    assert!(truncation.is_none(), "clean close must leave no torn tail");
    assert_eq!(recovered.len() as u64, records, "recovery lost records");
    let scan_rps = records as f64 / scan_wall.as_secs_f64();
    println!("recovery_scan   {scan_wall:>9.1?}  {scan_rps:>9.0} rec/s");

    // Phase 3: the replay oracle — re-assess every recovered request and
    // diff against the journaled verdict bytes.
    let replay_start = Instant::now();
    let replay_batch = parse_jsonl(
        recovered
            .iter()
            .flat_map(|r| r.request.iter().copied().chain([b'\n']))
            .collect::<Vec<u8>>()
            .as_slice(),
    );
    assert!(replay_batch.is_clean(), "journaled requests must re-parse");
    let replay_actions: Vec<_> = replay_batch
        .lines
        .iter()
        .map(|l| l.action.clone())
        .collect();
    let replayed = BatchAssessor::new()
        .with_threads(threads)
        .assess_all(&replay_actions);
    let divergences = recovered
        .iter()
        .zip(&replayed)
        .filter(|(record, assessment)| assessment.verdict_line().as_bytes() != record.verdict)
        .count();
    let replay_wall = replay_start.elapsed();
    assert_eq!(divergences, 0, "replay oracle found verdict divergences");
    let replay_rps = records as f64 / replay_wall.as_secs_f64();
    println!("replay_diff     {replay_wall:>9.1?}  {replay_rps:>9.0} rec/s  0 divergences");

    std::fs::remove_dir_all(&dir).expect("cleanup");
    bench::rule(76);

    let section = Json::obj()
        .set("name", "journal_replay")
        .set(
            "config",
            Json::obj()
                .set("records", records)
                .set("segment_kb", segment_kb)
                .set("threads", threads)
                .set("seed", seed),
        )
        .set(
            "journal_write",
            Json::obj()
                .set("wall_ms", write_wall.as_secs_f64() * 1e3)
                .set("records_per_s", write_rps)
                .set("bytes", bytes)
                .set("segments", segments),
        )
        .set(
            "recovery_scan",
            Json::obj()
                .set("wall_ms", scan_wall.as_secs_f64() * 1e3)
                .set("records_per_s", scan_rps),
        )
        .set(
            "replay_diff",
            Json::obj()
                .set("wall_ms", replay_wall.as_secs_f64() * 1e3)
                .set("records_per_s", replay_rps)
                .set("divergences", divergences),
        );
    results::record("journal_replay", section).expect("write BENCH_results.json");
    println!("wrote {}", results::RESULTS_FILE);
    println!("replay of {records} journaled records diffed byte-identical");
}
