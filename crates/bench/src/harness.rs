//! A minimal, dependency-free micro-benchmark harness.
//!
//! The build environment for this workspace must work fully offline, so the
//! bench targets cannot pull in crates.io harnesses. This module provides
//! the small subset actually used by the `benches/` targets: warmup,
//! automatic iteration-count calibration toward a target measurement
//! window, and median-of-samples reporting.
//!
//! Each `[[bench]]` target sets `harness = false` and drives a [`Bench`]
//! from its `main`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured result.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median wall time per iteration.
    pub per_iter: Duration,
    /// Iterations per sample used after calibration.
    pub iters: u64,
    /// Number of samples taken.
    pub samples: u32,
}

impl Measurement {
    /// Iterations per second implied by the median time.
    pub fn per_second(&self) -> f64 {
        if self.per_iter.as_nanos() == 0 {
            f64::INFINITY
        } else {
            1e9 / self.per_iter.as_nanos() as f64
        }
    }
}

/// A named group of micro-benchmarks, printed as aligned rows.
#[derive(Debug)]
pub struct Bench {
    group: String,
    samples: u32,
    target: Duration,
}

impl Bench {
    /// Creates a bench group with default settings (15 samples, ~50 ms
    /// measurement window per sample).
    pub fn new(group: impl Into<String>) -> Self {
        let group = group.into();
        println!("benchmark group: {group}");
        Bench {
            group,
            samples: 15,
            target: Duration::from_millis(50),
        }
    }

    /// Overrides the number of samples.
    #[must_use]
    pub fn samples(mut self, n: u32) -> Self {
        self.samples = n.max(3);
        self
    }

    /// Overrides the per-sample measurement window.
    #[must_use]
    pub fn sample_window(mut self, window: Duration) -> Self {
        self.target = window;
        self
    }

    /// Runs `f` repeatedly, printing and returning the median
    /// per-iteration time.
    pub fn run<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Measurement {
        // Warmup + calibration: find an iteration count that fills the
        // target window.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target / 4 || iters >= 1 << 30 {
                let nanos = elapsed.as_nanos().max(1) as u64;
                let scale = self.target.as_nanos() as u64 / nanos;
                iters = (iters * scale.clamp(1, 1024)).max(1);
                break;
            }
            iters *= 8;
        }

        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed() / iters as u32
            })
            .collect();
        per_iter.sort();
        let median = per_iter[per_iter.len() / 2];
        let m = Measurement {
            per_iter: median,
            iters,
            samples: self.samples,
        };
        println!(
            "  {:<42} {:>14}  ({:.0} iter/s, {} iters x {} samples)",
            format!("{}/{}", self.group, name),
            format_duration(median),
            m.per_second(),
            iters,
            self.samples,
        );
        m
    }
}

/// Formats a duration with an adaptive unit, e.g. `1.23 us`.
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let b = Bench::new("test")
            .samples(3)
            .sample_window(Duration::from_millis(2));
        let m = b.run("noop-ish", || 1u64 + black_box(1));
        assert!(m.per_iter <= Duration::from_millis(1));
        assert!(m.per_second() > 0.0);
    }

    #[test]
    fn duration_formatting_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("us"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
