//! B-SIM: simulator throughput — events per second for packet forwarding
//! under CBR and Poisson load, with and without capture taps.

use bench::harness::Bench;
use netsim::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn line_topology(n: usize) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let nodes = t.add_nodes(n);
    for w in nodes.windows(2) {
        t.connect(w[0], w[1], SimDuration::from_millis(5));
    }
    (t, nodes)
}

fn run_cbr(n_nodes: usize, with_tap: bool) -> u64 {
    let (topo, nodes) = line_topology(n_nodes);
    let mut sim = Simulator::new(topo, 1);
    if with_tap {
        sim.add_tap(Tap::new(
            TapPoint::Node(nodes[n_nodes / 2]),
            CaptureScope::HeadersOnly,
            CaptureFilter::any(),
        ));
    }
    sim.set_protocol(
        nodes[0],
        CbrSource::new(
            *nodes.last().unwrap(),
            FlowId(1),
            200,
            SimDuration::from_millis(2),
        ),
    );
    sim.set_protocol(*nodes.last().unwrap(), CountingSink::new());
    sim.run_until(SimTime::from_secs(5));
    sim.counters().events
}

fn bench_forwarding() {
    let b = Bench::new("netsim/forwarding")
        .samples(5)
        .sample_window(Duration::from_millis(100));
    for n in [4usize, 16, 64] {
        b.run(&format!("line{n}_cbr5s"), || black_box(run_cbr(n, false)));
    }
    b.run("line16_cbr5s_with_tap", || black_box(run_cbr(16, true)));
}

fn bench_poisson_fanin() {
    let b = Bench::new("netsim/poisson_fanin")
        .samples(5)
        .sample_window(Duration::from_millis(100));
    b.run("star8_200pps_each", || {
        let mut topo = Topology::new();
        let hub = topo.add_node();
        let leaves = topo.add_nodes(8);
        for &l in &leaves {
            topo.connect(hub, l, SimDuration::from_millis(3));
        }
        let mut sim = Simulator::new(topo, 7);
        for (i, &l) in leaves.iter().enumerate() {
            sim.set_protocol(l, PoissonSource::new(hub, FlowId(i as u64), 128, 200.0));
        }
        sim.set_protocol(hub, CountingSink::new());
        sim.run_until(SimTime::from_secs(2));
        black_box(sim.counters().delivered)
    });
}

fn bench_rate_series() {
    // The detector's input path: binning a large capture into rates.
    let mut topo = Topology::new();
    let a = topo.add_node();
    let b = topo.add_node();
    topo.connect(a, b, SimDuration::from_millis(1));
    let mut sim = Simulator::new(topo, 3);
    let tap = sim.add_tap(Tap::new(
        TapPoint::Node(b),
        CaptureScope::RateOnly,
        CaptureFilter::any(),
    ));
    sim.set_protocol(a, PoissonSource::new(b, FlowId(1), 256, 2000.0));
    sim.set_protocol(b, CountingSink::new());
    sim.run_until(SimTime::from_secs(10));
    let tap_ref = sim.tap(tap);
    let bench = Bench::new("netsim");
    bench.run("rate_series_20k_records", || {
        black_box(tap_ref.rate_series(SimTime::ZERO, SimDuration::from_millis(100), 100))
    });
}

fn main() {
    bench_forwarding();
    bench_poisson_fanin();
    bench_rate_series();
}
