//! B-SIM: simulator throughput — events per second for packet forwarding
//! under CBR and Poisson load, with and without capture taps.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::prelude::*;
use std::hint::black_box;

fn line_topology(n: usize) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let nodes = t.add_nodes(n);
    for w in nodes.windows(2) {
        t.connect(w[0], w[1], SimDuration::from_millis(5));
    }
    (t, nodes)
}

fn run_cbr(n_nodes: usize, with_tap: bool) -> u64 {
    let (topo, nodes) = line_topology(n_nodes);
    let mut sim = Simulator::new(topo, 1);
    if with_tap {
        sim.add_tap(Tap::new(
            TapPoint::Node(nodes[n_nodes / 2]),
            CaptureScope::HeadersOnly,
            CaptureFilter::any(),
        ));
    }
    sim.set_protocol(
        nodes[0],
        CbrSource::new(
            *nodes.last().unwrap(),
            FlowId(1),
            200,
            SimDuration::from_millis(2),
        ),
    );
    sim.set_protocol(*nodes.last().unwrap(), CountingSink::new());
    sim.run_until(SimTime::from_secs(5));
    sim.counters().events
}

fn bench_forwarding(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim/forwarding");
    group.sample_size(20);
    for n in [4usize, 16, 64] {
        group.bench_function(format!("line{n}_cbr5s"), |b| {
            b.iter(|| black_box(run_cbr(n, false)));
        });
    }
    group.bench_function("line16_cbr5s_with_tap", |b| {
        b.iter(|| black_box(run_cbr(16, true)));
    });
    group.finish();
}

fn bench_poisson_fanin(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim/poisson_fanin");
    group.sample_size(20);
    group.bench_function("star8_200pps_each", |b| {
        b.iter(|| {
            let mut topo = Topology::new();
            let hub = topo.add_node();
            let leaves = topo.add_nodes(8);
            for &l in &leaves {
                topo.connect(hub, l, SimDuration::from_millis(3));
            }
            let mut sim = Simulator::new(topo, 7);
            for (i, &l) in leaves.iter().enumerate() {
                sim.set_protocol(l, PoissonSource::new(hub, FlowId(i as u64), 128, 200.0));
            }
            sim.set_protocol(hub, CountingSink::new());
            sim.run_until(SimTime::from_secs(2));
            black_box(sim.counters().delivered)
        });
    });
    group.finish();
}

fn bench_rate_series(c: &mut Criterion) {
    // The detector's input path: binning a large capture into rates.
    let mut topo = Topology::new();
    let a = topo.add_node();
    let b = topo.add_node();
    topo.connect(a, b, SimDuration::from_millis(1));
    let mut sim = Simulator::new(topo, 3);
    let tap = sim.add_tap(Tap::new(
        TapPoint::Node(b),
        CaptureScope::RateOnly,
        CaptureFilter::any(),
    ));
    sim.set_protocol(a, PoissonSource::new(b, FlowId(1), 256, 2000.0));
    sim.set_protocol(b, CountingSink::new());
    sim.run_until(SimTime::from_secs(10));
    let tap_ref = sim.tap(tap);
    c.bench_function("netsim/rate_series_20k_records", |bch| {
        bch.iter(|| {
            black_box(tap_ref.rate_series(SimTime::ZERO, SimDuration::from_millis(100), 100))
        });
    });
}

criterion_group!(
    benches,
    bench_forwarding,
    bench_poisson_fanin,
    bench_rate_series
);
criterion_main!(benches);
