//! B-WM: watermark pipeline cost — PN code generation, despreading, and
//! synchronization search across code lengths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use watermark::detect::{ideal_series, Detector};
use watermark::pn::PnCode;

fn bench_code_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("watermark/pn_generation");
    for degree in [7u32, 9, 11, 13] {
        group.bench_function(format!("degree{degree}"), |b| {
            b.iter(|| black_box(PnCode::m_sequence(black_box(degree), 1)));
        });
    }
    group.finish();
}

fn bench_despreading(c: &mut Criterion) {
    let mut group = c.benchmark_group("watermark/despread");
    for degree in [7u32, 9, 11] {
        let code = PnCode::m_sequence(degree, 1);
        let series = ideal_series(&code, 4, 120.0, 40.0);
        let det = Detector::new(code.clone(), 4, 0, 0.3);
        group.bench_function(format!("len{}", code.len()), |b| {
            b.iter(|| black_box(det.despread_at(black_box(&series), 0)));
        });
    }
    group.finish();
}

fn bench_sync_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("watermark/sync_search");
    group.sample_size(30);
    for max_offset in [8usize, 32, 128] {
        let code = PnCode::m_sequence(9, 1);
        let mut series = vec![60.0; max_offset];
        series.extend(ideal_series(&code, 4, 120.0, 40.0));
        let det = Detector::new(code, 4, max_offset, 0.3);
        group.bench_function(format!("offsets{max_offset}"), |b| {
            b.iter(|| black_box(det.detect(black_box(&series))));
        });
    }
    group.finish();
}

fn bench_autocorrelation(c: &mut Criterion) {
    let code = PnCode::m_sequence(11, 1);
    c.bench_function("watermark/autocorrelation_len2047", |b| {
        b.iter(|| black_box(code.autocorrelation(black_box(17))));
    });
}

criterion_group!(
    benches,
    bench_code_generation,
    bench_despreading,
    bench_sync_search,
    bench_autocorrelation
);
criterion_main!(benches);
