//! B-WM: watermark pipeline cost — PN code generation, despreading, and
//! synchronization search across code lengths.

use bench::harness::Bench;
use std::hint::black_box;
use watermark::detect::{ideal_series, Detector};
use watermark::pn::PnCode;

fn bench_code_generation() {
    let b = Bench::new("watermark/pn_generation");
    for degree in [7u32, 9, 11, 13] {
        b.run(&format!("degree{degree}"), || {
            black_box(PnCode::m_sequence(black_box(degree), 1))
        });
    }
}

fn bench_despreading() {
    let b = Bench::new("watermark/despread");
    for degree in [7u32, 9, 11] {
        let code = PnCode::m_sequence(degree, 1);
        let series = ideal_series(&code, 4, 120.0, 40.0);
        let det = Detector::new(code.clone(), 4, 0, 0.3);
        b.run(&format!("len{}", code.len()), || {
            black_box(det.despread_at(black_box(&series), 0))
        });
    }
}

fn bench_sync_search() {
    let b = Bench::new("watermark/sync_search").samples(7);
    for max_offset in [8usize, 32, 128] {
        let code = PnCode::m_sequence(9, 1);
        let mut series = vec![60.0; max_offset];
        series.extend(ideal_series(&code, 4, 120.0, 40.0));
        let det = Detector::new(code, 4, max_offset, 0.3);
        b.run(&format!("offsets{max_offset}"), || {
            black_box(det.detect(black_box(&series)))
        });
    }
}

/// The prefix-sum fast path against the retained naive reference, at the
/// widest search window — the headline detector speedup.
fn bench_sync_search_vs_reference() {
    let b = Bench::new("watermark/sync_search_impl").samples(7);
    let max_offset = 128;
    let code = PnCode::m_sequence(9, 1);
    let mut series = vec![60.0; max_offset];
    series.extend(ideal_series(&code, 4, 120.0, 40.0));
    let det = Detector::new(code, 4, max_offset, 0.3);
    b.run("prefix_sum", || black_box(det.detect(black_box(&series))));
    b.run("reference", || {
        black_box(det.detect_reference(black_box(&series)))
    });
}

fn bench_autocorrelation() {
    let code = PnCode::m_sequence(11, 1);
    let b = Bench::new("watermark");
    b.run("autocorrelation_len2047", || {
        black_box(code.autocorrelation(black_box(17)))
    });
}

fn main() {
    bench_code_generation();
    bench_despreading();
    bench_sync_search();
    bench_sync_search_vs_reference();
    bench_autocorrelation();
}
