//! B-BATCH: batch-assessment cost — sequential engine calls vs the
//! sharded verdict cache vs the multi-threaded batch assessor, over a
//! synthetic workload with Table 1's fact-pattern mix.

use bench::harness::Bench;
use forensic_law::batch::{BatchAssessor, VerdictCache};
use forensic_law::engine::ComplianceEngine;
use forensic_law::prelude::InvestigativeAction;
use forensic_law::scenarios::table1;
use std::hint::black_box;

/// A workload of `n` actions cycling through the twenty Table 1 fact
/// patterns — many repeats of few distinct keys, like a capture-archive
/// sweep.
fn workload(n: usize) -> Vec<InvestigativeAction> {
    let rows = table1();
    (0..n)
        .map(|i| rows[i % rows.len()].action().clone())
        .collect()
}

fn bench_sequential() {
    let engine = ComplianceEngine::new();
    let b = Bench::new("batch/sequential").samples(7);
    for n in [1_000usize, 10_000] {
        let actions = workload(n);
        b.run(&format!("{n}_actions"), || {
            let mut need = 0usize;
            for a in &actions {
                if engine.assess(a).verdict().needs_process() {
                    need += 1;
                }
            }
            black_box(need)
        });
    }
}

fn bench_cached_sequential() {
    let engine = ComplianceEngine::new();
    let b = Bench::new("batch/cached").samples(7);
    for n in [1_000usize, 10_000] {
        let actions = workload(n);
        let cache = VerdictCache::new();
        // Warm once so the measurement shows steady-state hit cost.
        for a in &actions {
            cache.assess(&engine, a);
        }
        b.run(&format!("{n}_actions_warm"), || {
            let mut need = 0usize;
            for a in &actions {
                if cache.assess(&engine, a).verdict().needs_process() {
                    need += 1;
                }
            }
            black_box(need)
        });
    }
}

fn bench_batch_assessor() {
    let b = Bench::new("batch/threaded").samples(7);
    for n in [10_000usize, 100_000] {
        let actions = workload(n);
        let assessor = BatchAssessor::new();
        assessor.assess_all(&actions); // warm the shared cache
        b.run(&format!("{n}_actions_warm"), || {
            black_box(assessor.assess_all(&actions))
        });
    }
}

fn bench_factkey_projection() {
    use forensic_law::factkey::FactKey;
    let actions = workload(1_000);
    let b = Bench::new("batch");
    b.run("factkey_project_1000", || {
        let mut keys = Vec::with_capacity(actions.len());
        for a in &actions {
            keys.push(FactKey::of(black_box(a)));
        }
        black_box(keys)
    });
}

fn main() {
    bench_sequential();
    bench_cached_sequential();
    bench_batch_assessor();
    bench_factkey_projection();
}
