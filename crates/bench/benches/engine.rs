//! B-ENG: cost of the compliance engine — per-assessment latency for every
//! Table 1 scenario and the full-table sweep.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use forensic_law::engine::ComplianceEngine;
use forensic_law::scenarios::{scenario, table1};
use std::hint::black_box;

fn bench_single_assessments(c: &mut Criterion) {
    let engine = ComplianceEngine::new();
    let mut group = c.benchmark_group("engine/assess");
    // Representative rows spanning the rule space: provider exception,
    // wiretap, SCA, consent/trespasser, hashing.
    for row in [1usize, 8, 12, 15, 18] {
        let scene = scenario(row);
        group.bench_function(format!("row{row}"), |b| {
            b.iter(|| black_box(engine.assess(black_box(scene.action()))));
        });
    }
    group.finish();
}

fn bench_full_table(c: &mut Criterion) {
    let engine = ComplianceEngine::new();
    let rows = table1();
    c.bench_function("engine/table1_assess_all", |b| {
        b.iter(|| {
            let mut need = 0usize;
            for row in &rows {
                if engine.assess(row.action()).verdict().needs_process() {
                    need += 1;
                }
            }
            black_box(need)
        });
    });
}

fn bench_scenario_construction(c: &mut Criterion) {
    c.bench_function("engine/table1_build_scenarios", |b| {
        b.iter_batched(|| (), |_| black_box(table1()), BatchSize::SmallInput);
    });
}

criterion_group!(
    benches,
    bench_single_assessments,
    bench_full_table,
    bench_scenario_construction
);
criterion_main!(benches);
