//! B-ENG: cost of the compliance engine — per-assessment latency for every
//! Table 1 scenario and the full-table sweep.

use bench::harness::Bench;
use forensic_law::engine::ComplianceEngine;
use forensic_law::scenarios::{scenario, table1};
use std::hint::black_box;

fn bench_single_assessments() {
    let engine = ComplianceEngine::new();
    let b = Bench::new("engine/assess");
    // Representative rows spanning the rule space: provider exception,
    // wiretap, SCA, consent/trespasser, hashing.
    for row in [1usize, 8, 12, 15, 18] {
        let scene = scenario(row);
        b.run(&format!("row{row}"), || {
            black_box(engine.assess(black_box(scene.action())))
        });
    }
}

fn bench_full_table() {
    let engine = ComplianceEngine::new();
    let rows = table1();
    let b = Bench::new("engine");
    b.run("table1_assess_all", || {
        let mut need = 0usize;
        for row in &rows {
            if engine.assess(row.action()).verdict().needs_process() {
                need += 1;
            }
        }
        black_box(need)
    });
}

fn bench_scenario_construction() {
    let b = Bench::new("engine");
    b.run("table1_build_scenarios", || black_box(table1()));
}

fn main() {
    bench_single_assessments();
    bench_full_table();
    bench_scenario_construction();
}
