//! B-EVD: evidence-handling cost — SHA-256 throughput (the Table 1 row 18
//! drive-hashing scene at benchmark scale) and custody-chain verification.

use bench::harness::Bench;
use evidence::custody::{CustodyEvent, CustodyLog};
use evidence::hash::{hmac_sha256, sha256};
use evidence::item::ItemId;
use std::hint::black_box;

fn bench_sha256() {
    let b = Bench::new("evidence/sha256");
    for size in [1usize << 10, 1 << 16, 1 << 20] {
        let data = vec![0xabu8; size];
        let m = b.run(&format!("{}KiB", size / 1024), || {
            black_box(sha256(black_box(&data)))
        });
        let bytes_per_sec = m.per_second() * size as f64;
        println!("    -> {:.1} MiB/s", bytes_per_sec / (1024.0 * 1024.0));
    }
}

fn bench_hmac() {
    let data = vec![0x5au8; 4096];
    let b = Bench::new("evidence");
    b.run("hmac_4KiB", || {
        black_box(hmac_sha256(b"custody-key", black_box(&data)))
    });
}

fn bench_custody_chain() {
    let b = Bench::new("evidence/custody");
    for entries in [100usize, 1000] {
        let mut log = CustodyLog::new();
        let d = sha256(b"item");
        for i in 0..entries {
            log.record(
                ItemId(1),
                i as u64,
                CustodyEvent::Analyzed {
                    by: "analyst".into(),
                    tool: "carver".into(),
                },
                d,
            );
        }
        b.run(&format!("verify_{entries}_entries"), || {
            black_box(log.verify())
        });
    }
}

fn main() {
    bench_sha256();
    bench_hmac();
    bench_custody_chain();
}
