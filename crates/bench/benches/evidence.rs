//! B-EVD: evidence-handling cost — SHA-256 throughput (the Table 1 row 18
//! drive-hashing scene at benchmark scale) and custody-chain verification.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use evidence::custody::{CustodyEvent, CustodyLog};
use evidence::hash::{hmac_sha256, sha256};
use evidence::item::ItemId;
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("evidence/sha256");
    for size in [1usize << 10, 1 << 16, 1 << 20] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{}KiB", size / 1024), |b| {
            b.iter(|| black_box(sha256(black_box(&data))));
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0x5au8; 4096];
    c.bench_function("evidence/hmac_4KiB", |b| {
        b.iter(|| black_box(hmac_sha256(b"custody-key", black_box(&data))));
    });
}

fn bench_custody_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("evidence/custody");
    for entries in [100usize, 1000] {
        let mut log = CustodyLog::new();
        let d = sha256(b"item");
        for i in 0..entries {
            log.record(
                ItemId(1),
                i as u64,
                CustodyEvent::Analyzed {
                    by: "analyst".into(),
                    tool: "carver".into(),
                },
                d,
            );
        }
        group.bench_function(format!("verify_{entries}_entries"), |b| {
            b.iter(|| black_box(log.verify()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sha256, bench_hmac, bench_custody_chain);
criterion_main!(benches);
