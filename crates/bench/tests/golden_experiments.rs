//! Golden differential tests for the experiment drivers.
//!
//! The fixtures under `tests/fixtures/` were captured from the drivers
//! **before** the simulators were ported onto the `simcore` engine (the
//! pre-refactor `main`). The port — shared event queue, bounded route
//! cache, neighbor fast path, tap indexing — is required to be
//! behavior-preserving, so the post-port drivers must reproduce those
//! captures byte for byte, and must keep doing so at any worker count.
//!
//! To regenerate a fixture after an *intentional* output change, rerun
//! the exact command recorded at the top of each test and review the
//! diff like any other golden update.

use std::process::Command;

/// Runs a bench binary and returns its stdout, asserting clean exit.
fn stdout_of(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} exited {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("driver output is UTF-8")
}

/// Diffs driver output against its fixture with a readable first-delta
/// report (a bare `assert_eq!` on whole files is unreadable on failure).
fn assert_matches_fixture(got: &str, fixture: &str, name: &str) {
    if got == fixture {
        return;
    }
    for (i, (g, f)) in got.lines().zip(fixture.lines()).enumerate() {
        assert_eq!(
            g,
            f,
            "{name}: first divergence at line {} (fixture predates the simcore port; \
             the port must be behavior-preserving)",
            i + 1
        );
    }
    panic!(
        "{name}: outputs agree line-by-line but differ in length \
         (got {} lines, fixture {} lines)",
        got.lines().count(),
        fixture.lines().count()
    );
}

// Captured pre-port with:
//   oneswarm_attack --trials 2 --threads 2 --seed 7
#[test]
fn oneswarm_attack_reproduces_preport_fixture() {
    let got = stdout_of(
        env!("CARGO_BIN_EXE_oneswarm_attack"),
        &["--trials", "2", "--threads", "2", "--seed", "7"],
    );
    assert_matches_fixture(
        &got,
        include_str!("fixtures/oneswarm_attack.txt"),
        "oneswarm_attack",
    );
}

// Captured pre-port with:
//   p2p_comparison --trials 2 --threads 2 --seed 7
#[test]
fn p2p_comparison_reproduces_preport_fixture() {
    let got = stdout_of(
        env!("CARGO_BIN_EXE_p2p_comparison"),
        &["--trials", "2", "--threads", "2", "--seed", "7"],
    );
    assert_matches_fixture(
        &got,
        include_str!("fixtures/p2p_comparison.txt"),
        "p2p_comparison",
    );
}

// Captured pre-port with:
//   watermark_roc --trials 120 --threads 2 --seed 7
#[test]
fn watermark_roc_reproduces_preport_fixture() {
    let got = stdout_of(
        env!("CARGO_BIN_EXE_watermark_roc"),
        &["--trials", "120", "--threads", "2", "--seed", "7"],
    );
    assert_matches_fixture(
        &got,
        include_str!("fixtures/watermark_roc.txt"),
        "watermark_roc",
    );
}

/// The worker-count half of the determinism contract: the same seed
/// must print the same bytes whether trials run on 1, 2, or 8 workers.
#[test]
fn worker_count_never_changes_driver_output() {
    let cases: &[(&str, &[&str])] = &[
        (
            env!("CARGO_BIN_EXE_oneswarm_attack"),
            &["--trials", "2", "--seed", "7"],
        ),
        (
            env!("CARGO_BIN_EXE_p2p_comparison"),
            &["--trials", "2", "--seed", "7"],
        ),
        (
            env!("CARGO_BIN_EXE_watermark_roc"),
            &["--trials", "40", "--seed", "7"],
        ),
    ];
    for (bin, base) in cases {
        let outputs: Vec<String> = ["1", "2", "8"]
            .iter()
            .map(|threads| {
                let mut args = base.to_vec();
                args.extend_from_slice(&["--threads", threads]);
                stdout_of(bin, &args)
            })
            .collect();
        assert_eq!(outputs[0], outputs[1], "{bin}: 1 vs 2 workers diverged");
        assert_eq!(outputs[0], outputs[2], "{bin}: 1 vs 8 workers diverged");
    }
}
