//! A relay directory and circuit builder: pick entry/middle/exit relays
//! the way an onion-routing client would.

use crate::relay::Circuit;
use netsim::prelude::{NodeId, SimRng};
use std::fmt;

/// One advertised relay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelayDescriptor {
    /// The relay's node.
    pub node: NodeId,
    /// Its layer key (toy crypto — published here for the simulation;
    /// a real directory would publish public keys).
    pub key: u64,
    /// Whether the operator allows exit traffic.
    pub allows_exit: bool,
}

/// Errors from circuit building.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectoryError {
    /// Fewer distinct relays available than hops requested.
    NotEnoughRelays {
        /// Hops requested.
        requested: usize,
        /// Relays available.
        available: usize,
    },
    /// No exit-flagged relay is available.
    NoExitRelay,
}

impl fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectoryError::NotEnoughRelays {
                requested,
                available,
            } => write!(
                f,
                "need {requested} distinct relays, only {available} available"
            ),
            DirectoryError::NoExitRelay => f.write_str("no exit relay in the directory"),
        }
    }
}

impl std::error::Error for DirectoryError {}

/// The directory of known relays.
#[derive(Debug, Clone, Default)]
pub struct RelayDirectory {
    relays: Vec<RelayDescriptor>,
}

impl RelayDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        RelayDirectory::default()
    }

    /// Publishes a relay.
    pub fn publish(&mut self, descriptor: RelayDescriptor) {
        self.relays.push(descriptor);
    }

    /// Number of published relays.
    pub fn len(&self) -> usize {
        self.relays.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.relays.is_empty()
    }

    /// The published relays.
    pub fn relays(&self) -> &[RelayDescriptor] {
        &self.relays
    }

    /// Builds a circuit of `hops` distinct relays whose last hop allows
    /// exit, choosing uniformly at random.
    ///
    /// # Errors
    ///
    /// Returns [`DirectoryError`] when the directory cannot satisfy the
    /// request.
    pub fn build_circuit(&self, hops: usize, rng: &mut SimRng) -> Result<Circuit, DirectoryError> {
        if self.relays.len() < hops {
            return Err(DirectoryError::NotEnoughRelays {
                requested: hops,
                available: self.relays.len(),
            });
        }
        let exits: Vec<&RelayDescriptor> = self.relays.iter().filter(|r| r.allows_exit).collect();
        if exits.is_empty() {
            return Err(DirectoryError::NoExitRelay);
        }
        let exit = **rng.choose(&exits).expect("nonempty");
        // Pick the remaining hops from non-exit positions, distinct from
        // each other and from the exit.
        let mut pool: Vec<RelayDescriptor> = self
            .relays
            .iter()
            .copied()
            .filter(|r| r.node != exit.node)
            .collect();
        if pool.len() + 1 < hops {
            return Err(DirectoryError::NotEnoughRelays {
                requested: hops,
                available: pool.len() + 1,
            });
        }
        rng.shuffle(&mut pool);
        let mut path: Vec<(NodeId, u64)> = pool
            .into_iter()
            .take(hops - 1)
            .map(|r| (r.node, r.key))
            .collect();
        path.push((exit.node, exit.key));
        Ok(Circuit::new(path))
    }
}

impl FromIterator<RelayDescriptor> for RelayDirectory {
    fn from_iter<I: IntoIterator<Item = RelayDescriptor>>(iter: I) -> Self {
        RelayDirectory {
            relays: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directory(n: usize, exits: usize) -> RelayDirectory {
        (0..n)
            .map(|i| RelayDescriptor {
                node: NodeId(i + 10),
                key: 100 + i as u64,
                allows_exit: i < exits,
            })
            .collect()
    }

    #[test]
    fn builds_three_hop_circuit() {
        let dir = directory(6, 2);
        let mut rng = SimRng::seed_from(1);
        let circuit = dir.build_circuit(3, &mut rng).unwrap();
        assert_eq!(circuit.hops(), 3);
    }

    #[test]
    fn circuit_relays_are_distinct() {
        let dir = directory(8, 3);
        let mut rng = SimRng::seed_from(2);
        for trial in 0..50 {
            let mut c = dir.build_circuit(3, &mut rng).unwrap();
            // Peel the cell with every key and collect the relays the
            // route actually visits; all must be distinct.
            let mut visited = vec![c.entry()];
            let mut cell = c.make_cell(NodeId(500), b"x");
            loop {
                let key = dir
                    .relays()
                    .iter()
                    .find(|r| r.node == *visited.last().unwrap())
                    .unwrap()
                    .key;
                match crate::onion::peel(key, &cell).unwrap() {
                    (crate::onion::OnionNext::Forward(next), inner) => {
                        visited.push(next);
                        cell = inner;
                    }
                    (crate::onion::OnionNext::Deliver(dst), _) => {
                        assert_eq!(dst, NodeId(500));
                        break;
                    }
                }
            }
            assert_eq!(visited.len(), 3, "trial {trial}");
            let unique: std::collections::BTreeSet<_> = visited.iter().collect();
            assert_eq!(unique.len(), 3, "relays must be distinct, trial {trial}");
        }
    }

    #[test]
    fn exit_is_exit_flagged() {
        // Only relay 0 allows exit; every built circuit must end there.
        let dir = directory(5, 1);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..20 {
            let mut c = dir.build_circuit(2, &mut rng).unwrap();
            // Wrap a cell and peel it hop by hop with the directory's
            // keys to identify the exit.
            let cell = c.make_cell(NodeId(99), b"x");
            let entry = c.entry();
            let entry_key = dir.relays().iter().find(|r| r.node == entry).unwrap().key;
            let (next, inner) = crate::onion::peel(entry_key, &cell).unwrap();
            match next {
                crate::onion::OnionNext::Forward(exit_node) => {
                    assert_eq!(exit_node, NodeId(10), "exit must be the only exit relay");
                    let exit_key = dir
                        .relays()
                        .iter()
                        .find(|r| r.node == exit_node)
                        .unwrap()
                        .key;
                    let (last, _) = crate::onion::peel(exit_key, &inner).unwrap();
                    assert_eq!(last, crate::onion::OnionNext::Deliver(NodeId(99)));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn not_enough_relays_error() {
        let dir = directory(2, 1);
        let mut rng = SimRng::seed_from(4);
        assert_eq!(
            dir.build_circuit(3, &mut rng).unwrap_err(),
            DirectoryError::NotEnoughRelays {
                requested: 3,
                available: 2
            }
        );
    }

    #[test]
    fn no_exit_error() {
        let dir = directory(4, 0);
        let mut rng = SimRng::seed_from(5);
        assert_eq!(
            dir.build_circuit(2, &mut rng).unwrap_err(),
            DirectoryError::NoExitRelay
        );
    }

    #[test]
    fn empty_and_len() {
        let dir = RelayDirectory::new();
        assert!(dir.is_empty());
        let dir = directory(3, 1);
        assert_eq!(dir.len(), 3);
        assert!(!dir.is_empty());
    }

    #[test]
    fn error_display() {
        assert!(DirectoryError::NoExitRelay.to_string().contains("exit"));
    }
}
