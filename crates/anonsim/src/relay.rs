//! Onion relays and circuits.

use crate::onion::{peel, OnionNext};
use crate::transform::FlowTransform;
use netsim::packet::{FlowId, Packet, Transport};
use netsim::prelude::{Context, NodeId, Protocol, SimDuration};
use std::collections::HashMap;

const FLUSH: u64 = 0;

/// An onion relay: peels one layer of each received cell, applies its
/// [`FlowTransform`], and forwards (or delivers plaintext at the exit).
#[derive(Debug)]
pub struct OnionRelay {
    key: u64,
    transform: FlowTransform,
    /// Jitter-deferred sends keyed by timer token.
    pending: HashMap<u64, (NodeId, Vec<u8>, FlowId)>,
    /// Batch queue (when batching).
    batch: Vec<(NodeId, Vec<u8>, FlowId)>,
    next_token: u64,
    relayed: u64,
    dropped: u64,
}

impl OnionRelay {
    /// Creates a relay holding `key` with the given transform.
    pub fn new(key: u64, transform: FlowTransform) -> Self {
        OnionRelay {
            key,
            transform,
            pending: HashMap::new(),
            batch: Vec::new(),
            next_token: 1,
            relayed: 0,
            dropped: 0,
        }
    }

    /// Cells relayed or delivered.
    pub fn relayed(&self) -> u64 {
        self.relayed
    }

    /// Cells dropped by the loss model.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn dispatch(&mut self, ctx: &mut Context<'_>, to: NodeId, bytes: Vec<u8>, flow: FlowId) {
        if self.transform.sample_drop(ctx) {
            self.dropped += 1;
            return;
        }
        if self.transform.batch_interval.is_some() {
            self.batch.push((to, bytes, flow));
            return;
        }
        let delay = self.transform.sample_jitter(ctx);
        if delay == SimDuration::ZERO {
            self.emit(ctx, to, bytes, flow);
        } else {
            let token = self.next_token;
            self.next_token += 1;
            self.pending.insert(token, (to, bytes, flow));
            ctx.set_timer(delay, token);
        }
    }

    fn emit(&mut self, ctx: &mut Context<'_>, to: NodeId, bytes: Vec<u8>, flow: FlowId) {
        self.relayed += 1;
        let p = Packet::new(
            ctx.node(),
            to,
            Transport::Tcp {
                src_port: 9001,
                dst_port: 9001,
                seq: 0,
            },
            flow,
            bytes,
        );
        ctx.send(p);
    }
}

impl Protocol for OnionRelay {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if let Some(interval) = self.transform.batch_interval {
            ctx.set_timer(interval, FLUSH);
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let flow = packet.flow();
        match peel(self.key, packet.payload()) {
            Some((OnionNext::Forward(next), inner)) => {
                self.dispatch(ctx, next, inner, flow);
            }
            Some((OnionNext::Deliver(dst), payload)) => {
                // Exit: hand the plaintext to the final destination as an
                // ordinary packet (source now reads as the exit relay —
                // that is the anonymity).
                self.dispatch(ctx, dst, payload, flow);
            }
            None => {
                // Not for us / garbled — drop silently.
                self.dropped += 1;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == FLUSH {
            let queued = std::mem::take(&mut self.batch);
            for (to, bytes, flow) in queued {
                self.emit(ctx, to, bytes, flow);
            }
            if let Some(interval) = self.transform.batch_interval {
                ctx.set_timer(interval, FLUSH);
            }
        } else if let Some((to, bytes, flow)) = self.pending.remove(&token) {
            self.emit(ctx, to, bytes, flow);
        }
    }
}

/// A client-side description of a circuit: the relay path with keys.
#[derive(Debug, Clone)]
pub struct Circuit {
    path: Vec<(NodeId, u64)>,
    nonce_counter: u64,
    pad_payload_to: Option<usize>,
}

impl Circuit {
    /// Creates a circuit through `path` (relay node, relay key).
    ///
    /// # Panics
    ///
    /// Panics if the path is empty.
    pub fn new(path: Vec<(NodeId, u64)>) -> Self {
        assert!(!path.is_empty(), "circuit needs at least one relay");
        Circuit {
            path,
            nonce_counter: 0,
            pad_payload_to: None,
        }
    }

    /// Enables fixed-size cells: every payload is length-prefixed and
    /// padded to `size` bytes before wrapping, so cells of one circuit
    /// are indistinguishable by size (the classic size-correlation
    /// countermeasure).
    #[must_use]
    pub fn with_fixed_cell_payload(mut self, size: usize) -> Self {
        self.pad_payload_to = Some(size);
        self
    }

    /// The entry relay the client talks to.
    pub fn entry(&self) -> NodeId {
        self.path[0].0
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.path.len()
    }

    /// Wraps a payload for delivery to `final_dst` through this circuit,
    /// returning the cell to send to [`Circuit::entry`].
    ///
    /// # Panics
    ///
    /// Panics in fixed-cell mode when the payload exceeds the cell
    /// payload size.
    pub fn make_cell(&mut self, final_dst: NodeId, payload: &[u8]) -> Vec<u8> {
        self.nonce_counter += 1;
        match self.pad_payload_to {
            None => crate::onion::wrap(&self.path, final_dst, self.nonce_counter, payload),
            Some(size) => {
                assert!(
                    payload.len() + 4 <= size,
                    "payload {} exceeds fixed cell payload {}",
                    payload.len(),
                    size
                );
                let mut padded = Vec::with_capacity(size);
                padded.extend_from_slice(&(payload.len() as u32).to_be_bytes());
                padded.extend_from_slice(payload);
                padded.resize(size, 0);
                crate::onion::wrap(&self.path, final_dst, self.nonce_counter, &padded)
            }
        }
    }
}

/// Recovers the original payload from a fixed-size cell payload produced
/// by [`Circuit::with_fixed_cell_payload`].
///
/// Returns `None` on malformed input.
pub fn unpad_fixed_cell(padded: &[u8]) -> Option<&[u8]> {
    if padded.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes(padded[..4].try_into().ok()?) as usize;
    padded.get(4..4 + len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::prelude::*;

    #[derive(Debug, Default)]
    struct Collector {
        got: Vec<(SimTime, Vec<u8>, NodeId)>,
    }

    impl Protocol for Collector {
        fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
            self.got
                .push((ctx.time(), packet.payload().to_vec(), packet.src()));
        }
    }

    fn chain_topology(n: usize) -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let nodes = t.add_nodes(n);
        for w in nodes.windows(2) {
            t.connect(w[0], w[1], SimDuration::from_millis(10));
        }
        (t, nodes)
    }

    #[test]
    fn three_hop_circuit_delivers_plaintext() {
        // client(0) - r1(1) - r2(2) - r3(3) - server(4)
        let (topo, n) = chain_topology(5);
        let mut sim = Simulator::new(topo, 1);
        sim.set_protocol(n[1], OnionRelay::new(11, FlowTransform::default()));
        sim.set_protocol(n[2], OnionRelay::new(22, FlowTransform::default()));
        sim.set_protocol(n[3], OnionRelay::new(33, FlowTransform::default()));
        sim.set_protocol(n[4], Collector::default());
        sim.start();

        let mut circuit = Circuit::new(vec![(n[1], 11), (n[2], 22), (n[3], 33)]);
        assert_eq!(circuit.entry(), n[1]);
        assert_eq!(circuit.hops(), 3);
        let cell = circuit.make_cell(n[4], b"GET /index");
        let p = Packet::new(
            n[0],
            n[1],
            Transport::Tcp {
                src_port: 9001,
                dst_port: 9001,
                seq: 0,
            },
            FlowId(5),
            cell,
        );
        sim.inject(n[0], p);
        sim.run_until(SimTime::from_secs(2));

        let server = sim.take_protocol_as::<Collector>(n[4]).unwrap();
        assert_eq!(server.got.len(), 1);
        assert_eq!(server.got[0].1, b"GET /index");
        // The server sees the exit relay as the packet source, not the
        // client.
        assert_eq!(server.got[0].2, n[3]);
    }

    #[test]
    fn tap_between_relays_sees_only_ciphertext() {
        let (topo, n) = chain_topology(4);
        let mut sim = Simulator::new(topo, 2);
        let tap = sim.add_tap(Tap::new(
            TapPoint::Link(LinkId(1)), // between relay 1 and relay 2
            CaptureScope::FullContent,
            CaptureFilter::any(),
        ));
        sim.set_protocol(n[1], OnionRelay::new(1, FlowTransform::default()));
        sim.set_protocol(n[2], OnionRelay::new(2, FlowTransform::default()));
        sim.set_protocol(n[3], Collector::default());
        sim.start();
        let mut circuit = Circuit::new(vec![(n[1], 1), (n[2], 2)]);
        let secret = b"SECRET-PAYLOAD";
        let cell = circuit.make_cell(n[3], secret);
        let p = Packet::new(
            n[0],
            n[1],
            Transport::Tcp {
                src_port: 9001,
                dst_port: 9001,
                seq: 0,
            },
            FlowId(1),
            cell,
        );
        sim.inject(n[0], p);
        sim.run_until(SimTime::from_secs(2));
        // Even a full-content tap between relays cannot read the payload.
        let records = sim.tap(tap).records();
        assert!(!records.is_empty());
        for r in records {
            if let CaptureRecord::Full { packet, .. } = r {
                assert!(!packet
                    .payload()
                    .windows(secret.len())
                    .any(|w| w == secret.as_slice()));
            }
        }
    }

    #[test]
    fn batching_relay_quantizes_departures() {
        let (topo, n) = chain_topology(3);
        let mut sim = Simulator::new(topo, 3);
        sim.set_protocol(
            n[1],
            OnionRelay::new(7, FlowTransform::batching(SimDuration::from_millis(100))),
        );
        sim.set_protocol(n[2], Collector::default());
        sim.start();
        // Send three cells in quick succession.
        let mut circuit = Circuit::new(vec![(n[1], 7)]);
        for i in 0..3 {
            let cell = circuit.make_cell(n[2], &[i as u8]);
            let p = Packet::new(
                n[0],
                n[1],
                Transport::Tcp {
                    src_port: 9001,
                    dst_port: 9001,
                    seq: 0,
                },
                FlowId(1),
                cell,
            );
            sim.inject(n[0], p);
        }
        sim.run_until(SimTime::from_secs(1));
        let col = sim.take_protocol_as::<Collector>(n[2]).unwrap();
        assert_eq!(col.got.len(), 3);
        // All three delivered in the same flush → identical arrival time.
        assert_eq!(col.got[0].0, col.got[1].0);
        assert_eq!(col.got[1].0, col.got[2].0);
    }

    #[test]
    fn jitter_relay_preserves_count() {
        let (topo, n) = chain_topology(3);
        let mut sim = Simulator::new(topo, 4);
        sim.set_protocol(n[1], OnionRelay::new(7, FlowTransform::jitter(5, 50)));
        sim.set_protocol(n[2], Collector::default());
        sim.start();
        let mut circuit = Circuit::new(vec![(n[1], 7)]);
        for i in 0..10u8 {
            let cell = circuit.make_cell(n[2], &[i]);
            let p = Packet::new(
                n[0],
                n[1],
                Transport::Tcp {
                    src_port: 9001,
                    dst_port: 9001,
                    seq: 0,
                },
                FlowId(1),
                cell,
            );
            sim.inject(n[0], p);
        }
        sim.run_until(SimTime::from_secs(2));
        let col = sim.take_protocol_as::<Collector>(n[2]).unwrap();
        assert_eq!(col.got.len(), 10);
    }

    #[test]
    fn lossy_relay_drops() {
        let (topo, n) = chain_topology(3);
        let mut sim = Simulator::new(topo, 5);
        let transform = FlowTransform {
            drop_prob: 1.0,
            ..FlowTransform::default()
        };
        sim.set_protocol(n[1], OnionRelay::new(7, transform));
        sim.set_protocol(n[2], Collector::default());
        sim.start();
        let mut circuit = Circuit::new(vec![(n[1], 7)]);
        let cell = circuit.make_cell(n[2], b"x");
        let p = Packet::new(
            n[0],
            n[1],
            Transport::Tcp {
                src_port: 9001,
                dst_port: 9001,
                seq: 0,
            },
            FlowId(1),
            cell,
        );
        sim.inject(n[0], p);
        sim.run_until(SimTime::from_secs(1));
        let col = sim.take_protocol_as::<Collector>(n[2]).unwrap();
        assert!(col.got.is_empty());
        // dropped counter was incremented on the relay — retrieve it.
    }

    #[test]
    fn garbled_cell_is_dropped_not_crashed() {
        let (topo, n) = chain_topology(3);
        let mut sim = Simulator::new(topo, 6);
        sim.set_protocol(n[1], OnionRelay::new(7, FlowTransform::default()));
        sim.set_protocol(n[2], Collector::default());
        sim.start();
        let p = Packet::new(
            n[0],
            n[1],
            Transport::Tcp {
                src_port: 9001,
                dst_port: 9001,
                seq: 0,
            },
            FlowId(1),
            vec![0xff; 40],
        );
        sim.inject(n[0], p);
        sim.run_until(SimTime::from_secs(1));
        let relay = sim.take_protocol_as::<OnionRelay>(n[1]).unwrap();
        // The garbage decodes (or fails) without reaching the collector
        // as the original garbage.
        assert!(relay.dropped() + relay.relayed() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one relay")]
    fn empty_circuit_panics() {
        Circuit::new(vec![]);
    }
}

#[cfg(test)]
mod padding_tests {
    use super::*;
    use netsim::prelude::NodeId;

    #[test]
    fn fixed_cells_have_uniform_size() {
        let mut circuit =
            Circuit::new(vec![(NodeId(1), 7), (NodeId(2), 8)]).with_fixed_cell_payload(512);
        let sizes: Vec<usize> = [0usize, 1, 100, 500]
            .iter()
            .map(|&n| circuit.make_cell(NodeId(9), &vec![0xab; n]).len())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "sizes {sizes:?}");
    }

    #[test]
    fn padding_round_trips_through_peel() {
        let mut circuit = Circuit::new(vec![(NodeId(1), 7)]).with_fixed_cell_payload(256);
        let cell = circuit.make_cell(NodeId(9), b"hello");
        let (next, padded) = crate::onion::peel(7, &cell).unwrap();
        assert_eq!(next, crate::onion::OnionNext::Deliver(NodeId(9)));
        assert_eq!(unpad_fixed_cell(&padded), Some(&b"hello"[..]));
        assert_eq!(padded.len(), 256);
    }

    #[test]
    fn unpad_rejects_malformed() {
        assert_eq!(unpad_fixed_cell(&[1, 2]), None);
        assert_eq!(unpad_fixed_cell(&[0, 0, 0, 10, 1]), None);
    }

    #[test]
    #[should_panic(expected = "exceeds fixed cell payload")]
    fn oversize_payload_panics() {
        let mut circuit = Circuit::new(vec![(NodeId(1), 7)]).with_fixed_cell_payload(16);
        circuit.make_cell(NodeId(9), &[0; 64]);
    }
}
