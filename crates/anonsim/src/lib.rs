//! # anonsim
//!
//! Anonymity-network simulators for the workspace's §IV-B reproduction:
//! a Tor-like onion-circuit layer ([`relay`], [`onion`]) and a single-hop
//! Anonymizer-style proxy ([`proxy`]), both applying configurable flow
//! transforms ([`transform`]) — jitter, mix-style batching, and loss —
//! that a traceback watermark must survive.
//!
//! The onion layer uses a **toy** XOR-keystream cipher (see [`onion`]):
//! its role is to make payload unintelligible to taps so that, as in the
//! paper's §IV-B, "law enforcement cannot decrypt the packets" and the
//! only observable left is traffic *rate* — which is exactly what the
//! DSSS watermark modulates.
//!
//! ```
//! use anonsim::onion::{peel, wrap, OnionNext};
//! use netsim::prelude::NodeId;
//!
//! let path = [(NodeId(1), 0xaaaa), (NodeId(2), 0xbbbb)];
//! let cell = wrap(&path, NodeId(5), 1, b"payload");
//! let (next, inner) = peel(0xaaaa, &cell).unwrap();
//! assert_eq!(next, OnionNext::Forward(NodeId(2)));
//! let (next, body) = peel(0xbbbb, &inner).unwrap();
//! assert_eq!(next, OnionNext::Deliver(NodeId(5)));
//! assert_eq!(body, b"payload");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod directory;
pub mod onion;
pub mod proxy;
pub mod relay;
pub mod transform;

pub use directory::{DirectoryError, RelayDescriptor, RelayDirectory};
pub use proxy::{unwrap_for_proxy, wrap_for_proxy, AnonymizerProxy};
pub use relay::{Circuit, OnionRelay};
pub use transform::FlowTransform;
