//! Flow transforms applied by relays and proxies: jitter, batching, and
//! loss — the perturbations a traceback watermark must survive.

use netsim::prelude::{Context, SimDuration};

/// Timing/loss perturbation a relay applies to forwarded traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowTransform {
    /// Uniform per-packet delay in milliseconds `[lo, hi)`; `(0, 0)`
    /// disables jitter.
    pub jitter_ms: (u64, u64),
    /// When set, packets are held and flushed together every interval
    /// (mix-style batching).
    pub batch_interval: Option<SimDuration>,
    /// Independent per-packet drop probability.
    pub drop_prob: f64,
}

impl Default for FlowTransform {
    fn default() -> Self {
        FlowTransform {
            jitter_ms: (0, 0),
            batch_interval: None,
            drop_prob: 0.0,
        }
    }
}

impl FlowTransform {
    /// A transform that only jitters in `[lo, hi)` milliseconds.
    pub fn jitter(lo_ms: u64, hi_ms: u64) -> Self {
        FlowTransform {
            jitter_ms: (lo_ms, hi_ms),
            ..FlowTransform::default()
        }
    }

    /// A transform that batches on a fixed interval.
    pub fn batching(interval: SimDuration) -> Self {
        FlowTransform {
            batch_interval: Some(interval),
            ..FlowTransform::default()
        }
    }

    /// Samples the per-packet jitter delay.
    pub fn sample_jitter(&self, ctx: &mut Context<'_>) -> SimDuration {
        let (lo, hi) = self.jitter_ms;
        if hi > lo {
            SimDuration::from_millis(ctx.rng().range(lo, hi))
        } else {
            SimDuration::from_millis(lo)
        }
    }

    /// Samples whether this packet is dropped.
    pub fn sample_drop(&self, ctx: &mut Context<'_>) -> bool {
        self.drop_prob > 0.0 && ctx.rng().chance(self.drop_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let j = FlowTransform::jitter(10, 20);
        assert_eq!(j.jitter_ms, (10, 20));
        assert!(j.batch_interval.is_none());
        let b = FlowTransform::batching(SimDuration::from_millis(50));
        assert_eq!(b.batch_interval, Some(SimDuration::from_millis(50)));
        assert_eq!(FlowTransform::default().drop_prob, 0.0);
    }
}
