//! Toy layered ("onion") encryption for the circuit simulator.
//!
//! **This is NOT cryptography.** The cipher is a keyed XOR keystream
//! (SplitMix64), sufficient for the simulation's purpose: making payload
//! bytes unintelligible to taps between relays, so that the only signal
//! available to an observer is *timing and volume* — the premise of the
//! paper's §IV-B ("what if the suspect using anonymous software that law
//! enforcement cannot decrypt the packets?").

use netsim::prelude::NodeId;

/// Keystream-XOR "encryption" (symmetric; applying twice decrypts).
pub fn xor_keystream(key: u64, nonce: u64, data: &[u8]) -> Vec<u8> {
    let mut state = key ^ nonce.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15;
    let mut out = Vec::with_capacity(data.len());
    let mut block = [0u8; 8];
    for (i, &b) in data.iter().enumerate() {
        if i % 8 == 0 {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            block = z.to_le_bytes();
        }
        out.push(b ^ block[i % 8]);
    }
    out
}

/// What a relay should do with the inner material after peeling a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnionNext {
    /// Forward the remaining cell to this relay.
    Forward(NodeId),
    /// Deliver the plaintext payload to this final destination.
    Deliver(NodeId),
}

const TAG_FORWARD: u8 = 1;
const TAG_DELIVER: u8 = 2;

/// Builds a layered cell for a path of `(relay, key)` hops, terminating
/// in delivery of `payload` to `final_dst`.
///
/// The client sends the returned cell to the *first* relay in `path`.
///
/// # Panics
///
/// Panics if `path` is empty.
///
/// # Examples
///
/// ```
/// use anonsim::onion::{peel, wrap, OnionNext};
/// use netsim::prelude::NodeId;
///
/// let path = [(NodeId(1), 11), (NodeId(2), 22)];
/// let cell = wrap(&path, NodeId(9), 1234, b"hello");
///
/// // Relay 1 peels its layer and learns only the next hop.
/// let (next, inner) = peel(11, &cell).unwrap();
/// assert_eq!(next, OnionNext::Forward(NodeId(2)));
///
/// // Relay 2 peels the last layer and delivers.
/// let (next, payload) = peel(22, &inner).unwrap();
/// assert_eq!(next, OnionNext::Deliver(NodeId(9)));
/// assert_eq!(payload, b"hello");
/// ```
pub fn wrap(path: &[(NodeId, u64)], final_dst: NodeId, nonce_seed: u64, payload: &[u8]) -> Vec<u8> {
    assert!(!path.is_empty(), "onion path must have at least one hop");
    // Innermost layer: deliver instruction, encrypted for the last relay.
    let (_, last_key) = path[path.len() - 1];
    let mut plaintext = Vec::with_capacity(payload.len() + 9);
    plaintext.push(TAG_DELIVER);
    plaintext.extend_from_slice(&(final_dst.0 as u64).to_be_bytes());
    plaintext.extend_from_slice(payload);
    let mut cell = seal(last_key, nonce_seed ^ path.len() as u64, &plaintext);

    // Wrap outward: each earlier relay gets a forward instruction.
    for i in (0..path.len() - 1).rev() {
        let (_, key) = path[i];
        let (next_relay, _) = path[i + 1];
        let mut plain = Vec::with_capacity(cell.len() + 9);
        plain.push(TAG_FORWARD);
        plain.extend_from_slice(&(next_relay.0 as u64).to_be_bytes());
        plain.extend_from_slice(&cell);
        cell = seal(key, nonce_seed ^ i as u64, &plain);
    }
    cell
}

fn seal(key: u64, nonce: u64, plaintext: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(plaintext.len() + 8);
    out.extend_from_slice(&nonce.to_be_bytes());
    out.extend_from_slice(&xor_keystream(key, nonce, plaintext));
    out
}

/// Peels one layer with the relay's key.
///
/// Returns `None` on malformed cells (too short, unknown tag) — which is
/// also what happens when the wrong key garbles the plaintext.
pub fn peel(key: u64, cell: &[u8]) -> Option<(OnionNext, Vec<u8>)> {
    if cell.len() < 8 + 9 {
        return None;
    }
    let nonce = u64::from_be_bytes(cell[..8].try_into().ok()?);
    let plain = xor_keystream(key, nonce, &cell[8..]);
    let tag = plain[0];
    let node = u64::from_be_bytes(plain[1..9].try_into().ok()?);
    if node > usize::MAX as u64 {
        return None;
    }
    let node = NodeId(node as usize);
    let inner = plain[9..].to_vec();
    match tag {
        TAG_FORWARD => Some((OnionNext::Forward(node), inner)),
        TAG_DELIVER => Some((OnionNext::Deliver(node), inner)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keystream_is_symmetric() {
        let data = b"the payload under test";
        let ct = xor_keystream(99, 7, data);
        assert_ne!(&ct[..], &data[..]);
        assert_eq!(xor_keystream(99, 7, &ct), data);
    }

    #[test]
    fn keystream_depends_on_key_and_nonce() {
        let data = [0u8; 32];
        let a = xor_keystream(1, 1, &data);
        let b = xor_keystream(2, 1, &data);
        let c = xor_keystream(1, 2, &data);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn three_hop_round_trip() {
        let path = [(NodeId(10), 1), (NodeId(20), 2), (NodeId(30), 3)];
        let cell = wrap(&path, NodeId(99), 555, b"payload bytes");
        let (n1, c1) = peel(1, &cell).unwrap();
        assert_eq!(n1, OnionNext::Forward(NodeId(20)));
        let (n2, c2) = peel(2, &c1).unwrap();
        assert_eq!(n2, OnionNext::Forward(NodeId(30)));
        let (n3, payload) = peel(3, &c2).unwrap();
        assert_eq!(n3, OnionNext::Deliver(NodeId(99)));
        assert_eq!(payload, b"payload bytes");
    }

    #[test]
    fn single_hop_wrap() {
        let path = [(NodeId(5), 77)];
        let cell = wrap(&path, NodeId(6), 1, b"x");
        let (n, p) = peel(77, &cell).unwrap();
        assert_eq!(n, OnionNext::Deliver(NodeId(6)));
        assert_eq!(p, b"x");
    }

    #[test]
    fn wrong_key_garbles() {
        let path = [(NodeId(1), 100), (NodeId(2), 200)];
        let cell = wrap(&path, NodeId(3), 9, b"secret");
        // Peeling with the wrong key either fails or yields garbage.
        match peel(999, &cell) {
            None => {}
            Some((next, _)) => {
                assert_ne!(
                    next,
                    OnionNext::Forward(NodeId(2)),
                    "wrong key must not reveal route"
                );
            }
        }
    }

    #[test]
    fn ciphertext_hides_payload() {
        let path = [(NodeId(1), 100)];
        let payload = b"CONTRABAND-MARKER";
        let cell = wrap(&path, NodeId(2), 4, payload);
        // The observable cell must not contain the plaintext substring.
        assert!(!cell.windows(payload.len()).any(|w| w == payload.as_slice()));
    }

    #[test]
    fn malformed_cells_rejected() {
        assert!(peel(1, &[]).is_none());
        assert!(peel(1, &[0; 10]).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_path_panics() {
        wrap(&[], NodeId(0), 0, b"");
    }
}
