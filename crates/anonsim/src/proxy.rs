//! A single-hop anonymizing proxy ("Anonymizer" in the paper's Table 1
//! row 14 and §IV-B).
//!
//! Clients address packets to the proxy; the first 8 payload bytes name
//! the true destination; the proxy re-emits the inner payload with its
//! own address as the source, after applying its [`FlowTransform`]. The
//! proxy keeps a (client, destination) table so replies can be
//! anonymized on the way back too.

use crate::transform::FlowTransform;
use netsim::packet::{FlowId, Packet, Transport};
use netsim::prelude::{Context, NodeId, Protocol, SimDuration};
use std::collections::HashMap;

const FLUSH: u64 = 0;

/// Encodes a proxied payload: the real destination then the inner bytes.
pub fn wrap_for_proxy(final_dst: NodeId, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(final_dst.0 as u64).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes a proxied payload.
pub fn unwrap_for_proxy(bytes: &[u8]) -> Option<(NodeId, &[u8])> {
    if bytes.len() < 8 {
        return None;
    }
    let dst = u64::from_be_bytes(bytes[..8].try_into().ok()?);
    Some((NodeId(dst as usize), &bytes[8..]))
}

/// The anonymizing proxy protocol.
#[derive(Debug)]
pub struct AnonymizerProxy {
    transform: FlowTransform,
    /// destination → client that last addressed it (for reverse flow).
    reverse: HashMap<NodeId, NodeId>,
    pending: HashMap<u64, (NodeId, Vec<u8>, FlowId)>,
    batch: Vec<(NodeId, Vec<u8>, FlowId)>,
    next_token: u64,
    forwarded: u64,
    dropped: u64,
}

impl AnonymizerProxy {
    /// Creates a proxy with the given flow transform.
    pub fn new(transform: FlowTransform) -> Self {
        AnonymizerProxy {
            transform,
            reverse: HashMap::new(),
            pending: HashMap::new(),
            batch: Vec::new(),
            next_token: 1,
            forwarded: 0,
            dropped: 0,
        }
    }

    /// Packets forwarded.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Packets dropped by the loss model.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn dispatch(&mut self, ctx: &mut Context<'_>, to: NodeId, bytes: Vec<u8>, flow: FlowId) {
        if self.transform.sample_drop(ctx) {
            self.dropped += 1;
            return;
        }
        if self.transform.batch_interval.is_some() {
            self.batch.push((to, bytes, flow));
            return;
        }
        let delay = self.transform.sample_jitter(ctx);
        if delay == SimDuration::ZERO {
            self.emit(ctx, to, bytes, flow);
        } else {
            let token = self.next_token;
            self.next_token += 1;
            self.pending.insert(token, (to, bytes, flow));
            ctx.set_timer(delay, token);
        }
    }

    fn emit(&mut self, ctx: &mut Context<'_>, to: NodeId, bytes: Vec<u8>, flow: FlowId) {
        self.forwarded += 1;
        let p = Packet::new(
            ctx.node(),
            to,
            Transport::Tcp {
                src_port: 443,
                dst_port: 443,
                seq: 0,
            },
            flow,
            bytes,
        );
        ctx.send(p);
    }
}

impl Protocol for AnonymizerProxy {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if let Some(interval) = self.transform.batch_interval {
            ctx.set_timer(interval, FLUSH);
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let flow = packet.flow();
        let from = packet.src();
        // Reverse traffic from a known destination takes priority — its
        // payload is opaque application data, not a proxy header.
        if let Some(&client) = self.reverse.get(&from) {
            self.dispatch(ctx, client, packet.payload().to_vec(), flow);
        } else if let Some((dst, inner)) = unwrap_for_proxy(packet.payload()) {
            self.reverse.insert(dst, from);
            self.dispatch(ctx, dst, inner.to_vec(), flow);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token == FLUSH {
            let queued = std::mem::take(&mut self.batch);
            for (to, bytes, flow) in queued {
                self.emit(ctx, to, bytes, flow);
            }
            if let Some(interval) = self.transform.batch_interval {
                ctx.set_timer(interval, FLUSH);
            }
        } else if let Some((to, bytes, flow)) = self.pending.remove(&token) {
            self.emit(ctx, to, bytes, flow);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::prelude::*;

    #[derive(Debug, Default)]
    struct Collector {
        got: Vec<(SimTime, Vec<u8>, NodeId)>,
    }

    impl Protocol for Collector {
        fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
            self.got
                .push((ctx.time(), packet.payload().to_vec(), packet.src()));
        }
    }

    fn triangle() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let client = t.add_node();
        let proxy = t.add_node();
        let server = t.add_node();
        t.connect(client, proxy, SimDuration::from_millis(10));
        t.connect(proxy, server, SimDuration::from_millis(10));
        (t, client, proxy, server)
    }

    fn send_via_proxy(
        sim: &mut Simulator,
        client: NodeId,
        proxy: NodeId,
        server: NodeId,
        body: &[u8],
    ) {
        let p = Packet::new(
            client,
            proxy,
            Transport::Tcp {
                src_port: 443,
                dst_port: 443,
                seq: 0,
            },
            FlowId(1),
            wrap_for_proxy(server, body),
        );
        sim.inject(client, p);
    }

    #[test]
    fn proxy_rewrites_source() {
        let (topo, client, proxy, server) = triangle();
        let mut sim = Simulator::new(topo, 1);
        sim.set_protocol(proxy, AnonymizerProxy::new(FlowTransform::default()));
        sim.set_protocol(server, Collector::default());
        sim.start();
        send_via_proxy(&mut sim, client, proxy, server, b"request");
        sim.run_until(SimTime::from_secs(1));
        let col = sim.take_protocol_as::<Collector>(server).unwrap();
        assert_eq!(col.got.len(), 1);
        assert_eq!(col.got[0].1, b"request");
        // Server sees the proxy, not the client.
        assert_eq!(col.got[0].2, proxy);
    }

    #[test]
    fn reverse_path_reaches_client() {
        let (topo, client, proxy, server) = triangle();
        let mut sim = Simulator::new(topo, 2);
        sim.set_protocol(proxy, AnonymizerProxy::new(FlowTransform::default()));
        sim.set_protocol(client, Collector::default());

        /// Server replies to whatever contacts it.
        #[derive(Debug)]
        struct Responder;
        impl Protocol for Responder {
            fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
                let reply = Packet::new(
                    ctx.node(),
                    packet.src(),
                    Transport::Tcp {
                        src_port: 443,
                        dst_port: 443,
                        seq: 0,
                    },
                    packet.flow(),
                    b"response".to_vec(),
                );
                ctx.send(reply);
            }
        }
        sim.set_protocol(server, Responder);
        sim.start();
        send_via_proxy(&mut sim, client, proxy, server, b"request");
        sim.run_until(SimTime::from_secs(1));
        let col = sim.take_protocol_as::<Collector>(client).unwrap();
        assert_eq!(col.got.len(), 1);
        assert_eq!(col.got[0].1, b"response");
        assert_eq!(col.got[0].2, proxy);
    }

    #[test]
    fn jittered_proxy_delays_but_delivers() {
        let (topo, client, proxy, server) = triangle();
        let mut sim = Simulator::new(topo, 3);
        sim.set_protocol(proxy, AnonymizerProxy::new(FlowTransform::jitter(100, 101)));
        sim.set_protocol(server, Collector::default());
        sim.start();
        send_via_proxy(&mut sim, client, proxy, server, b"x");
        sim.run_until(SimTime::from_secs(1));
        let col = sim.take_protocol_as::<Collector>(server).unwrap();
        assert_eq!(col.got.len(), 1);
        // 10ms + 100ms jitter + 10ms.
        assert_eq!(col.got[0].0, SimTime::from_millis(120));
    }

    #[test]
    fn malformed_proxy_payload_ignored() {
        let (topo, client, proxy, server) = triangle();
        let mut sim = Simulator::new(topo, 4);
        sim.set_protocol(proxy, AnonymizerProxy::new(FlowTransform::default()));
        sim.set_protocol(server, Collector::default());
        sim.start();
        let p = Packet::new(
            client,
            proxy,
            Transport::Tcp {
                src_port: 443,
                dst_port: 443,
                seq: 0,
            },
            FlowId(1),
            vec![1, 2, 3], // too short for a destination header
        );
        sim.inject(client, p);
        sim.run_until(SimTime::from_secs(1));
        let col = sim.take_protocol_as::<Collector>(server).unwrap();
        assert!(col.got.is_empty());
    }

    #[test]
    fn wrap_unwrap_round_trip() {
        let wrapped = wrap_for_proxy(NodeId(77), b"body");
        let (dst, body) = unwrap_for_proxy(&wrapped).unwrap();
        assert_eq!(dst, NodeId(77));
        assert_eq!(body, b"body");
        assert!(unwrap_for_proxy(&[1]).is_none());
    }
}
