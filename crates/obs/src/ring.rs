//! The fixed-capacity, lock-free span ring.
//!
//! # Memory model
//!
//! The ring is a power-of-two array of *slots*. A writer claims a slot
//! with one `fetch_add` on the global head (so concurrent writers never
//! contend on the same slot within a lap), then publishes through a
//! seqlock-style sequence word:
//!
//! 1. raise `seq` to the claim ticket's odd value (write in progress),
//! 2. store the span fields (plain `Relaxed` atomic stores),
//! 3. publish by CAS-ing `seq` to the even value.
//!
//! A reader snapshots `seq`, reads the fields, and re-reads `seq`: any
//! concurrent writer leaves `seq` odd or changed, and the reader
//! discards the slot. The publish CAS (rather than a blind store)
//! closes the lapped-writer window: a writer stalled for a whole lap
//! finds `seq` moved past its ticket and abandons the publish instead
//! of stamping a torn record as valid. Every field is an atomic, so
//! even a discarded read is a well-defined (not undefined) race.
//!
//! The ring keeps the **most recent** `capacity` records; older records
//! are overwritten without blocking. A record is one slot: either a
//! single [`Span`] or a packed queue+engine pair from
//! [`SpanRing::record_pair`]. [`SpanRing::recorded`] counts every
//! record ever accepted, so a reader can tell when history was dropped.

use crate::trace::TraceId;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Which layer of the stack a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Bounded-queue residence: admission to worker pickup (or to the
    /// evicting producer / shutdown drain that answered instead).
    Queue,
    /// Engine evaluation (including the verdict-cache lookup).
    Engine,
    /// Response serialization: verdict payload built and the response
    /// frame handed to the connection writer (wire) or the sink (CLI).
    Serialize,
    /// The terminal record for a request: how it was answered. The
    /// span's `detail` carries the outcome code.
    Respond,
}

impl Stage {
    /// Stable wire/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Engine => "engine",
            Stage::Serialize => "serialize",
            Stage::Respond => "respond",
        }
    }

    fn as_u64(self) -> u64 {
        match self {
            Stage::Queue => 1,
            Stage::Engine => 2,
            Stage::Serialize => 3,
            Stage::Respond => 4,
        }
    }

    fn from_u64(raw: u64) -> Option<Stage> {
        Some(match raw {
            1 => Stage::Queue,
            2 => Stage::Engine,
            3 => Stage::Serialize,
            4 => Stage::Respond,
            _ => return None,
        })
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded span: a trace id, the stage measured, when it started
/// (microseconds on the [`now_us`](crate::now_us) clock), how long it
/// took, and a stage-specific detail word (outcome code, worker index —
/// whatever the recording layer wants joined to the timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The request this span belongs to.
    pub trace: TraceId,
    /// The layer measured.
    pub stage: Stage,
    /// Start time, microseconds since the process trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Stage-specific detail word.
    pub detail: u64,
}

/// One seqlock-guarded slot. `seq == 0` means never written; an odd
/// `seq` means a write is in flight; an even nonzero `seq` means the
/// fields are a published, consistent record.
///
/// A slot holds either a single span (`stage` is a bare stage code) or
/// a **packed pair** from [`SpanRing::record_pair`] (`stage` carries a
/// second code in its high byte; `start2_us`/`dur2_us` hold the second
/// span's timing). Eight words align the slot to exactly one cache
/// line, so every record touches exactly one line — a straddling slot
/// doubles the write traffic and shows up at the service ceiling.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Slot {
    seq: AtomicU64,
    trace: AtomicU64,
    stage: AtomicU64,
    start_us: AtomicU64,
    dur_us: AtomicU64,
    detail: AtomicU64,
    start2_us: AtomicU64,
    dur2_us: AtomicU64,
}

/// Shift for the second stage code in a packed pair's `stage` word.
const PAIR_SHIFT: u64 = 8;

/// A fixed-capacity, lock-free ring of [`Span`]s. See the
/// [module docs](self) for the memory model.
pub struct SpanRing {
    slots: Box<[Slot]>,
    /// Claim counter: total spans accepted since creation.
    head: AtomicU64,
    mask: u64,
    enabled: AtomicBool,
}

impl fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl SpanRing {
    /// Creates a ring holding the most recent `capacity` spans
    /// (rounded up to a power of two, minimum 2). Starts disabled.
    pub fn with_capacity(capacity: usize) -> SpanRing {
        let capacity = capacity.max(2).next_power_of_two();
        SpanRing {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            head: AtomicU64::new(0),
            mask: capacity as u64 - 1,
            enabled: AtomicBool::new(false),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Turns recording on or off. Disabled recording costs one
    /// `Relaxed` load and a branch.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records accepted since creation (including any already
    /// overwritten); a packed pair counts once. `recorded() >
    /// capacity()` means history was lost.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one span. Lock-free; silently drops when disabled.
    pub fn record(&self, span: Span) {
        if !self.is_enabled() {
            return;
        }
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        self.write_slot(ticket, span);
    }

    /// Records two spans of the same trace as a **packed pair** in a
    /// single slot — the per-request fast path for layers that emit a
    /// fixed pair (queue + engine). One claim, one seqlock cycle, and
    /// one cache line instead of two of each: at the cached service
    /// ceiling this is the difference between tracing costing ~5% and
    /// ~3% of throughput. The pair shares `a`'s trace id and detail
    /// word (`b.trace`/`b.detail` are ignored); readers see two
    /// ordinary [`Span`]s.
    pub fn record_pair(&self, a: Span, b: Span) {
        if !self.is_enabled() {
            return;
        }
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        self.write_with(ticket, |slot| {
            slot.trace.store(a.trace.as_u64(), Ordering::Relaxed);
            slot.stage.store(
                a.stage.as_u64() | (b.stage.as_u64() << PAIR_SHIFT),
                Ordering::Relaxed,
            );
            slot.start_us.store(a.start_us, Ordering::Relaxed);
            slot.dur_us.store(a.dur_us, Ordering::Relaxed);
            slot.detail.store(a.detail, Ordering::Relaxed);
            slot.start2_us.store(b.start_us, Ordering::Relaxed);
            slot.dur2_us.store(b.dur_us, Ordering::Relaxed);
        });
    }

    /// Writes `span` into the slot `ticket` claims, with the seqlock
    /// publish protocol from the [module docs](self).
    fn write_slot(&self, ticket: u64, span: Span) {
        self.write_with(ticket, |slot| {
            slot.trace.store(span.trace.as_u64(), Ordering::Relaxed);
            slot.stage.store(span.stage.as_u64(), Ordering::Relaxed);
            slot.start_us.store(span.start_us, Ordering::Relaxed);
            slot.dur_us.store(span.dur_us, Ordering::Relaxed);
            slot.detail.store(span.detail, Ordering::Relaxed);
        });
    }

    /// Runs the seqlock write protocol around `fill` on the slot
    /// `ticket` claims.
    fn write_with(&self, ticket: u64, fill: impl FnOnce(&Slot)) {
        let slot = &self.slots[(ticket & self.mask) as usize];
        // Lap-aware seqlock values: this write's in-progress marker and
        // publish value are unique to the ticket, so a reader (or a
        // stalled writer from a previous lap) can always tell whether
        // the slot moved on underneath it.
        let lap = ticket >> self.mask.count_ones();
        let writing = lap * 2 + 1;
        let published = lap * 2 + 2;
        if self.slot_begin(slot, writing).is_err() {
            // Lapped before we started: a newer write owns the slot.
            return;
        }
        fill(slot);
        // Publish only if nobody newer took the slot while we wrote.
        let _ = slot
            .seq
            .compare_exchange(writing, published, Ordering::Release, Ordering::Relaxed);
    }

    /// Raises `seq` to `writing` unless the slot already moved past it.
    fn slot_begin(&self, slot: &Slot, writing: u64) -> Result<(), ()> {
        let prev = slot.seq.fetch_max(writing, Ordering::AcqRel);
        if prev > writing {
            return Err(());
        }
        Ok(())
    }

    /// Convenience: records a span that started at `start_us` and ends
    /// now, under `trace`/`stage` with a detail word.
    pub fn record_closed(&self, trace: TraceId, stage: Stage, start_us: u64, detail: u64) {
        if !self.is_enabled() {
            return;
        }
        self.record(Span {
            trace,
            stage,
            start_us,
            dur_us: crate::now_us().saturating_sub(start_us),
            detail,
        });
    }

    /// A consistent copy of every published span currently resident,
    /// ordered by start time (ties broken by trace id, then stage).
    /// Runs concurrently with writers; spans being overwritten during
    /// the scan are simply skipped.
    pub fn snapshot(&self) -> Vec<Span> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 || seq % 2 == 1 {
                continue;
            }
            let trace = slot.trace.load(Ordering::Relaxed);
            let stage_word = slot.stage.load(Ordering::Relaxed);
            let start_us = slot.start_us.load(Ordering::Relaxed);
            let dur_us = slot.dur_us.load(Ordering::Relaxed);
            let detail = slot.detail.load(Ordering::Relaxed);
            let start2_us = slot.start2_us.load(Ordering::Relaxed);
            let dur2_us = slot.dur2_us.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != seq {
                continue; // torn: a writer raced the read
            }
            let trace = TraceId::from_u64(trace);
            let Some(stage) = Stage::from_u64(stage_word & ((1 << PAIR_SHIFT) - 1)) else {
                continue;
            };
            out.push(Span {
                trace,
                stage,
                start_us,
                dur_us,
                detail,
            });
            // A packed pair carries its second span in the high fields.
            if let Some(stage2) = Stage::from_u64(stage_word >> PAIR_SHIFT) {
                out.push(Span {
                    trace,
                    stage: stage2,
                    start_us: start2_us,
                    dur_us: dur2_us,
                    detail,
                });
            }
        }
        out.sort_by_key(|s| (s.start_us, s.trace, s.stage));
        out
    }

    /// Every resident span belonging to `trace`, in start order.
    pub fn spans_for(&self, trace: TraceId) -> Vec<Span> {
        let mut out: Vec<Span> = self
            .snapshot()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect();
        out.sort_by_key(|s| (s.start_us, s.stage));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::now_us;

    fn span(trace: u64, stage: Stage, start: u64) -> Span {
        Span {
            trace: TraceId::from_u64(trace),
            stage,
            start_us: start,
            dur_us: 5,
            detail: 0,
        }
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let ring = SpanRing::with_capacity(8);
        ring.record(span(1, Stage::Queue, 10));
        assert_eq!(ring.recorded(), 0);
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(SpanRing::with_capacity(0).capacity(), 2);
        assert_eq!(SpanRing::with_capacity(5).capacity(), 8);
        assert_eq!(SpanRing::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn records_and_reads_back_in_start_order() {
        let ring = SpanRing::with_capacity(8);
        ring.set_enabled(true);
        ring.record(span(2, Stage::Engine, 30));
        ring.record(span(1, Stage::Queue, 10));
        ring.record(span(1, Stage::Engine, 20));
        let all = ring.snapshot();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].start_us, 10);
        assert_eq!(all[2].start_us, 30);
        let chain = ring.spans_for(TraceId::from_u64(1));
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].stage, Stage::Queue);
        assert_eq!(chain[1].stage, Stage::Engine);
    }

    #[test]
    fn overwrites_oldest_at_capacity() {
        let ring = SpanRing::with_capacity(4);
        ring.set_enabled(true);
        for i in 0..10u64 {
            ring.record(span(i + 1, Stage::Queue, i));
        }
        assert_eq!(ring.recorded(), 10);
        let resident = ring.snapshot();
        assert_eq!(resident.len(), 4);
        // Only the newest four survive.
        let starts: Vec<u64> = resident.iter().map(|s| s.start_us).collect();
        assert_eq!(starts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn record_closed_measures_a_nonnegative_duration() {
        let ring = SpanRing::with_capacity(4);
        ring.set_enabled(true);
        let start = now_us();
        ring.record_closed(TraceId::from_u64(9), Stage::Serialize, start, 3);
        let spans = ring.spans_for(TraceId::from_u64(9));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].detail, 3);
        assert!(spans[0].start_us == start);
    }

    #[test]
    fn stage_names_round_trip() {
        for stage in [
            Stage::Queue,
            Stage::Engine,
            Stage::Serialize,
            Stage::Respond,
        ] {
            assert_eq!(Stage::from_u64(stage.as_u64()), Some(stage));
            assert!(!stage.name().is_empty());
            assert_eq!(stage.to_string(), stage.name());
        }
        assert_eq!(Stage::from_u64(0), None);
        assert_eq!(Stage::from_u64(99), None);
    }

    #[test]
    fn packed_pair_occupies_one_slot_and_reads_back_as_two_spans() {
        let ring = SpanRing::with_capacity(2);
        ring.set_enabled(true);
        ring.record_pair(
            Span {
                trace: TraceId::from_u64(7),
                stage: Stage::Queue,
                start_us: 100,
                dur_us: 40,
                detail: 3,
            },
            Span {
                trace: TraceId::from_u64(7),
                stage: Stage::Engine,
                start_us: 140,
                dur_us: 9,
                detail: 3,
            },
        );
        assert_eq!(ring.recorded(), 1, "a pair claims a single slot");
        let chain = ring.spans_for(TraceId::from_u64(7));
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].stage, Stage::Queue);
        assert_eq!((chain[0].start_us, chain[0].dur_us), (100, 40));
        assert_eq!(chain[1].stage, Stage::Engine);
        assert_eq!((chain[1].start_us, chain[1].dur_us), (140, 9));
        assert_eq!(chain[1].detail, 3, "the pair shares one detail word");
    }

    /// Hammer the ring from many writers while a reader snapshots: every
    /// record a snapshot returns must be one a writer actually wrote
    /// (internally consistent), never a torn mix.
    #[test]
    fn concurrent_writers_never_publish_torn_records() {
        let ring = SpanRing::with_capacity(64);
        ring.set_enabled(true);
        const WRITERS: u64 = 4;
        const PER: u64 = 20_000;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..PER {
                        // Every field derives from (w, i): a consistent
                        // record satisfies the invariants checked below.
                        let v = w * PER + i;
                        ring.record(Span {
                            trace: TraceId::from_u64(v + 1),
                            stage: Stage::Queue,
                            start_us: v * 3,
                            dur_us: v * 7,
                            detail: v,
                        });
                    }
                });
            }
            let ring = &ring;
            scope.spawn(move || {
                for _ in 0..200 {
                    for s in ring.snapshot() {
                        let v = s.detail;
                        assert_eq!(s.trace.as_u64(), v + 1, "torn trace/detail pair");
                        assert_eq!(s.start_us, v * 3, "torn start/detail pair");
                        assert_eq!(s.dur_us, v * 7, "torn dur/detail pair");
                    }
                }
            });
        });
        assert_eq!(ring.recorded(), WRITERS * PER);
    }
}
