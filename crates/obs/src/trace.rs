//! Trace identifiers: one per request, minted at the edge.
//!
//! A [`TraceId`] is minted exactly once, where a request first enters
//! the stack — the wire server's frame decoder, or the CLI's batch-row
//! loop — and then *propagated* (never re-minted) through queue
//! admission, worker pickup, engine evaluation, and response
//! serialization. Everything recorded downstream (spans, provenance
//! records, response frames, `--explain` lines) carries the same id,
//! which is the join key for the whole chain.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide mint counter. Starts at 1 so `TraceId(0)` can mean
/// "untraced" forever.
static NEXT: AtomicU64 = AtomicU64::new(1);

/// A per-request trace identifier. `TraceId::UNTRACED` (zero) marks a
/// request nobody is tracing; minted ids are unique within the process
/// and strictly increasing in mint order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TraceId(u64);

impl TraceId {
    /// The null id: a request without a trace.
    pub const UNTRACED: TraceId = TraceId(0);

    /// Mints a fresh, process-unique id.
    pub fn mint() -> TraceId {
        TraceId(NEXT.fetch_add(1, Ordering::Relaxed))
    }

    /// Reconstructs an id from its wire representation (0 = untraced).
    pub fn from_u64(raw: u64) -> TraceId {
        TraceId(raw)
    }

    /// The raw value, for wire frames and JSON sinks.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Whether this is a real (minted) id.
    pub fn is_traced(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_unique_and_increasing() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert!(b > a);
        assert!(a.is_traced() && b.is_traced());
        assert_ne!(a, b);
    }

    #[test]
    fn untraced_is_zero_and_round_trips() {
        assert!(!TraceId::UNTRACED.is_traced());
        assert_eq!(TraceId::from_u64(0), TraceId::UNTRACED);
        let id = TraceId::mint();
        assert_eq!(TraceId::from_u64(id.as_u64()), id);
    }

    #[test]
    fn minting_is_race_free_across_threads() {
        use std::collections::HashSet;
        let ids: Vec<TraceId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| (0..1000).map(|_| TraceId::mint()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let distinct: HashSet<_> = ids.iter().copied().collect();
        assert_eq!(distinct.len(), ids.len(), "a trace id was minted twice");
    }

    #[test]
    fn display_is_the_raw_number() {
        assert_eq!(TraceId::from_u64(42).to_string(), "42");
    }
}
