//! # obs — end-to-end decision tracing for the serving stack
//!
//! A dependency-free, lock-free observability layer: every request that
//! enters the stack (a wire frame, a CLI batch row, a direct service
//! submission) is minted a [`TraceId`], and each layer it crosses
//! records a [`Span`] into a fixed-capacity atomic ring buffer — queue
//! admission-to-pickup, engine evaluation, response serialization. The
//! spans for one trace id reconstruct *where the time went* for that
//! exact request, and join against the per-verdict provenance record
//! the `forensic-law` engine emits under the same id.
//!
//! Design constraints, in order:
//!
//! 1. **No locks on the hot path.** Recording a span is one
//!    `fetch_add` to claim a slot plus a handful of `Relaxed` atomic
//!    stores guarded by a seqlock-style sequence word. Writers never
//!    wait for readers or for each other; readers never block writers.
//! 2. **Fixed memory.** The ring holds the last `capacity` spans and
//!    silently overwrites the oldest — tracing a 390k req/s service
//!    must not grow the heap.
//! 3. **Cheap when idle.** A disabled log costs one `Relaxed` load and
//!    a branch per call site; the `trace_overhead` bench driver pins
//!    the *enabled*-but-unread cost below 5 % of the cached service
//!    ceiling.
//!
//! ```
//! use obs::{SpanRing, Stage, TraceId};
//!
//! let ring = SpanRing::with_capacity(64);
//! ring.set_enabled(true);
//! let trace = TraceId::mint();
//! let start = obs::now_us();
//! // ... do the work ...
//! ring.record_closed(trace, Stage::Engine, start, 0);
//! let spans = ring.spans_for(trace);
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].stage, Stage::Engine);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ring;
pub mod trace;

pub use ring::{Span, SpanRing, Stage};
pub use trace::TraceId;

use std::sync::OnceLock;
use std::time::Instant;

/// Capacity of the process-wide ring returned by [`global`].
///
/// 1024 slots × one cache line each = 64 KiB: recent-enough history
/// to join any in-flight response to its span chain, small enough to
/// stay cache-resident next to the verdict cache — a ring sized in
/// megabytes evicts the very hot path it is measuring, which costs
/// more at the service ceiling than all the ring's atomics combined.
pub const GLOBAL_CAPACITY: usize = 1 << 10;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process-wide trace epoch (the first call to
/// any `obs` clock or ring function). Monotonic; all span timestamps
/// share this origin so spans from different threads order correctly.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// Converts an [`Instant`] a caller already holds into the
/// [`now_us`] timebase — pure arithmetic, no clock read. Hot paths that
/// capture `Instant`s for their own metrics reuse them for span
/// timestamps through this, so enabling tracing adds **zero** extra
/// clock reads per request. Instants from before the epoch (possible
/// only for the very first requests of a process) saturate to 0.
pub fn us_since_epoch(at: Instant) -> u64 {
    dur_us(at.saturating_duration_since(epoch()))
}

/// A [`Duration`](std::time::Duration) in whole microseconds, in `u64`
/// arithmetic only — `Duration::as_micros` divides in `u128`, which is
/// real money on the per-request tracing budget.
pub fn dur_us(d: std::time::Duration) -> u64 {
    d.as_secs()
        .saturating_mul(1_000_000)
        .saturating_add(u64::from(d.subsec_micros()))
}

/// The process-wide span log every layer records into. Starts
/// **disabled**; entry points (the CLI, the wire server, tests, the
/// bench drivers) turn it on with [`SpanRing::set_enabled`].
pub fn global() -> &'static SpanRing {
    static GLOBAL: OnceLock<SpanRing> = OnceLock::new();
    GLOBAL.get_or_init(|| SpanRing::with_capacity(GLOBAL_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }

    #[test]
    fn global_ring_is_shared_and_starts_usable() {
        let ring = global();
        ring.set_enabled(true);
        let trace = TraceId::mint();
        ring.record_closed(trace, Stage::Queue, now_us(), 7);
        let spans = ring.spans_for(trace);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].detail, 7);
    }
}
