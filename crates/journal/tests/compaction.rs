//! Compaction torture and equivalence: the generation swap must be
//! atomic under SIGKILL at any byte, and a compacted journal must be
//! semantically identical to the original under latest-wins.
//!
//! Three layers, mirroring the crash-recovery gauntlet's design:
//!
//! 1. **Equivalence property** — seeded journals with a small retention
//!    key space are compacted; the key→verdict map of the survivors
//!    must equal the latest-wins map of the original, survivors must be
//!    renumbered contiguously from 1 in original order, and the
//!    compacted directory must still be a live, appendable journal.
//! 2. **Crash torture** — this binary re-execs itself as a child
//!    (filtered to [`compact_child`]) that compacts a baseline journal;
//!    the parent crashes it at every named protocol point
//!    (`LXJ_COMPACT_CRASH_POINT` deterministic aborts) and at randomized
//!    SIGKILL times in between, then asserts the recovered directory is
//!    **byte-identical to the old generation or the new one** — never a
//!    splice, never an error. 100+ runs by default
//!    (`LXJ_COMPACT_TORTURE_RUNS` tunes it down for sanitizer runs).
//! 3. **Swap-state discipline** — while a committed manifest is
//!    pending, `JournalReader::open` must refuse; `Journal::open` must
//!    recover and proceed. (Manifest *corruption* coverage lives in
//!    `corruption_fuzz.rs`.)

use journal::compact::{self, Retention, SwapRecovery};
use journal::{read_all, Journal, JournalConfig, Mode, Record, RecordData, SyncPolicy};
use obs::TraceId;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

const DIR_ENV: &str = "LXJ_COMPACT_TORTURE_DIR";
const RUNS_ENV: &str = "LXJ_COMPACT_TORTURE_RUNS";
const CRASH_ENV: &str = "LXJ_COMPACT_CRASH_POINT";

/// Tiny segments so both generations span many files and the swap has
/// many renames to crash between.
fn torture_config() -> JournalConfig {
    JournalConfig {
        segment_bytes: 4096,
        queue_depth: 64,
        sync: SyncPolicy::GroupCommit,
    }
}

/// The deterministic record for `seq`. The retention key (and the
/// drop/keep classification) is derivable from the record bytes alone,
/// so parent, child, and classifier all agree without shared state.
fn payload(seq: u64) -> RecordData {
    let key = seq.wrapping_mul(2_654_435_761) % 37;
    let status = match seq % 9 {
        0 => 3, // load-shed: classifier drops it
        1 => 4, // unclassifiable: classifier keeps it
        _ => 0, // ok: competes under `key`, latest wins
    };
    RecordData {
        trace: TraceId::from_u64(seq ^ 0xC0FF_EE00),
        at_us: 1_700_000_000_000_000 + seq * 613,
        status,
        request: format!(
            "key={key};seq={seq};pad={}",
            "y".repeat((seq % 53) as usize)
        )
        .into_bytes(),
        verdict: format!("verdict-{key}-at-{seq}").into_bytes(),
    }
}

/// The retention policy both the child and the equivalence test use.
fn classify(record: &Record) -> Retention {
    match record.status {
        3 => Retention::Drop,
        4 => Retention::Keep,
        _ => {
            let text = String::from_utf8_lossy(&record.request);
            let key = text
                .split(';')
                .find_map(|part| part.strip_prefix("key="))
                .expect("payload carries its key");
            Retention::Supersede(key.as_bytes().to_vec())
        }
    }
}

/// Independently computes what compaction must produce: survivors in
/// original order, renumbered from 1.
fn expected_survivors(records: &[Record]) -> Vec<Record> {
    let mut latest: HashMap<Vec<u8>, u64> = HashMap::new();
    for record in records {
        if let Retention::Supersede(key) = classify(record) {
            latest.insert(key, record.seq);
        }
    }
    let mut out = Vec::new();
    for record in records {
        let survives = match classify(record) {
            Retention::Keep => true,
            Retention::Drop => false,
            Retention::Supersede(key) => latest[&key] == record.seq,
        };
        if survives {
            let mut renumbered = record.clone();
            renumbered.seq = out.len() as u64 + 1;
            out.push(renumbered);
        }
    }
    out
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn temp_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lxj-compact-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp base");
    dir
}

fn build_journal(dir: &Path, n: u64) {
    let (journal, recovery) = Journal::open(dir, torture_config()).expect("open");
    assert_eq!(recovery.next_seq, 1);
    for seq in 1..=n {
        assert_eq!(journal.append(payload(seq)).expect("append"), seq);
    }
    journal.close().expect("close");
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("copy target");
    for entry in std::fs::read_dir(from).expect("list source") {
        let entry = entry.expect("entry");
        std::fs::copy(entry.path(), to.join(entry.file_name())).expect("copy file");
    }
}

/// Latest-wins key→verdict projection of a record list (ok records
/// only — the map the compacted journal must preserve exactly).
fn verdict_map(records: &[Record]) -> HashMap<Vec<u8>, Vec<u8>> {
    let mut map = HashMap::new();
    for record in records {
        if let Retention::Supersede(key) = classify(record) {
            map.insert(key, record.verdict.clone());
        }
    }
    map
}

/// Equivalence: compaction preserves the latest-wins verdict map, keeps
/// survivors in order renumbered from 1, leaves a live journal, and is
/// idempotent.
#[test]
fn compaction_preserves_latest_wins_verdict_map() {
    if std::env::var(DIR_ENV).is_ok() {
        return; // torture child process: only compact_child acts
    }
    let base = temp_base("equiv");
    let mut rng = 0x00E9_01D4_2012_u64;
    for round in 0..6u32 {
        let n = 200 + splitmix(&mut rng) % 1000;
        let dir = base.join(format!("round-{round}"));
        build_journal(&dir, n);
        let (original, _) = read_all(&dir, Mode::Strict).expect("clean original");
        let want = expected_survivors(&original);

        let report = compact::compact(&dir, torture_config(), classify)
            .unwrap_or_else(|e| panic!("round {round}: compact: {e}"));
        assert_eq!(report.prior, SwapRecovery::Clean, "round {round}");
        assert_eq!(report.input_records, n, "round {round}");
        assert_eq!(report.surviving_records, want.len() as u64, "round {round}");
        assert_eq!(
            report.input_records,
            report.surviving_records + report.superseded + report.discarded,
            "round {round}: report does not account for every record"
        );
        assert!(
            report.bytes_after < report.bytes_before,
            "round {round}: a heavily superseding workload must shrink \
             ({} -> {} bytes)",
            report.bytes_before,
            report.bytes_after
        );

        let (compacted, trunc) = read_all(&dir, Mode::Strict).expect("clean compacted");
        assert!(trunc.is_none(), "round {round}");
        assert_eq!(compacted, want, "round {round}: survivors diverge");
        assert_eq!(
            verdict_map(&compacted),
            verdict_map(&original),
            "round {round}: latest-wins verdict map not preserved"
        );

        // Still a live journal: reopen resumes after the last survivor.
        let (journal, recovery) = Journal::open(&dir, torture_config()).expect("reopen");
        assert_eq!(recovery.next_seq, want.len() as u64 + 1, "round {round}");
        journal
            .append_durable(payload(recovery.next_seq))
            .expect("live append");
        journal.close().expect("close");

        // Idempotence: compacting the compacted journal drops only the
        // records the policy would drop from any journal of this shape.
        let again = compact::compact(&dir, torture_config(), classify)
            .unwrap_or_else(|e| panic!("round {round}: recompact: {e}"));
        assert_eq!(again.prior, SwapRecovery::Clean, "round {round}");
        read_all(&dir, Mode::Strict).expect("clean after recompact");
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// The child half of the torture gauntlet: compacts the directory the
/// parent names, honoring whatever crash point the parent injected.
/// A no-op pass in ordinary test runs.
#[test]
fn compact_child() {
    let Ok(dir) = std::env::var(DIR_ENV) else {
        return;
    };
    compact::compact(Path::new(&dir), torture_config(), classify).expect("child compact");
}

fn spawn_child(dir: &Path, crash_point: Option<&str>) -> std::process::Child {
    let mut cmd = Command::new(std::env::current_exe().expect("own path"));
    cmd.arg("compact_child")
        .arg("--exact")
        .env(DIR_ENV, dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    match crash_point {
        Some(point) => cmd.env(CRASH_ENV, point),
        None => cmd.env_remove(CRASH_ENV),
    };
    cmd.spawn().expect("spawn compact child")
}

fn runs_from_env() -> u64 {
    std::env::var(RUNS_ENV)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100)
}

/// The gauntlet: kill a compaction at every named protocol point and at
/// randomized SIGKILL times, then prove the directory recovers to
/// exactly the old or exactly the new generation.
#[test]
fn compaction_crash_gauntlet_recovers_old_or_new_never_a_splice() {
    if std::env::var(DIR_ENV).is_ok() {
        return; // we *are* a torture child
    }
    let base = temp_base("torture");
    let baseline = base.join("baseline");
    build_journal(&baseline, 900);
    let (original, _) = read_all(&baseline, Mode::Strict).expect("clean baseline");
    let want = expected_survivors(&original);

    let mut rng = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .subsec_nanos() as u64
        ^ (u64::from(std::process::id()) << 32);
    let runs = runs_from_env();
    println!("compaction torture seed {rng:#018x}, {runs} runs");

    // Deterministic protocol points guarantee both outcomes are
    // exercised; the randomized kills explore every byte in between.
    const POINTS: [&str; 4] = [
        "before-manifest",
        "after-manifest",
        "mid-swap",
        "before-cleanup",
    ];
    let (mut saw_old, mut saw_new) = (0u64, 0u64);
    for run in 0..runs {
        let dir = base.join(format!("run-{run}"));
        copy_dir(&baseline, &dir);

        let point = (run as usize) < POINTS.len() * 3;
        if point {
            let point = POINTS[(run as usize) % POINTS.len()];
            let mut child = spawn_child(&dir, Some(point));
            let status = child.wait().expect("child wait");
            assert!(
                !status.success(),
                "run {run}: child was told to crash at {point} but exited cleanly"
            );
        } else {
            let mut child = spawn_child(&dir, None);
            let micros = splitmix(&mut rng) % 25_000;
            std::thread::sleep(Duration::from_micros(micros));
            let _ = child.kill();
            let _ = child.wait();
        }

        // Recovery, then zero-tolerance verification: the directory is
        // the old generation or the new one, byte for byte.
        compact::recover(&dir).unwrap_or_else(|e| panic!("run {run}: recover: {e}"));
        let (records, trunc) = read_all(&dir, Mode::Strict)
            .unwrap_or_else(|e| panic!("run {run}: post-recovery strict scan: {e}"));
        assert!(trunc.is_none(), "run {run}");
        if records == original {
            saw_old += 1;
        } else if records == want {
            saw_new += 1;
        } else {
            panic!(
                "run {run}: spliced recovery — {} records, neither the original {} \
                 nor the compacted {}",
                records.len(),
                original.len(),
                want.len()
            );
        }

        // And the recovered directory is a live journal either way.
        let (journal, recovery) = Journal::open(&dir, torture_config())
            .unwrap_or_else(|e| panic!("run {run}: reopen: {e}"));
        journal
            .append_durable(payload(recovery.next_seq))
            .unwrap_or_else(|e| panic!("run {run}: live append: {e}"));
        journal.close().expect("close");

        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        saw_old > 0 && saw_new > 0,
        "gauntlet must land on both sides of the commit point \
         (old {saw_old}, new {saw_new})"
    );
    let _ = std::fs::remove_dir_all(&base);
}

/// Swap-state discipline: a pending manifest makes the directory
/// unreadable until recovery completes the swap — readers must never
/// see (and never accept) the mid-swap mix of generations.
#[test]
fn pending_swap_blocks_readers_until_recovered() {
    if std::env::var(DIR_ENV).is_ok() {
        return;
    }
    let base = temp_base("pending");
    let dir = base.join("j");
    build_journal(&dir, 300);
    let (original, _) = read_all(&dir, Mode::Strict).expect("clean");
    let want = expected_survivors(&original);

    // Freeze a compaction at the commit point via the injection hook,
    // in a child process (the hook aborts).
    let mut child = spawn_child(&dir, Some("after-manifest"));
    assert!(!child.wait().expect("wait").success());
    assert!(compact::swap_pending(&dir), "manifest must be on disk");

    // Readers refuse in both modes.
    for mode in [Mode::Strict, Mode::Recover] {
        match read_all(&dir, mode) {
            Err(journal::JournalError::Corrupt { reason, .. }) => {
                assert!(reason.contains("compaction"), "actionable reason: {reason}");
            }
            other => panic!("pending swap must refuse reads, got {other:?}"),
        }
    }

    // The writer recovers (rolls the committed swap forward) and the
    // directory is then the new generation, readable again.
    let (journal, recovery) = Journal::open(&dir, torture_config()).expect("open recovers");
    assert_eq!(recovery.next_seq, want.len() as u64 + 1);
    journal.close().expect("close");
    assert!(!compact::swap_pending(&dir));
    let (records, _) = read_all(&dir, Mode::Strict).expect("readable after recovery");
    assert_eq!(records, want);
    let _ = std::fs::remove_dir_all(&base);
}
