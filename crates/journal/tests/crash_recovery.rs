//! Crash-recovery torture: kill -9 and `abort()` a child writer process
//! at randomized points mid-commit, then prove recovery.
//!
//! The paper's auditability claim only holds if the journal survives
//! the ugliest failure mode — a process dying with bytes half-written.
//! Each torture run spawns this same test binary as a child (filtered
//! to [`torture_child`]), lets it hammer a fresh journal through the
//! group-commit writer while an acker thread logs every sequence number
//! the durable clock has passed, and then crashes it: half the runs by
//! SIGKILL at a random 0.5–12 ms kill point, half by `std::process::abort()`
//! after a random number of acknowledged records.
//!
//! After each crash the parent asserts the whole contract:
//!
//! 1. recovery yields a **contiguous, checksum-clean prefix** `1..=M`
//!    with every payload byte-identical to the deterministic
//!    `payload(seq)` the child wrote — zero torn records, zero
//!    duplicates, zero reordering;
//! 2. the prefix **contains every acknowledged record** (`M ≥` the
//!    highest seq the child's acker logged before dying);
//! 3. the recovered journal is *live*: one more durable append lands at
//!    `M + 1` and a strict (no-tolerance) rescan of the directory is
//!    clean.
//!
//! Run count defaults to 100 (the acceptance floor) and is tunable via
//! `JOURNAL_TORTURE_RUNS` so the ThreadSanitizer nightly — where every
//! operation is ~20x slower — can run a shorter gauntlet.

use journal::{read_all, Journal, JournalConfig, Mode, RecordData, SyncPolicy};
use obs::TraceId;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

const DIR_ENV: &str = "JOURNAL_TORTURE_DIR";
const ACK_ENV: &str = "JOURNAL_TORTURE_ACK";
const ABORT_ENV: &str = "JOURNAL_TORTURE_ABORT_AFTER";
const RUNS_ENV: &str = "JOURNAL_TORTURE_RUNS";

/// Small segments so every run crosses many rotation boundaries.
fn torture_config() -> JournalConfig {
    JournalConfig {
        segment_bytes: 4096,
        queue_depth: 64,
        sync: SyncPolicy::GroupCommit,
    }
}

/// The deterministic record for `seq`: both sides derive it
/// independently, so the parent can verify payload bytes, not just
/// counts. Sizes vary with `seq` to move the rotation points around.
fn payload(seq: u64) -> RecordData {
    let filler = "x".repeat((seq % 97) as usize);
    RecordData {
        trace: TraceId::from_u64(seq ^ 0x5DEE_CE66),
        at_us: 1_700_000_000_000_000 + seq * 731,
        status: (seq % 6) as u8,
        request: format!("{{\"seq\":{seq},\"actor\":\"law_enforcement\",\"pad\":\"{filler}\"}}")
            .into_bytes(),
        verdict: format!(
            "verdict-{} [band-{}]",
            seq.wrapping_mul(0x9E37_79B9),
            seq % 4
        )
        .into_bytes(),
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The child half: only active when the parent set the env knobs; in a
/// normal test run this is an instant no-op pass.
///
/// An appender thread streams `payload(seq)` records in as fast as the
/// bounded queue allows; an acker thread walks the durable clock in
/// order and logs each acknowledged seq to the ack file *after*
/// `wait_durable` returns — exactly the discipline a server must use
/// before acknowledging a verdict to a client. In abort mode the acker
/// pulls the plug itself after N acknowledgements, which guarantees the
/// crash lands with commits in flight.
#[test]
fn torture_child() {
    let Ok(dir) = std::env::var(DIR_ENV) else {
        return;
    };
    let ack_path = std::env::var(ACK_ENV).expect("ack path set alongside dir");
    let abort_after: Option<u64> = std::env::var(ABORT_ENV)
        .ok()
        .map(|s| s.parse().expect("abort count parses"));

    let (journal, recovery) =
        Journal::open(Path::new(&dir), torture_config()).expect("child journal open");
    let journal = std::sync::Arc::new(journal);
    let start = recovery.next_seq;

    let acker = {
        let journal = std::sync::Arc::clone(&journal);
        let ack_path = ack_path.clone();
        std::thread::spawn(move || {
            let mut ack = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&ack_path)
                .expect("open ack file");
            let mut acked = 0u64;
            for seq in start.. {
                if journal.wait_durable(seq).is_err() {
                    return;
                }
                ack.write_all(format!("{seq}\n").as_bytes())
                    .expect("ack write");
                acked += 1;
                if abort_after == Some(acked) {
                    std::process::abort();
                }
            }
        })
    };

    for seq in start..start + 200_000 {
        let data = payload(seq);
        match journal.append(data) {
            Ok(got) => assert_eq!(got, seq, "writer assigned an unexpected seq"),
            Err(_) => break,
        }
    }
    // Survive until the parent kills us (or the acker aborts).
    let _ = acker.join();
    std::thread::sleep(Duration::from_secs(60));
}

/// Parses the child's ack log. The final line may be torn by the kill;
/// anything before it must be the contiguous run `1..=max`.
fn read_acks(path: &Path) -> u64 {
    let Ok(raw) = std::fs::read_to_string(path) else {
        return 0; // killed before the first ack
    };
    let mut max = 0u64;
    let mut lines = raw.lines().peekable();
    while let Some(line) = lines.next() {
        match line.parse::<u64>() {
            Ok(seq) => {
                assert_eq!(seq, max + 1, "ack log has a gap or duplicate");
                max = seq;
            }
            Err(_) => {
                assert!(
                    lines.peek().is_none(),
                    "non-final ack line unparsable: {line:?}"
                );
            }
        }
    }
    max
}

fn spawn_child(dir: &Path, ack: &Path, abort_after: Option<u64>) -> std::process::Child {
    let mut cmd = Command::new(std::env::current_exe().expect("own path"));
    cmd.arg("torture_child")
        .arg("--exact")
        .env(DIR_ENV, dir)
        .env(ACK_ENV, ack)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    match abort_after {
        Some(n) => cmd.env(ABORT_ENV, n.to_string()),
        None => cmd.env_remove(ABORT_ENV),
    };
    cmd.spawn().expect("spawn torture child")
}

/// Waits for a child that is expected to die on its own (abort mode),
/// with a SIGKILL backstop so a misbehaving child cannot hang the
/// suite.
fn wait_or_kill(child: &mut std::process::Child, budget: Duration) {
    let start = std::time::Instant::now();
    loop {
        if child.try_wait().expect("try_wait").is_some() {
            return;
        }
        if start.elapsed() > budget {
            let _ = child.kill();
            let _ = child.wait();
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// One crash + recovery + verification cycle. Returns the number of
/// records the crash left behind, so the driver can report coverage.
fn torture_once(base: &Path, run: u64, rng: &mut u64) -> u64 {
    let dir = base.join(format!("run-{run}"));
    let ack = base.join(format!("ack-{run}"));
    let abort_mode = run % 2 == 1;
    let abort_after = abort_mode.then(|| 1 + splitmix(rng) % 400);

    let mut child = spawn_child(&dir, &ack, abort_after);
    if abort_mode {
        wait_or_kill(&mut child, Duration::from_secs(20));
    } else {
        // A randomized kill point: early enough to catch the first
        // batches, late enough to cross several segment rotations.
        let micros = 500 + splitmix(rng) % 12_000;
        std::thread::sleep(Duration::from_micros(micros));
        let _ = child.kill();
        let _ = child.wait();
    }

    let max_acked = read_acks(&ack);

    // Recovery: open must absorb whatever the crash left and come back
    // writable at the next sequence number.
    let (journal, recovery) = Journal::open(&dir, torture_config())
        .unwrap_or_else(|e| panic!("run {run}: recovery failed: {e}"));
    let recovered = recovery.next_seq - 1;
    assert_eq!(
        recovery.records, recovered,
        "run {run}: record count disagrees with next_seq"
    );
    assert!(
        recovered >= max_acked,
        "run {run}: recovery lost acknowledged records \
         (recovered through seq {recovered}, but seq {max_acked} was acked)"
    );

    // The recovered journal must be live: append on top of the prefix.
    let appended = journal
        .append_durable(payload(recovery.next_seq))
        .unwrap_or_else(|e| panic!("run {run}: post-recovery append failed: {e}"));
    assert_eq!(appended, recovery.next_seq);
    journal
        .close()
        .unwrap_or_else(|e| panic!("run {run}: close failed: {e}"));

    // Strict rescan: zero tolerance now that recovery has run. Every
    // record must be the exact bytes the child (or we) wrote.
    let (records, truncation) =
        read_all(&dir, Mode::Strict).unwrap_or_else(|e| panic!("run {run}: strict rescan: {e}"));
    assert!(truncation.is_none(), "strict mode never truncates");
    assert_eq!(records.len() as u64, recovered + 1);
    for (i, record) in records.iter().enumerate() {
        let seq = i as u64 + 1;
        let want = payload(seq);
        assert_eq!(record.seq, seq, "run {run}: sequence gap or duplicate");
        assert_eq!(
            record.trace, want.trace,
            "run {run}: trace mismatch at {seq}"
        );
        assert_eq!(
            record.status, want.status,
            "run {run}: status mismatch at {seq}"
        );
        assert_eq!(
            record.request, want.request,
            "run {run}: request bytes at {seq}"
        );
        assert_eq!(
            record.verdict, want.verdict,
            "run {run}: verdict bytes at {seq}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&ack);
    recovered
}

fn runs_from_env() -> u64 {
    std::env::var(RUNS_ENV)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100)
}

/// The gauntlet: ≥100 randomized crash points (SIGKILL and `abort()`
/// alternating), each followed by full recovery verification.
#[test]
fn torture_randomized_crash_points_recover_to_acked_prefix() {
    if std::env::var(DIR_ENV).is_ok() {
        return; // we *are* a torture child; only torture_child acts
    }
    let base: PathBuf = std::env::temp_dir().join(format!("lxj-torture-{}", std::process::id()));
    std::fs::create_dir_all(&base).expect("torture base dir");

    // Time-mixed seed so CI explores new kill points every run; printed
    // so a failure is reproducible by pinning it.
    let mut rng = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .subsec_nanos() as u64
        ^ (u64::from(std::process::id()) << 32);
    let runs = runs_from_env();
    println!("torture seed {rng:#018x}, {runs} runs");

    let mut nonempty = 0u64;
    for run in 0..runs {
        if torture_once(&base, run, &mut rng) > 0 {
            nonempty += 1;
        }
    }
    // Sanity on coverage: the kill points must actually land mid-write
    // often, not always before the first commit.
    assert!(
        nonempty >= runs / 4,
        "kill points land too early to exercise commits ({nonempty}/{runs} runs had records)"
    );

    let _ = std::fs::remove_dir_all(&base);
}
