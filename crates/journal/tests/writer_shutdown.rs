//! Shutdown races for the group-commit writer, in the style of the
//! service crate's `shutdown_stress`: many short runs, each a fresh
//! journal, racing producers, and a `close()` fired at a phase that
//! varies per run — rather than one long run that always closes at the
//! same place.
//!
//! The invariant under test is the journal's half of "no
//! acknowledged-but-unjournaled verdicts": **every append that returned
//! `Ok` before a graceful close is on disk afterwards** — exactly those
//! records, contiguous, byte-identical — and every append that lost the
//! race to `close()` fails cleanly with `WriterClosed`, never hangs,
//! never half-writes.

use journal::{read_all, Journal, JournalConfig, JournalError, Mode, RecordData, SyncPolicy};
use obs::TraceId;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

const RUNS: usize = 60;
const PRODUCERS: usize = 3;
const PER_PRODUCER: usize = 200;

fn request_for(producer: usize, i: usize) -> Vec<u8> {
    format!("{{\"producer\":{producer},\"i\":{i}}}").into_bytes()
}

/// One racy run: producers append while the main thread closes at a
/// phase that varies with `run`. Returns (accepted map seq → request,
/// rejected count).
fn racy_run(run: usize) -> (HashMap<u64, Vec<u8>>, usize) {
    let dir = std::env::temp_dir().join(format!("lxj-shutdown-{}-{run}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (journal, recovery) = Journal::open(
        &dir,
        JournalConfig {
            // Tiny segments on odd runs so the close races rotation too.
            segment_bytes: if run % 2 == 1 { 512 } else { 64 << 20 },
            queue_depth: 8,
            sync: if run.is_multiple_of(3) {
                SyncPolicy::GroupCommit
            } else {
                SyncPolicy::OnRotate
            },
        },
    )
    .expect("open");
    assert_eq!(recovery.next_seq, 1);

    let accepted: Mutex<HashMap<u64, Vec<u8>>> = Mutex::new(HashMap::new());
    let rejected = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for producer in 0..PRODUCERS {
            let journal = &journal;
            let accepted = &accepted;
            let rejected = &rejected;
            scope.spawn(move || {
                for i in 0..PER_PRODUCER {
                    let request = request_for(producer, i);
                    let data = RecordData {
                        trace: TraceId::from_u64((producer * PER_PRODUCER + i + 1) as u64),
                        at_us: (producer * PER_PRODUCER + i + 1) as u64,
                        status: 0,
                        request: request.clone(),
                        verdict: format!("v-{producer}-{i}").into_bytes(),
                    };
                    match journal.append(data) {
                        Ok(seq) => {
                            let prior = accepted.lock().expect("map").insert(seq, request);
                            assert!(prior.is_none(), "writer assigned seq {seq} twice");
                        }
                        Err(JournalError::WriterClosed) => {
                            rejected.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            // Once closed, closed forever: the next try
                            // must fail the same way.
                            assert!(matches!(
                                journal.append(RecordData {
                                    trace: TraceId::UNTRACED,
                                    at_us: 0,
                                    status: 0,
                                    request: Vec::new(),
                                    verdict: Vec::new(),
                                }),
                                Err(JournalError::WriterClosed)
                            ));
                            return;
                        }
                        Err(other) => panic!("append failed oddly: {other}"),
                    }
                }
            });
        }

        // Close lands at a different phase every run: sometimes before
        // the producers get going, sometimes mid-stream, sometimes after
        // they are done. Two racing closers on every third run — close
        // must be idempotent and both must return only once the writer
        // has fully stopped.
        let journal = &journal;
        std::thread::sleep(Duration::from_micros((run as u64 * 37) % 2500));
        if run.is_multiple_of(3) {
            std::thread::scope(|inner| {
                inner.spawn(|| journal.close().expect("racing close a"));
                inner.spawn(|| journal.close().expect("racing close b"));
            });
        } else {
            journal.close().expect("close");
        }
    });

    let accepted = accepted.into_inner().expect("map");
    let rejected = rejected.load(std::sync::atomic::Ordering::Relaxed);

    // The books: exactly the accepted records are on disk — contiguous,
    // and each one's request bytes are the producer's own.
    let (records, truncation) = read_all(&dir, Mode::Strict).expect("post-close strict scan");
    assert!(truncation.is_none());
    assert_eq!(
        records.len(),
        accepted.len(),
        "run {run}: acknowledged-but-unjournaled (or phantom) records"
    );
    for (i, record) in records.iter().enumerate() {
        let seq = i as u64 + 1;
        assert_eq!(
            record.seq, seq,
            "run {run}: recovered journal not contiguous"
        );
        let want = accepted
            .get(&seq)
            .unwrap_or_else(|| panic!("run {run}: journal holds unacknowledged seq {seq}"));
        assert_eq!(
            &record.request, want,
            "run {run}: request bytes for seq {seq}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    (accepted, rejected)
}

#[test]
fn graceful_close_journals_every_acknowledged_append() {
    let mut total_accepted = 0usize;
    let mut total_rejected = 0usize;
    let mut full_runs = 0usize;
    for run in 0..RUNS {
        let (accepted, rejected) = racy_run(run);
        if accepted.len() == PRODUCERS * PER_PRODUCER {
            full_runs += 1;
        }
        total_accepted += accepted.len();
        total_rejected += rejected;
    }
    // Coverage sanity: the close must land mid-stream often enough that
    // both rejection and full completion actually occur across the
    // sweep (otherwise the race isn't being exercised).
    assert!(total_accepted > 0, "no append ever succeeded");
    assert!(
        total_rejected > 0 || full_runs < RUNS,
        "close never landed mid-stream across {RUNS} runs"
    );
}

/// After a graceful close, reopening resumes at the next sequence
/// number and appends land — close is an orderly handoff, not an end
/// state for the directory.
#[test]
fn closed_journal_reopens_and_resumes() {
    let dir = std::env::temp_dir().join(format!("lxj-reopen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sample = |seq: u64| RecordData {
        trace: TraceId::from_u64(seq),
        at_us: seq * 17,
        status: 0,
        request: format!("req-{seq}").into_bytes(),
        verdict: format!("v-{seq}").into_bytes(),
    };

    let (journal, _) = Journal::open(&dir, JournalConfig::default()).expect("first open");
    for seq in 1..=10u64 {
        assert_eq!(journal.append(sample(seq)).expect("append"), seq);
    }
    journal.close().expect("first close");
    assert!(matches!(
        journal.append(sample(11)),
        Err(JournalError::WriterClosed)
    ));

    let (journal, recovery) = Journal::open(&dir, JournalConfig::default()).expect("reopen");
    assert_eq!(recovery.next_seq, 11);
    assert_eq!(recovery.records, 10);
    assert!(
        recovery.truncation.is_none(),
        "graceful close leaves no tear"
    );
    assert_eq!(journal.append_durable(sample(11)).expect("resume"), 11);
    journal.close().expect("second close");

    let (records, _) = read_all(&dir, Mode::Strict).expect("scan");
    assert_eq!(records.len(), 11);
    let _ = std::fs::remove_dir_all(&dir);
}
