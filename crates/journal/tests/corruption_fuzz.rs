//! Segment-format fuzzing: damage must be *detected*, precisely,
//! without panicking — and the crash model must hold under any
//! interleaving of rotation, crash, and recovery.
//!
//! Mirrors the wire crate's frame edge/fuzz style: build a known-good
//! fixture, then attack it — truncation at every interesting cut point,
//! seeded single-byte flips, spliced/reordered/missing segments — and
//! assert the reader's verdict for each attack class:
//!
//! * **Strict mode** reports every defect as `Corrupt { segment,
//!   offset, reason }` — a precise, actionable error, never a panic,
//!   never a silently mis-parsed record.
//! * **Recover mode** accepts exactly one defect shape (a damaged tail
//!   in the final segment, reported as a truncation with the clean
//!   prefix intact) and hard-errors on everything else — a gap, a
//!   splice, damage in a sealed segment.
//!
//! The property test at the bottom is the sequence-contiguity
//! guarantee from the issue: any interleaving of append-batches,
//! rotations, torn crashes (raw `set_len` at a random offset), and
//! recoveries leaves the journal a contiguous `1..=M` prefix whose
//! payloads match what the writer accepted.

use journal::compact;
use journal::segment::{segment_file_name, HEADER_LEN, PREFIX_LEN, RECORD_FIXED};
use journal::{read_all, Journal, JournalConfig, JournalError, Mode, RecordData, SyncPolicy};
use obs::TraceId;
use std::fs;
use std::path::{Path, PathBuf};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn payload(seq: u64) -> RecordData {
    RecordData {
        trace: TraceId::from_u64(seq + 7),
        at_us: 1_700_000_000_000_000 + seq * 1_000,
        status: (seq % 6) as u8,
        request: format!("{{\"seq\":{seq},\"category\":\"device_forensics\"}}").into_bytes(),
        verdict: format!("ok [{seq}]").into_bytes(),
    }
}

fn temp_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lxj-fuzz-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("fuzz temp dir");
    dir
}

/// Builds a clean journal of `n` records with tiny segments (so the
/// fixture spans several files) and returns its directory.
fn build_fixture(base: &Path, n: u64) -> PathBuf {
    let dir = base.join("clean");
    let (journal, recovery) = Journal::open(
        &dir,
        JournalConfig {
            segment_bytes: 512,
            queue_depth: 32,
            sync: SyncPolicy::Never, // fixture build: durability irrelevant
        },
    )
    .expect("fixture open");
    assert_eq!(recovery.next_seq, 1);
    for seq in 1..=n {
        assert_eq!(journal.append(payload(seq)).expect("fixture append"), seq);
    }
    journal.close().expect("fixture close");
    dir
}

/// Copies the fixture into a scratch dir for one attack.
fn clone_fixture(fixture: &Path, base: &Path, tag: &str) -> PathBuf {
    let dir = base.join(tag);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    for entry in fs::read_dir(fixture).expect("list fixture") {
        let entry = entry.expect("fixture entry");
        fs::copy(entry.path(), dir.join(entry.file_name())).expect("copy segment");
    }
    dir
}

fn segments_sorted(dir: &Path) -> Vec<PathBuf> {
    let mut paths: Vec<_> = fs::read_dir(dir)
        .expect("list dir")
        .map(|e| e.expect("entry").path())
        .collect();
    paths.sort();
    paths
}

fn expect_corrupt(
    result: Result<(Vec<journal::Record>, Option<journal::Truncation>), JournalError>,
    what: &str,
) {
    match result {
        Err(JournalError::Corrupt { offset, reason, .. }) => {
            assert!(!reason.is_empty(), "{what}: reason must be actionable");
            // The offset must point into the file, which every attack
            // here keeps under a few KiB.
            assert!(offset < 1 << 20, "{what}: nonsense offset {offset}");
        }
        Err(other) => panic!("{what}: wrong error class: {other}"),
        Ok((records, trunc)) => panic!(
            "{what}: damage not detected ({} records, truncation {trunc:?})",
            records.len()
        ),
    }
}

/// Truncating the *last* segment at every single byte offset: strict
/// mode must error (except at clean record boundaries); recover mode
/// must yield exactly the records that fully precede the cut.
#[test]
fn truncation_at_every_offset_of_the_last_segment() {
    let base = temp_base("trunc");
    let fixture = build_fixture(&base, 40);
    let last = segments_sorted(&fixture)
        .pop()
        .expect("fixture has segments");
    let clean_len = fs::metadata(&last).expect("len").len();

    // Learn the clean record boundaries of the last segment so we know
    // which cuts are "invisible" (they look like a shorter clean file).
    let (all_records, _) = read_all(&fixture, Mode::Strict).expect("clean fixture");
    let total = all_records.len() as u64;
    let mut boundaries = vec![HEADER_LEN];
    {
        let mut offset = HEADER_LEN;
        let last_name = last.file_name().expect("name").to_str().expect("utf8");
        let base_seq = journal::segment::parse_segment_file_name(last_name).expect("segment name");
        for record in all_records.iter().filter(|r| r.seq >= base_seq) {
            offset +=
                (PREFIX_LEN + RECORD_FIXED + record.request.len() + record.verdict.len()) as u64;
            boundaries.push(offset);
        }
        assert_eq!(offset, clean_len, "boundary math disagrees with the file");
    }

    for cut in 0..clean_len {
        let dir = clone_fixture(&fixture, &base, "scratch");
        let name = last.file_name().expect("name");
        let target = dir.join(name);
        let file = fs::OpenOptions::new()
            .write(true)
            .open(&target)
            .expect("open");
        file.set_len(cut).expect("truncate");
        drop(file);

        let at_boundary = boundaries.contains(&cut);
        let strict = read_all(&dir, Mode::Strict);
        if at_boundary {
            let (records, trunc) = strict.expect("cut at a record boundary is a clean file");
            assert!(trunc.is_none());
            assert!(records.len() as u64 <= total);
        } else {
            expect_corrupt(strict, &format!("strict, cut at {cut}"));
        }

        // Recover mode: always a clean contiguous prefix of records
        // that fully precede the cut, never an error for tail damage.
        let (records, trunc) =
            read_all(&dir, Mode::Recover).unwrap_or_else(|e| panic!("recover, cut at {cut}: {e}"));
        assert_eq!(trunc.is_some(), !at_boundary, "cut at {cut}");
        // Records of the last segment that fully precede the cut; a cut
        // inside the header drops the whole file (zero survivors).
        let survivors = (boundaries.iter().filter(|b| **b <= cut).count() as u64).saturating_sub(1);
        let base_records = total - (boundaries.len() as u64 - 1);
        assert_eq!(
            records.len() as u64,
            base_records + survivors,
            "cut at {cut}: wrong prefix length"
        );
        for (i, record) in records.iter().enumerate() {
            assert_eq!(
                record.seq,
                i as u64 + 1,
                "cut at {cut}: prefix not contiguous"
            );
        }
    }
    let _ = fs::remove_dir_all(&base);
}

/// Seeded single-byte flips across every segment: strict mode always
/// detects; recover mode tolerates only last-segment record damage (as
/// a truncation), and hard-errors on sealed-segment damage.
#[test]
fn single_byte_flips_are_detected_never_mis_parsed() {
    let base = temp_base("flip");
    let fixture = build_fixture(&base, 40);
    let segments = segments_sorted(&fixture);
    assert!(segments.len() >= 3, "fixture should span several segments");
    let mut rng = 0x0001_CDC5_2012_u64;

    for attack in 0..200 {
        let dir = clone_fixture(&fixture, &base, "scratch");
        let victim_index = (splitmix(&mut rng) as usize) % segments.len();
        let name = segments[victim_index].file_name().expect("name");
        let target = dir.join(name);
        let mut bytes = fs::read(&target).expect("read segment");
        let pos = (splitmix(&mut rng) as usize) % bytes.len();
        let bit = 1u8 << (splitmix(&mut rng) % 8);
        bytes[pos] ^= bit;
        fs::write(&target, &bytes).expect("write flipped");

        let what =
            format!("attack {attack}: flip bit {bit:#04x} at {pos} in segment {victim_index}");
        expect_corrupt(read_all(&dir, Mode::Strict), &format!("strict, {what}"));

        let last = victim_index + 1 == segments.len();
        match read_all(&dir, Mode::Recover) {
            Ok((records, trunc)) if last && pos as u64 >= HEADER_LEN => {
                // Tail damage: absorbed as a truncation, prefix intact.
                assert!(trunc.is_some(), "recover, {what}: damage vanished");
                for (i, record) in records.iter().enumerate() {
                    assert_eq!(record.seq, i as u64 + 1, "recover, {what}");
                }
            }
            Ok((_, trunc)) => panic!("recover, {what}: accepted sealed-segment damage ({trunc:?})"),
            Err(JournalError::Corrupt { .. }) => {
                // Header damage or sealed-segment damage: hard error in
                // both modes — exactly the splice/tamper stance.
                assert!(
                    !last || (pos as u64) < HEADER_LEN,
                    "recover, {what}: tail record damage should truncate, not error"
                );
            }
            Err(other) => panic!("recover, {what}: wrong error class: {other}"),
        }
    }
    let _ = fs::remove_dir_all(&base);
}

/// Spliced journals — a deleted middle segment, a renamed (re-based)
/// segment, a duplicated base — are rejected with a contiguity error in
/// both modes. This is the anti-tamper property: you cannot quietly
/// remove or transplant a span of history.
#[test]
fn spliced_segment_chains_are_rejected() {
    let base = temp_base("splice");
    let fixture = build_fixture(&base, 40);
    let segments = segments_sorted(&fixture);
    assert!(segments.len() >= 3);

    // Delete a middle segment → gap between bases.
    let dir = clone_fixture(&fixture, &base, "gap");
    fs::remove_file(dir.join(segments[1].file_name().expect("name"))).expect("remove middle");
    expect_corrupt(
        read_all(&dir, Mode::Strict),
        "strict, missing middle segment",
    );
    expect_corrupt(
        read_all(&dir, Mode::Recover),
        "recover, missing middle segment",
    );

    // Rename a segment to a different base → header/name disagreement.
    let dir = clone_fixture(&fixture, &base, "rebase");
    let from = dir.join(segments[1].file_name().expect("name"));
    fs::rename(&from, dir.join(segment_file_name(9999))).expect("rename");
    expect_corrupt(read_all(&dir, Mode::Strict), "strict, re-based segment");
    expect_corrupt(read_all(&dir, Mode::Recover), "recover, re-based segment");

    // Replace a later segment with a copy of an earlier one (same name,
    // transplanted content) → base mismatch, then seq discontinuity.
    let dir = clone_fixture(&fixture, &base, "transplant");
    fs::copy(
        dir.join(segments[0].file_name().expect("name")),
        dir.join(segments[2].file_name().expect("name")),
    )
    .expect("transplant");
    expect_corrupt(read_all(&dir, Mode::Strict), "strict, transplanted segment");
    expect_corrupt(
        read_all(&dir, Mode::Recover),
        "recover, transplanted segment",
    );

    let _ = fs::remove_dir_all(&base);
}

/// Stages a committed-but-unfinished generation swap by hand: a fresh
/// new generation under `.compact-new/` plus a CRC-valid manifest in
/// the format `compact::recover` commits to. Returns the new
/// generation's expected records.
fn stage_swap(dir: &Path, new_records: u64) -> Vec<journal::Record> {
    let scratch = dir.join(compact::NEW_GEN_DIR);
    let (journal, _) = Journal::open(
        &scratch,
        JournalConfig {
            segment_bytes: 512,
            queue_depth: 32,
            sync: SyncPolicy::Never,
        },
    )
    .expect("scratch open");
    for seq in 1..=new_records {
        journal.append(payload(seq)).expect("scratch append");
    }
    journal.close().expect("scratch close");
    let (expected, _) = read_all(&scratch, Mode::Strict).expect("scratch clean");

    let mut names: Vec<String> = fs::read_dir(&scratch)
        .expect("list scratch")
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .collect();
    names.sort();
    let mut body = format!("LXJM1\nrecords {new_records}\nsegments {}\n", names.len());
    for name in &names {
        body.push_str(name);
        body.push('\n');
    }
    let crc = journal::crc32(body.as_bytes());
    body.push_str(&format!("crc {crc:08x}\n"));
    fs::write(dir.join(compact::MANIFEST_NAME), body).expect("write manifest");
    expected
}

/// Manifest/tombstone swap fuzzing: a CRC-valid manifest rolls the swap
/// forward to exactly the new generation; *any* single-bit flip in the
/// manifest is detected as corruption by recovery, readers, and the
/// writer alike — a damaged commit record can never splice generations
/// or be silently discarded.
#[test]
fn manifest_corruption_is_detected_never_spliced() {
    let base = temp_base("manifest");
    let fixture = build_fixture(&base, 40);
    let mut rng = 0x00AA_2012_CDC5_u64;

    // Control: the un-attacked swap state. Readers refuse while the
    // manifest is pending; recovery rolls forward to the new
    // generation, never a mix.
    let dir = clone_fixture(&fixture, &base, "control");
    let expected = stage_swap(&dir, 12);
    expect_corrupt(read_all(&dir, Mode::Strict), "strict, pending swap");
    expect_corrupt(read_all(&dir, Mode::Recover), "recover mode, pending swap");
    assert_eq!(
        compact::recover(&dir).expect("roll forward"),
        compact::SwapRecovery::RolledForward
    );
    let (records, trunc) = read_all(&dir, Mode::Strict).expect("clean after roll-forward");
    assert!(trunc.is_none());
    assert_eq!(
        records, expected,
        "roll-forward must yield the new generation"
    );

    // A scratch generation without a manifest is uncommitted: rollback
    // discards it and the old generation is untouched.
    let dir = clone_fixture(&fixture, &base, "rollback");
    let (original, _) = read_all(&dir, Mode::Strict).expect("clean fixture");
    let scratch = dir.join(compact::NEW_GEN_DIR);
    let _ = stage_swap(&dir, 12);
    fs::remove_file(dir.join(compact::MANIFEST_NAME)).expect("drop manifest");
    assert_eq!(
        compact::recover(&dir).expect("roll back"),
        compact::SwapRecovery::RolledBack
    );
    assert!(!scratch.exists(), "scratch generation must be discarded");
    let (records, _) = read_all(&dir, Mode::Strict).expect("old generation intact");
    assert_eq!(records, original);

    // A manifest referencing a segment that exists in neither
    // generation is tampering, not recoverable state. (A CRC-valid
    // manifest is forged here, listing a segment nobody ever wrote.)
    let dir = clone_fixture(&fixture, &base, "missing-seg");
    let _ = stage_swap(&dir, 12);
    let manifest = dir.join(compact::MANIFEST_NAME);
    let text = fs::read_to_string(&manifest).expect("read manifest");
    let mut names: Vec<&str> = text.lines().filter(|l| l.starts_with("seg-")).collect();
    let phantom = segment_file_name(9_999_999);
    names.push(&phantom);
    let mut body = format!("LXJM1\nrecords 12\nsegments {}\n", names.len());
    for name in &names {
        body.push_str(name);
        body.push('\n');
    }
    let crc = journal::crc32(body.as_bytes());
    body.push_str(&format!("crc {crc:08x}\n"));
    fs::write(&manifest, body).expect("write forged manifest");
    match compact::recover(&dir) {
        Err(JournalError::Corrupt { reason, .. }) => {
            assert!(reason.contains("neither generation"), "reason: {reason}");
        }
        other => panic!("phantom manifest segment must be corruption, got {other:?}"),
    }

    // Seeded single-bit flips across the manifest bytes: every one must
    // be caught (CRC32 detects all single-bit errors), by recovery and
    // by both scan modes, and the flip must never complete a swap.
    for attack in 0..150 {
        let dir = clone_fixture(&fixture, &base, "flip-scratch");
        let _ = stage_swap(&dir, 12);
        let manifest = dir.join(compact::MANIFEST_NAME);
        let mut bytes = fs::read(&manifest).expect("read manifest");
        let pos = (splitmix(&mut rng) as usize) % bytes.len();
        let bit = 1u8 << (splitmix(&mut rng) % 8);
        bytes[pos] ^= bit;
        fs::write(&manifest, &bytes).expect("write flipped manifest");

        let what = format!("attack {attack}: flip bit {bit:#04x} at {pos} in manifest");
        match compact::recover(&dir) {
            Err(JournalError::Corrupt { reason, .. }) => {
                assert!(!reason.is_empty(), "{what}: reason must be actionable");
            }
            other => panic!("{what}: must be corruption, got {other:?}"),
        }
        expect_corrupt(read_all(&dir, Mode::Strict), &format!("strict, {what}"));
        expect_corrupt(read_all(&dir, Mode::Recover), &format!("recover, {what}"));
        assert!(
            Journal::open(&dir, JournalConfig::default()).is_err(),
            "{what}: the writer must refuse to open over a damaged commit record"
        );
    }

    let _ = fs::remove_dir_all(&base);
}

/// The contiguity property: a seeded interleaving of append-batches,
/// segment rotations (tiny, randomized segment sizes), torn crashes
/// (raw `set_len` of the last segment at a random offset — a tear
/// strictly nastier than any real kill, since it can even eat synced
/// bytes), and recoveries always leaves a journal whose scan is the
/// contiguous prefix `1..=M` with byte-exact `payload(seq)` contents.
/// Appends always resume at `recovery.next_seq`, so the deterministic
/// payload function stays the ground truth across every cycle.
#[test]
fn rotation_crash_recovery_interleavings_preserve_contiguity() {
    let base = temp_base("prop");
    let mut rng = 0x1CDC_2012_u64 ^ 0x00F0_4E51;
    for round in 0..20u32 {
        let dir = base.join(format!("round-{round}"));
        let _ = fs::remove_dir_all(&dir);
        for cycle in 0..6 {
            let (journal, recovery) = Journal::open(
                &dir,
                JournalConfig {
                    segment_bytes: 256 + splitmix(&mut rng) % 512,
                    queue_depth: 16,
                    sync: SyncPolicy::GroupCommit,
                },
            )
            .unwrap_or_else(|e| panic!("round {round} cycle {cycle}: recovery failed: {e}"));
            let mut next = recovery.next_seq;
            for _ in 0..splitmix(&mut rng) % 30 {
                let got = journal
                    .append_durable(payload(next))
                    .unwrap_or_else(|e| panic!("round {round} cycle {cycle}: append: {e}"));
                assert_eq!(got, next);
                next += 1;
            }
            journal
                .close()
                .unwrap_or_else(|e| panic!("round {round} cycle {cycle}: close: {e}"));

            // The journal is clean right now; verify before crashing.
            let (records, trunc) = read_all(&dir, Mode::Strict)
                .unwrap_or_else(|e| panic!("round {round} cycle {cycle}: strict scan: {e}"));
            assert!(trunc.is_none());
            assert_eq!(records.len() as u64, next - 1);
            for (i, record) in records.iter().enumerate() {
                let seq = i as u64 + 1;
                let want = payload(seq);
                assert_eq!(record.seq, seq, "round {round} cycle {cycle}: contiguity");
                assert_eq!(record.request, want.request, "round {round} cycle {cycle}");
                assert_eq!(record.verdict, want.verdict, "round {round} cycle {cycle}");
            }

            // Crash: tear the last segment at a random offset (possibly
            // inside the header, possibly a no-op cut at EOF). The next
            // cycle's open must absorb it.
            if let Some(last) = segments_sorted(&dir).pop() {
                let len = fs::metadata(&last).expect("len").len();
                let cut = splitmix(&mut rng) % (len + 1);
                let file = fs::OpenOptions::new()
                    .write(true)
                    .open(&last)
                    .expect("open");
                file.set_len(cut).expect("tear");
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&base);
}
