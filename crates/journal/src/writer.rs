//! The group-commit journal writer.
//!
//! [`Journal::open`] recovers the directory (scanning segments,
//! truncating a torn tail, computing the next sequence number) and
//! spawns a single writer thread. Producers pay one bounded-channel
//! send per record; the writer drains whatever has accumulated, writes
//! it, and issues **one** `fdatasync` for the whole batch — the classic
//! group-commit trade: per-record latency bounded by one batch, per-
//! record fsync cost amortized across the batch.
//!
//! # Ordering and durability
//!
//! Sequence numbers are assigned under the enqueue lock *before* the
//! channel send, and the channel is FIFO, so sequence order, channel
//! order, and file order are the same order by construction. The
//! durable clock advances to a record's sequence number only after the
//! bytes and the sync covering them have succeeded; [`Journal::wait_durable`]
//! and [`Journal::append_durable`] block on that clock. With
//! [`SyncPolicy::GroupCommit`] a sequence number the clock has passed
//! is crash-durable; with the weaker policies it only means "handed to
//! the kernel" (see [`SyncPolicy`]).
//!
//! [`Journal::close`] drains everything already accepted, force-syncs,
//! and joins the writer: on a graceful close every append that returned
//! `Ok` is on disk — the "no acknowledged-but-unjournaled verdicts"
//! guarantee the shutdown race test pins down.

use crate::reader::{list_segments, JournalError, JournalReader, Mode, Truncation};
use crate::segment::{encode_header, encode_record, record_len, segment_file_name, HEADER_LEN};
use crate::RecordData;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// When the writer thread syncs file contents to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fdatasync` once per drained batch (default). The durable clock
    /// means what it says: a passed sequence number survives a crash.
    GroupCommit,
    /// Sync only when rotating segments and on close. Bounded data loss
    /// on crash (at most the tail of the current segment), much cheaper
    /// under sustained load.
    OnRotate,
    /// Never sync except on close. For benchmarks measuring everything
    /// but the disk.
    Never,
}

/// Tuning for a [`Journal`].
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Rotate to a new segment once the current one would exceed this
    /// many bytes (a segment always holds at least one record, however
    /// large). Default 64 MiB.
    pub segment_bytes: u64,
    /// Bounded depth of the append channel; producers block when the
    /// writer falls this far behind. Default 1024.
    pub queue_depth: usize,
    /// Sync policy. Default [`SyncPolicy::GroupCommit`].
    pub sync: SyncPolicy,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            segment_bytes: 64 << 20,
            queue_depth: 1024,
            sync: SyncPolicy::GroupCommit,
        }
    }
}

/// What [`Journal::open`] found and did while recovering the directory.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// Clean records already in the journal.
    pub records: u64,
    /// The sequence number the next append will receive.
    pub next_seq: u64,
    /// The torn tail that was cut off, if any.
    pub truncation: Option<Truncation>,
}

/// Sequence-number state shared by producers (under one lock with the
/// sender, so seq order equals channel order).
struct EnqState {
    next_seq: u64,
    tx: Option<SyncSender<(u64, RecordData)>>,
}

/// The durable clock: highest sequence number known written-and-synced,
/// plus the writer's terminal failure if it died.
struct ClockState {
    durable: u64,
    failed: Option<String>,
}

struct DurableClock {
    state: Mutex<ClockState>,
    cond: Condvar,
}

impl DurableClock {
    fn advance(&self, seq: u64) {
        let mut state = self.state.lock().expect("clock lock");
        debug_assert!(seq >= state.durable, "durable clock must be monotonic");
        state.durable = seq;
        self.cond.notify_all();
    }

    fn fail(&self, msg: String) {
        let mut state = self.state.lock().expect("clock lock");
        if state.failed.is_none() {
            state.failed = Some(msg);
        }
        self.cond.notify_all();
    }
}

/// A durable, append-only request journal. Cheap to share behind an
/// `Arc`; all methods take `&self`.
pub struct Journal {
    enq: Mutex<EnqState>,
    clock: Arc<DurableClock>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Journal {
    /// Opens (creating if absent) the journal at `dir`: recovers the
    /// segment chain, truncates a torn tail if one is found, and spawns
    /// the writer thread positioned at the next sequence number.
    ///
    /// # Errors
    ///
    /// [`JournalError::Corrupt`] if the chain is damaged beyond the
    /// torn-tail rule (see [`Mode::Recover`]); [`JournalError::Io`] on
    /// filesystem failure.
    pub fn open(dir: &Path, config: JournalConfig) -> Result<(Journal, Recovery), JournalError> {
        fs::create_dir_all(dir)?;
        // A compaction interrupted mid-swap leaves the directory in a
        // state the reader must not trust; complete or roll back the
        // swap before scanning (see `compact::recover`).
        crate::compact::recover(dir)?;
        let mut reader = JournalReader::open(dir, Mode::Recover)?;
        let mut records = 0u64;
        while reader.next_record()?.is_some() {
            records += 1;
        }
        let next_seq = reader.next_seq();
        let truncation = reader.truncation().cloned();
        if let Some(t) = &truncation {
            apply_truncation(dir, t)?;
        }

        // Position the writer: append to the surviving last segment, or
        // start a fresh one whose base is the next sequence number.
        let (file, seg_path, current_len) = match list_segments(dir)?.pop() {
            Some((_, path)) => {
                let file = OpenOptions::new().append(true).open(&path)?;
                let len = file.metadata()?.len();
                (file, path, len)
            }
            None => create_segment(dir, next_seq)?,
        };

        let clock = Arc::new(DurableClock {
            state: Mutex::new(ClockState {
                durable: next_seq - 1,
                failed: None,
            }),
            cond: Condvar::new(),
        });
        let (tx, rx) = mpsc::sync_channel(config.queue_depth.max(1));
        let writer = WriterState {
            dir: dir.to_path_buf(),
            config,
            file,
            seg_path,
            current_len,
            buf: Vec::with_capacity(4096),
            clock: Arc::clone(&clock),
        };
        let handle = std::thread::Builder::new()
            .name("journal-writer".to_string())
            .spawn(move || writer.run(rx))
            .map_err(JournalError::Io)?;

        let journal = Journal {
            enq: Mutex::new(EnqState {
                next_seq,
                tx: Some(tx),
            }),
            clock,
            handle: Mutex::new(Some(handle)),
        };
        Ok((
            journal,
            Recovery {
                records,
                next_seq,
                truncation,
            },
        ))
    }

    /// Appends one record, returning the sequence number it will occupy.
    /// Blocks only when the bounded queue is full. An `Ok` here means
    /// *accepted*, not yet durable — pair with
    /// [`wait_durable`](Self::wait_durable) (or use
    /// [`append_durable`](Self::append_durable)) when the caller must
    /// not acknowledge before the record is on disk.
    ///
    /// # Errors
    ///
    /// [`JournalError::WriterClosed`] after [`close`](Self::close);
    /// [`JournalError::WriterFailed`] if the writer thread died.
    pub fn append(&self, data: RecordData) -> Result<u64, JournalError> {
        let mut enq = self.enq.lock().expect("enqueue lock");
        let Some(tx) = enq.tx.as_ref() else {
            return Err(JournalError::WriterClosed);
        };
        let seq = enq.next_seq;
        match tx.send((seq, data)) {
            Ok(()) => {
                enq.next_seq = seq + 1;
                Ok(seq)
            }
            // The receiver is gone: the writer thread hit an I/O error
            // and bailed. Surface its terminal failure.
            Err(_) => Err(self.writer_failure()),
        }
    }

    /// Appends and blocks until the record is committed per the sync
    /// policy. See [`append`](Self::append) for errors.
    ///
    /// # Errors
    ///
    /// As [`append`](Self::append), plus [`JournalError::WriterFailed`]
    /// if the writer dies before committing this record.
    pub fn append_durable(&self, data: RecordData) -> Result<u64, JournalError> {
        let seq = self.append(data)?;
        self.wait_durable(seq)?;
        Ok(seq)
    }

    /// Blocks until the durable clock reaches `seq`.
    ///
    /// # Errors
    ///
    /// [`JournalError::WriterFailed`] if the writer died before
    /// committing `seq`.
    pub fn wait_durable(&self, seq: u64) -> Result<(), JournalError> {
        let mut state = self.clock.state.lock().expect("clock lock");
        loop {
            if state.durable >= seq {
                return Ok(());
            }
            if let Some(msg) = &state.failed {
                return Err(JournalError::WriterFailed(msg.clone()));
            }
            state = self.clock.cond.wait(state).expect("clock lock");
        }
    }

    /// The highest sequence number committed so far.
    pub fn durable_seq(&self) -> u64 {
        self.clock.state.lock().expect("clock lock").durable
    }

    /// Closes the journal: stops accepting appends, drains everything
    /// already accepted, force-syncs, and joins the writer thread.
    /// Idempotent and safe to race from several threads; every call
    /// returns only after the writer has fully stopped.
    ///
    /// # Errors
    ///
    /// [`JournalError::WriterFailed`] if the writer died (now or
    /// earlier) without committing everything it accepted.
    pub fn close(&self) -> Result<(), JournalError> {
        // Dropping the sender closes the channel; the writer drains the
        // backlog and exits. Taking it under the lock makes racing
        // closers (and closers racing appenders) safe.
        drop(self.enq.lock().expect("enqueue lock").tx.take());
        let handle = self.handle.lock().expect("join lock").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        } else {
            // Another closer is (or was) joining; serialize behind it
            // so "close returned" always means "writer stopped".
            drop(self.handle.lock().expect("join lock"));
        }
        let state = self.clock.state.lock().expect("clock lock");
        match &state.failed {
            Some(msg) => Err(JournalError::WriterFailed(msg.clone())),
            None => Ok(()),
        }
    }

    fn writer_failure(&self) -> JournalError {
        let state = self.clock.state.lock().expect("clock lock");
        match &state.failed {
            Some(msg) => JournalError::WriterFailed(msg.clone()),
            None => JournalError::WriterClosed,
        }
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("durable_seq", &self.durable_seq())
            .finish()
    }
}

/// Cap on records drained per batch, bounding commit latency for the
/// records at the front when the queue is deep.
const MAX_BATCH: usize = 256;

struct WriterState {
    dir: PathBuf,
    config: JournalConfig,
    file: File,
    seg_path: PathBuf,
    current_len: u64,
    buf: Vec<u8>,
    clock: Arc<DurableClock>,
}

impl WriterState {
    fn run(mut self, rx: Receiver<(u64, RecordData)>) {
        let mut batch: Vec<(u64, RecordData)> = Vec::with_capacity(MAX_BATCH);
        // Block for the first record of each batch, then sweep whatever
        // else has queued up behind it — the group in group commit. A
        // recv error means the channel closed: graceful drain done.
        while let Ok(first) = rx.recv() {
            batch.clear();
            batch.push(first);
            while batch.len() < MAX_BATCH {
                match rx.try_recv() {
                    Ok(item) => batch.push(item),
                    Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                }
            }
            let last_seq = batch.last().expect("batch is non-empty").0;
            if let Err(e) = self.commit(&batch) {
                self.clock
                    .fail(format!("{e} (while committing seq {last_seq})"));
                // Dropping `rx` here unblocks producers stuck on a full
                // queue; their sends fail and surface WriterFailed.
                return;
            }
            self.clock.advance(last_seq);
        }
        // Graceful close: a final force-sync regardless of policy, so
        // every accepted append is durable before close() returns.
        if let Err(e) = self.file.sync_data() {
            self.clock.fail(format!("final sync failed: {e}"));
        }
    }

    /// Writes a batch and syncs it per policy. On `Err` the durable
    /// clock is *not* advanced: some bytes may be on disk, but nothing
    /// in this batch was acknowledged.
    fn commit(&mut self, batch: &[(u64, RecordData)]) -> Result<(), JournalError> {
        let mut rotated = false;
        for (seq, data) in batch {
            let len = record_len(data);
            if self.current_len > HEADER_LEN && self.current_len + len > self.config.segment_bytes {
                self.rotate(*seq)?;
                rotated = true;
            }
            self.buf.clear();
            encode_record(*seq, data, &mut self.buf);
            self.file.write_all(&self.buf)?;
            self.current_len += len;
        }
        match self.config.sync {
            SyncPolicy::GroupCommit => self.file.sync_data()?,
            SyncPolicy::OnRotate if rotated => self.file.sync_data()?,
            SyncPolicy::OnRotate | SyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Seals the current segment and starts a new one based at `seq`.
    fn rotate(&mut self, seq: u64) -> Result<(), JournalError> {
        // The old segment's contents must be durable before the new one
        // becomes visible, or a crash could orphan the chain.
        self.file.sync_data()?;
        let (file, path, len) = create_segment(&self.dir, seq)?;
        self.file = file;
        self.seg_path = path;
        self.current_len = len;
        Ok(())
    }
}

/// Creates a fresh segment file based at `seq`, writes its header, and
/// fsyncs the directory so the new name survives a crash.
fn create_segment(dir: &Path, seq: u64) -> Result<(File, PathBuf, u64), JournalError> {
    let path = dir.join(segment_file_name(seq));
    let mut file = OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&path)?;
    file.write_all(&encode_header(seq))?;
    file.sync_data()?;
    sync_dir(dir)?;
    Ok((file, path, HEADER_LEN))
}

/// Applies a recovery truncation: chops the torn tail (removing the
/// file entirely when even the header is torn) and syncs.
fn apply_truncation(dir: &Path, t: &Truncation) -> Result<(), JournalError> {
    if t.offset < HEADER_LEN {
        fs::remove_file(&t.segment)?;
    } else {
        let file = OpenOptions::new().write(true).open(&t.segment)?;
        file.set_len(t.offset)?;
        file.sync_all()?;
    }
    sync_dir(dir)
}

fn sync_dir(dir: &Path) -> Result<(), JournalError> {
    // Directory fsync is how a rename/create/unlink becomes durable on
    // Unix; on platforms where opening a directory fails, skip it.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}
