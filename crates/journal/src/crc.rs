//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven and
//! std-only.
//!
//! Every journal record's body is covered by this checksum; recovery
//! trusts nothing that fails it. The table is built at compile time, so
//! the runtime cost is one lookup and two XORs per byte.

/// The 256-entry CRC-32 lookup table, computed at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 of `bytes` (initial value `!0`, final XOR `!0` — the
/// standard zlib/IEEE parameterization).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors from the zlib `crc32` reference.
    #[test]
    fn known_answers() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_byte_flips_change_the_checksum() {
        let base = b"forensic journal record".to_vec();
        let clean = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8u8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    clean,
                    "flip at byte {i} bit {bit} undetected"
                );
            }
        }
    }

    #[test]
    fn empty_prefix_differs_from_any_content() {
        assert_ne!(crc32(b"a"), crc32(b""));
        assert_ne!(crc32(b"ab"), crc32(b"a"));
    }
}
