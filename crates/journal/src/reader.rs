//! Journal-level reading: segment discovery, cross-segment sequence
//! contiguity, and the torn-tail recovery rule.
//!
//! # Scan modes
//!
//! [`Mode::Strict`] treats every defect — a torn tail included — as an
//! error carrying the segment path, byte offset, and reason. This is
//! the verification mode: `replay --verify` and the corruption fuzzer
//! use it to prove that damage is *detected*, never skipped.
//!
//! [`Mode::Recover`] implements the crash model. The group-commit
//! writer appends sequentially and rotates segments left-to-right, so a
//! crash can only damage the **last** segment, and only as a torn or
//! garbled suffix. Recovery therefore accepts exactly one kind of
//! damage: a defective record tail in the final segment, which it
//! reports as a [`Truncation`] (the writer chops the file there and
//! resumes). Everything else — any defect in a non-final segment, a
//! sequence gap or duplicate anywhere, a segment whose header disagrees
//! with its file name — is evidence of splicing or external tampering
//! and stays a hard error in both modes.

use crate::segment::{parse_segment_file_name, ReadFailure, Record, SegmentReader};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// How a journal scan treats defects. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Every defect is an error with offset + reason.
    Strict,
    /// A defective tail in the last segment becomes a [`Truncation`];
    /// everything else stays an error.
    Recover,
}

/// Errors from journal reading and writing.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// A segment holds bytes that cannot be (or must not be) accepted:
    /// checksum mismatch, impossible length, sequence gap, torn record
    /// in strict mode, spliced segment chain.
    Corrupt {
        /// The defective segment file.
        segment: PathBuf,
        /// Byte offset of the defect within the segment.
        offset: u64,
        /// What exactly is wrong.
        reason: String,
    },
    /// An append was attempted after [`crate::Journal::close`].
    WriterClosed,
    /// The writer thread died on an I/O error; the message says why.
    WriterFailed(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "corrupt journal segment {} at offset {offset}: {reason}",
                segment.display()
            ),
            JournalError::WriterClosed => write!(f, "journal writer is closed"),
            JournalError::WriterFailed(msg) => write!(f, "journal writer failed: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// A torn tail found (and accepted) by a [`Mode::Recover`] scan: the
/// last segment holds `lost_bytes` of unusable bytes from `offset` on.
/// Truncating the file at `offset` restores a clean journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Truncation {
    /// The segment with the defective tail (always the last one).
    pub segment: PathBuf,
    /// Byte offset where the defect starts — the truncation point.
    pub offset: u64,
    /// Bytes from `offset` to end of file.
    pub lost_bytes: u64,
    /// Why the tail was rejected.
    pub reason: String,
}

/// A streaming reader over a whole journal directory, yielding records
/// in sequence order and enforcing contiguity across segments.
#[derive(Debug)]
pub struct JournalReader {
    mode: Mode,
    /// Remaining segments as `(base_seq, path)`, ascending.
    segments: Vec<(u64, PathBuf)>,
    index: usize,
    current: Option<SegmentReader>,
    /// The sequence number the next record must carry; `None` until the
    /// first segment is opened (or stays `None` for an empty journal).
    expect: Option<u64>,
    truncation: Option<Truncation>,
    done: bool,
}

impl JournalReader {
    /// Opens the journal at `dir`. A missing or empty directory is a
    /// valid empty journal.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the directory listing fails;
    /// [`JournalError::Corrupt`] if a committed compaction swap is
    /// pending (the directory may hold a mix of generations, which is
    /// exactly the splice shape this reader exists to reject — run
    /// [`crate::compact::recover`] or reopen the [`crate::Journal`]
    /// first).
    pub fn open(dir: &Path, mode: Mode) -> Result<JournalReader, JournalError> {
        if crate::compact::swap_pending(dir) {
            return Err(JournalError::Corrupt {
                segment: dir.join(crate::compact::MANIFEST_NAME),
                offset: 0,
                reason: "a committed compaction swap is pending; recover it before reading \
                         (Journal::open or `journal compact` completes the swap)"
                    .to_string(),
            });
        }
        Ok(JournalReader {
            mode,
            segments: list_segments(dir)?,
            index: 0,
            current: None,
            expect: None,
            truncation: None,
            done: false,
        })
    }

    /// The next record, or `None` at the end of the journal (including
    /// the recovered end after a truncation).
    ///
    /// # Errors
    ///
    /// See [`JournalError`]; after an error the reader is exhausted.
    pub fn next_record(&mut self) -> Result<Option<Record>, JournalError> {
        loop {
            if self.done {
                return Ok(None);
            }
            let recoverable = self.recoverable();
            let Some(reader) = self.current.as_mut() else {
                if self.index >= self.segments.len() {
                    self.done = true;
                    return Ok(None);
                }
                let (base, path) = self.segments[self.index].clone();
                if let Some(expect) = self.expect {
                    if base != expect {
                        self.done = true;
                        return Err(JournalError::Corrupt {
                            segment: path,
                            offset: 8,
                            reason: format!(
                                "segment base seq {base} breaks contiguity \
                                 (previous segment ended at seq {})",
                                expect - 1
                            ),
                        });
                    }
                }
                match SegmentReader::open(&path, base) {
                    Ok(reader) => {
                        self.expect = Some(base);
                        self.current = Some(reader);
                    }
                    Err(ReadFailure::Torn { offset }) if recoverable => {
                        // A header torn by a crash before the first
                        // record landed: drop the whole file. The next
                        // sequence number is the base its name claims.
                        self.truncate_here(&path, offset, "torn segment header".to_string())?;
                        self.expect = Some(base);
                        return Ok(None);
                    }
                    Err(failure) => {
                        self.done = true;
                        return Err(hard_error(&path, failure));
                    }
                }
                continue;
            };
            match reader.read_record() {
                Ok(Some(record)) => {
                    let expect = self.expect.expect("set when segment opened");
                    if record.seq != expect {
                        let (path, offset) = (reader.path().to_path_buf(), reader.offset());
                        self.done = true;
                        return Err(JournalError::Corrupt {
                            segment: path,
                            offset,
                            reason: format!(
                                "sequence discontinuity: record carries seq {} where seq \
                                 {expect} is required",
                                record.seq
                            ),
                        });
                    }
                    self.expect = Some(expect + 1);
                    return Ok(Some(record));
                }
                Ok(None) => {
                    self.current = None;
                    self.index += 1;
                }
                Err(failure) if recoverable => {
                    let path = reader.path().to_path_buf();
                    let (offset, reason) = match failure {
                        ReadFailure::Io(e) => {
                            self.done = true;
                            return Err(JournalError::Io(e));
                        }
                        ReadFailure::Torn { offset } => {
                            (offset, "file ends mid-record (torn write)".to_string())
                        }
                        ReadFailure::Corrupt { offset, reason } => (offset, reason),
                    };
                    self.truncate_here(&path, offset, reason)?;
                    return Ok(None);
                }
                Err(failure) => {
                    let path = reader.path().to_path_buf();
                    self.done = true;
                    return Err(hard_error(&path, failure));
                }
            }
        }
    }

    /// Whether a defect at the current position may be absorbed as a
    /// torn tail: recover mode, and the current position is in the
    /// final segment.
    fn recoverable(&self) -> bool {
        self.mode == Mode::Recover && self.index + 1 == self.segments.len()
    }

    fn truncate_here(
        &mut self,
        path: &Path,
        offset: u64,
        reason: String,
    ) -> Result<(), JournalError> {
        let len = fs::metadata(path)?.len();
        self.truncation = Some(Truncation {
            segment: path.to_path_buf(),
            offset,
            lost_bytes: len.saturating_sub(offset),
            reason,
        });
        self.done = true;
        Ok(())
    }

    /// The sequence number the next appended record will carry — one
    /// past the last clean record (1 for an empty journal).
    pub fn next_seq(&self) -> u64 {
        self.expect.unwrap_or(1)
    }

    /// The torn tail a recover-mode scan found, if any. Only meaningful
    /// once [`next_record`](Self::next_record) has returned `None`.
    pub fn truncation(&self) -> Option<&Truncation> {
        self.truncation.as_ref()
    }
}

/// Reads a whole journal into memory: `(records, truncation)`.
/// Convenience for tests and small replays; the streaming
/// [`JournalReader`] is the primary interface.
///
/// # Errors
///
/// See [`JournalError`].
pub fn read_all(dir: &Path, mode: Mode) -> Result<(Vec<Record>, Option<Truncation>), JournalError> {
    let mut reader = JournalReader::open(dir, mode)?;
    let mut records = Vec::new();
    while let Some(record) = reader.next_record()? {
        records.push(record);
    }
    let truncation = reader.truncation.take();
    Ok((records, truncation))
}

/// Lists the journal's segments as `(base_seq, path)` in ascending base
/// order. Non-segment files are ignored; a missing directory is an
/// empty journal.
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, JournalError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(JournalError::Io(e)),
    };
    let mut segments = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(base) = parse_segment_file_name(name) {
            segments.push((base, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|(base, _)| *base);
    Ok(segments)
}

fn hard_error(path: &Path, failure: ReadFailure) -> JournalError {
    match failure {
        ReadFailure::Io(e) => JournalError::Io(e),
        ReadFailure::Torn { offset } => JournalError::Corrupt {
            segment: path.to_path_buf(),
            offset,
            reason: "file ends mid-record (torn write)".to_string(),
        },
        ReadFailure::Corrupt { offset, reason } => JournalError::Corrupt {
            segment: path.to_path_buf(),
            offset,
            reason,
        },
    }
}
