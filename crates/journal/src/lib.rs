//! lexforensica-journal: a durable, replayable record of every request
//! the engine answered.
//!
//! The paper's auditability argument — a forensic verdict is only
//! defensible if the exact request and its disposition can be
//! reproduced later — needs more than logs. This crate provides the
//! substrate: an **append-only, CRC-checksummed, segment-rotated binary
//! journal** of requests, verdicts, wire status bytes, and trace ids,
//! written through a **group-commit** writer thread so the serving hot
//! path pays one bounded-channel send per request while fsync cost is
//! amortized across batches.
//!
//! Three pieces, layered:
//!
//! * [`segment`] — the on-disk format: 16-byte header, length- and
//!   CRC-framed records, canonical `seg-<base>.lxj` names.
//! * [`JournalReader`] / [`read_all`] — journal-wide scanning with
//!   cross-segment sequence contiguity; [`Mode::Strict`] for
//!   verification (every defect is an error with offset + reason),
//!   [`Mode::Recover`] for the crash model (a defective tail in the
//!   last segment becomes a [`Truncation`], everything else stays an
//!   error).
//! * [`Journal`] — the group-commit writer: recovery on open (truncate
//!   the torn tail, resume at the next sequence number), bounded
//!   producer queue, a durable clock for acknowledge-after-fsync
//!   callers, and a drain-everything graceful [`Journal::close`].
//! * [`compact`] — offline segment compaction: a caller-supplied
//!   [`compact::Retention`] policy decides which records survive
//!   (latest-wins per key), survivors are rewritten through the same
//!   group-commit writer into a fresh generation, and a CRC-protected
//!   manifest makes the generation swap atomic — a crash at any byte
//!   recovers to the old generation or the new one, never a splice.
//!
//! The journal is deliberately dumb about payloads: a record stores the
//! raw request line and the raw verdict bytes. Replaying means parsing
//! the stored request exactly as the live path would and diffing the
//! newly computed verdict byte-for-byte against the stored one — the
//! regression oracle the `replay` CLI subcommand builds on this crate.
//!
//! ```
//! use journal::{Journal, JournalConfig, Mode, RecordData, read_all};
//! use obs::TraceId;
//!
//! let dir = std::env::temp_dir().join(format!("lxj-doc-{}", std::process::id()));
//! let (journal, recovery) = Journal::open(&dir, JournalConfig::default()).unwrap();
//! assert_eq!(recovery.next_seq, 1);
//! let seq = journal.append_durable(RecordData {
//!     trace: TraceId::from_u64(7),
//!     at_us: journal::now_us(),
//!     status: 0,
//!     request: br#"{"actor":"le","category":"device_forensics"}"#.to_vec(),
//!     verdict: b"conditional [medium]".to_vec(),
//! }).unwrap();
//! assert_eq!(seq, 1);
//! journal.close().unwrap();
//!
//! let (records, truncation) = read_all(&dir, Mode::Strict).unwrap();
//! assert!(truncation.is_none());
//! assert_eq!(records.len(), 1);
//! assert_eq!(records[0].verdict, b"conditional [medium]");
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
pub mod crc;
pub mod reader;
pub mod segment;
pub mod writer;

pub use compact::{CompactionReport, Retention, SwapRecovery};
pub use crc::crc32;
pub use reader::{read_all, JournalError, JournalReader, Mode, Truncation};
pub use segment::{Record, RecordData};
pub use writer::{Journal, JournalConfig, Recovery, SyncPolicy};

/// The capture clock: microseconds since the UNIX epoch, right now.
///
/// This is what recorders stamp into [`RecordData::at_us`]. It is a
/// wall clock — subject to steps and slews — because replay pacing
/// wants human time-of-day gaps, not monotonic perfection; `seq` alone
/// orders the journal.
pub fn now_us() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}
