//! Offline segment compaction with an atomic generation swap.
//!
//! A long-lived journal accumulates records that later records
//! supersede: the same legal question asked again under the same facts,
//! answered with the same (or a newer) verdict. Compaction rewrites the
//! journal keeping only the records a caller-supplied [`Retention`]
//! policy says still matter — **latest wins** per retention key — and
//! reclaims the disk the superseded records occupied.
//!
//! The journal crate stays deliberately dumb about payloads, so the
//! policy is a closure: the CLI layer maps `ok` records to their
//! `FactKey` projection, malformed requests to their raw bytes, and
//! load-shed dispositions to [`Retention::Drop`]; this module never
//! parses a request.
//!
//! # The generation-swap protocol
//!
//! Compaction must be crash-safe against SIGKILL at **any** byte: the
//! directory must recover to exactly the old generation or exactly the
//! new one, never a splice of the two (a spliced chain could silently
//! pass contiguity checks — e.g. the old first segment alone looks like
//! a clean, shorter journal). The protocol:
//!
//! 1. **Rewrite** — survivors are re-appended (renumbered contiguously
//!    from 1) through the ordinary group-commit [`crate::Journal`]
//!    writer into a scratch subdirectory `.compact-new/`, then synced.
//!    The live directory is untouched; a crash here loses nothing.
//! 2. **Commit** — a manifest listing every new-generation segment
//!    name (CRC-protected, written via temp-file + rename) lands at
//!    `COMPACT-MANIFEST`. The rename of the manifest *is* the commit
//!    point: before it the old generation is authoritative, after it
//!    the new one is.
//! 3. **Swap** — each manifest-listed segment is renamed from
//!    `.compact-new/` into the journal directory (rename overwrites the
//!    old segment of the same base, e.g. `seg-…0001`), old segments not
//!    in the manifest are unlinked, and the scratch directory is
//!    removed.
//! 4. **Seal** — the manifest is deleted. The journal is once again an
//!    ordinary directory of segments.
//!
//! [`recover`] makes the protocol idempotent: a manifest on disk rolls
//! the swap **forward** (steps 3–4 redone from the manifest), a scratch
//! directory without a manifest rolls **back** (scratch deleted, old
//! generation untouched). [`crate::Journal::open`] runs it before every
//! recovery scan; [`crate::JournalReader::open`] refuses to read while
//! a manifest is pending, because mid-swap contents are exactly the
//! splice shape the reader must never accept.
//!
//! # Crash injection
//!
//! The environment hook `LXJ_COMPACT_CRASH_POINT` aborts the process at
//! a named protocol point (`before-manifest`, `after-manifest`,
//! `mid-swap`, `before-cleanup`). CI's compaction-kill smoke job and
//! the torture tests use it for deterministic coverage of every
//! protocol edge; randomized SIGKILL timing covers the bytes between.

use crate::crc::crc32;
use crate::reader::{list_segments, read_all, JournalError, Mode};
use crate::segment::{parse_segment_file_name, Record, RecordData};
use crate::writer::{Journal, JournalConfig};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// The commit-point manifest file name. While this file exists, a
/// generation swap is pending and the directory must not be read as a
/// journal.
pub const MANIFEST_NAME: &str = "COMPACT-MANIFEST";

/// Temp name the manifest is staged under before its commit rename.
const MANIFEST_TMP: &str = ".compact-manifest.tmp";

/// Scratch subdirectory the new generation is rewritten into.
pub const NEW_GEN_DIR: &str = ".compact-new";

/// Manifest format magic (first line).
const MANIFEST_MAGIC: &str = "LXJM1";

/// What a [`Retention`] policy decides for one record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Retention {
    /// The record competes under this key: of all records sharing a
    /// key, only the one with the highest sequence number survives —
    /// latest verdict wins.
    Supersede(Vec<u8>),
    /// The record always survives (e.g. evidence the policy cannot
    /// classify).
    Keep,
    /// The record never survives (e.g. load-shed dispositions that
    /// carry no verdict worth replaying).
    Drop,
}

/// What [`recover`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapRecovery {
    /// No compaction was in flight.
    Clean,
    /// A committed manifest was found; the swap was completed
    /// (rolled forward to the new generation).
    RolledForward,
    /// An uncommitted scratch generation was found and discarded
    /// (rolled back to the old generation).
    RolledBack,
}

/// What one [`compact`] run did.
#[derive(Debug, Clone)]
pub struct CompactionReport {
    /// What [`recover`] had to do before this run could start.
    pub prior: SwapRecovery,
    /// Records scanned from the old generation.
    pub input_records: u64,
    /// Records written to the new generation.
    pub surviving_records: u64,
    /// Records dropped because a later record superseded their key.
    pub superseded: u64,
    /// Records dropped outright by [`Retention::Drop`].
    pub discarded: u64,
    /// On-disk segment bytes before compaction.
    pub bytes_before: u64,
    /// On-disk segment bytes after compaction.
    pub bytes_after: u64,
    /// Segment files before compaction.
    pub segments_before: usize,
    /// Segment files after compaction.
    pub segments_after: usize,
}

impl CompactionReport {
    /// Shrink factor, `bytes_before / bytes_after` (1.0 when nothing
    /// shrank or the journal was empty).
    pub fn ratio(&self) -> f64 {
        if self.bytes_after == 0 {
            1.0
        } else {
            self.bytes_before as f64 / self.bytes_after as f64
        }
    }
}

/// Aborts the process when `LXJ_COMPACT_CRASH_POINT` names this point —
/// deterministic crash injection for the torture harness and CI.
fn crash_point(point: &str) {
    if std::env::var("LXJ_COMPACT_CRASH_POINT").as_deref() == Ok(point) {
        eprintln!("journal compact: aborting at injected crash point `{point}`");
        std::process::abort();
    }
}

/// Compacts the journal at `dir`: scans it (recover mode — a torn tail
/// is dropped exactly as [`crate::Journal::open`] would drop it),
/// applies `classify` to every record in sequence order, rewrites the
/// survivors renumbered from 1 through a fresh group-commit writer, and
/// atomically swaps generations. On return the directory holds only
/// the new generation.
///
/// Compaction is an **offline** operation: no live [`Journal`] writer
/// may have the directory open.
///
/// # Errors
///
/// [`JournalError::Corrupt`] if the existing chain is damaged beyond
/// the torn-tail rule or a pending manifest is unreadable;
/// [`JournalError::Io`] on filesystem failure.
pub fn compact(
    dir: &Path,
    config: JournalConfig,
    mut classify: impl FnMut(&Record) -> Retention,
) -> Result<CompactionReport, JournalError> {
    let prior = recover(dir)?;
    let (records, _torn) = read_all(dir, Mode::Recover)?;
    let old_segments = list_segments(dir)?;
    let bytes_before = dir_bytes(&old_segments)?;

    // Latest-wins: remember the highest seq per key, then keep a record
    // iff it is Keep or it *is* the latest holder of its key.
    let mut latest: HashMap<Vec<u8>, u64> = HashMap::new();
    let mut decisions = Vec::with_capacity(records.len());
    for record in &records {
        let decision = classify(record);
        if let Retention::Supersede(key) = &decision {
            latest.insert(key.clone(), record.seq);
        }
        decisions.push(decision);
    }
    let mut superseded = 0u64;
    let mut discarded = 0u64;
    let mut survivors: Vec<&Record> = Vec::new();
    for (record, decision) in records.iter().zip(&decisions) {
        match decision {
            Retention::Keep => survivors.push(record),
            Retention::Drop => discarded += 1,
            Retention::Supersede(key) => {
                if latest[key] == record.seq {
                    survivors.push(record);
                } else {
                    superseded += 1;
                }
            }
        }
    }

    // Rewrite the survivors into the scratch generation via the
    // ordinary group-commit writer: same framing, same CRCs, same
    // rotation, contiguous new sequence numbers from 1.
    let scratch = dir.join(NEW_GEN_DIR);
    let (journal, recovery) = Journal::open(&scratch, config)?;
    debug_assert_eq!(recovery.next_seq, 1, "scratch generation must be fresh");
    for record in &survivors {
        journal.append(RecordData {
            trace: record.trace,
            at_us: record.at_us,
            status: record.status,
            request: record.request.clone(),
            verdict: record.verdict.clone(),
        })?;
    }
    journal.close()?;

    let new_segments = list_segments(&scratch)?;
    let bytes_after = dir_bytes(&new_segments)?;
    let new_names: Vec<String> = new_segments
        .iter()
        .map(|(base, _)| crate::segment::segment_file_name(*base))
        .collect();

    crash_point("before-manifest");
    write_manifest(dir, survivors.len() as u64, &new_names)?;
    crash_point("after-manifest");

    swap_in(dir, &new_names)?;
    crash_point("before-cleanup");
    seal(dir)?;

    Ok(CompactionReport {
        prior,
        input_records: records.len() as u64,
        surviving_records: survivors.len() as u64,
        superseded,
        discarded,
        bytes_before,
        bytes_after,
        segments_before: old_segments.len(),
        segments_after: new_names.len(),
    })
}

/// Completes or rolls back an interrupted generation swap. Idempotent;
/// safe (and cheap) to call on a directory with no swap in flight.
/// [`crate::Journal::open`] calls this before its recovery scan.
///
/// # Errors
///
/// [`JournalError::Corrupt`] when a pending manifest fails its CRC or
/// references a segment that exists in neither generation — evidence of
/// tampering, never silently discarded; [`JournalError::Io`] on
/// filesystem failure.
pub fn recover(dir: &Path) -> Result<SwapRecovery, JournalError> {
    let manifest = dir.join(MANIFEST_NAME);
    let scratch = dir.join(NEW_GEN_DIR);
    let staged = dir.join(MANIFEST_TMP);
    if manifest.exists() {
        // Committed: the new generation is authoritative. Re-run the
        // swap from the manifest; every step tolerates having already
        // happened.
        let names = read_manifest(&manifest)?;
        swap_in(dir, &names)?;
        seal(dir)?;
        Ok(SwapRecovery::RolledForward)
    } else if scratch.exists() || staged.exists() {
        // Uncommitted: the old generation is authoritative; the
        // scratch rewrite (and any staged manifest) is garbage.
        if scratch.exists() {
            fs::remove_dir_all(&scratch)?;
        }
        if staged.exists() {
            fs::remove_file(&staged)?;
        }
        sync_dir(dir);
        Ok(SwapRecovery::RolledBack)
    } else {
        Ok(SwapRecovery::Clean)
    }
}

/// Whether a committed-but-unfinished swap is pending at `dir` — the
/// state in which the directory must not be read as a journal.
pub fn swap_pending(dir: &Path) -> bool {
    dir.join(MANIFEST_NAME).exists()
}

/// Renames every manifest-listed segment from the scratch directory
/// into `dir` (skipping ones already moved), unlinks old segments the
/// manifest does not list, and removes the scratch directory.
fn swap_in(dir: &Path, names: &[String]) -> Result<(), JournalError> {
    let scratch = dir.join(NEW_GEN_DIR);
    for (i, name) in names.iter().enumerate() {
        let from = scratch.join(name);
        let to = dir.join(name);
        if from.exists() {
            // Overwrites an old segment with the same base (always the
            // case for `seg-…0001`): atomic on POSIX, and exactly what
            // the manifest committed to.
            fs::rename(&from, &to)?;
        } else if !to.exists() {
            return Err(JournalError::Corrupt {
                segment: dir.join(MANIFEST_NAME),
                offset: 0,
                reason: format!(
                    "manifest lists segment {name} but it exists in neither generation"
                ),
            });
        }
        if i == 0 {
            crash_point("mid-swap");
        }
    }
    for (base, path) in list_segments(dir)? {
        let name = crate::segment::segment_file_name(base);
        if !names.contains(&name) {
            fs::remove_file(&path)?;
        }
    }
    if scratch.exists() {
        fs::remove_dir_all(&scratch)?;
    }
    sync_dir(dir);
    Ok(())
}

/// Removes the manifest — the swap's final step; after this the
/// directory is an ordinary journal again.
fn seal(dir: &Path) -> Result<(), JournalError> {
    let manifest = dir.join(MANIFEST_NAME);
    if manifest.exists() {
        fs::remove_file(&manifest)?;
    }
    let staged = dir.join(MANIFEST_TMP);
    if staged.exists() {
        fs::remove_file(&staged)?;
    }
    sync_dir(dir);
    Ok(())
}

/// Stages and commits the manifest: temp file, fsync, rename, dir
/// fsync. The rename is the generation-swap commit point.
fn write_manifest(dir: &Path, records: u64, names: &[String]) -> Result<(), JournalError> {
    let mut body = String::new();
    body.push_str(MANIFEST_MAGIC);
    body.push('\n');
    body.push_str(&format!("records {records}\n"));
    body.push_str(&format!("segments {}\n", names.len()));
    for name in names {
        body.push_str(name);
        body.push('\n');
    }
    let crc = crc32(body.as_bytes());
    body.push_str(&format!("crc {crc:08x}\n"));

    let staged = dir.join(MANIFEST_TMP);
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&staged)?;
    file.write_all(body.as_bytes())?;
    file.sync_all()?;
    drop(file);
    fs::rename(&staged, dir.join(MANIFEST_NAME))?;
    sync_dir(dir);
    Ok(())
}

/// Parses and CRC-verifies a manifest, returning the new generation's
/// segment names.
fn read_manifest(path: &Path) -> Result<Vec<String>, JournalError> {
    let corrupt = |reason: String| JournalError::Corrupt {
        segment: path.to_path_buf(),
        offset: 0,
        reason,
    };
    let text =
        fs::read_to_string(path).map_err(|e| corrupt(format!("manifest unreadable: {e}")))?;
    let Some((body, crc_line)) = text.trim_end_matches('\n').rsplit_once('\n') else {
        return Err(corrupt("manifest has no CRC line".to_string()));
    };
    let body = format!("{body}\n");
    // The CRC line must be the canonical lowercase rendering, compared
    // byte-for-byte: a commit record is either exactly what the writer
    // produced or it is corrupt (no leniency that a bit flip could
    // hide inside, e.g. hex-digit case).
    let computed = crc32(body.as_bytes());
    let canonical = format!("crc {computed:08x}");
    if crc_line != canonical {
        return Err(corrupt(format!(
            "manifest checksum line mismatch: stored {crc_line:?}, computed {canonical:?}"
        )));
    }
    let mut lines = body.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(corrupt("bad manifest magic".to_string()));
    }
    let _records = lines
        .next()
        .and_then(|l| l.strip_prefix("records "))
        .and_then(|n| n.parse::<u64>().ok())
        .ok_or_else(|| corrupt("malformed records line".to_string()))?;
    let count = lines
        .next()
        .and_then(|l| l.strip_prefix("segments "))
        .and_then(|n| n.parse::<usize>().ok())
        .ok_or_else(|| corrupt("malformed segments line".to_string()))?;
    let names: Vec<String> = lines.map(str::to_string).collect();
    if names.len() != count {
        return Err(corrupt(format!(
            "manifest claims {count} segments but lists {}",
            names.len()
        )));
    }
    for name in &names {
        if parse_segment_file_name(name).is_none() {
            return Err(corrupt(format!("manifest lists non-segment name {name:?}")));
        }
    }
    Ok(names)
}

fn dir_bytes(segments: &[(u64, PathBuf)]) -> Result<u64, JournalError> {
    let mut total = 0u64;
    for (_, path) in segments {
        total += fs::metadata(path)?.len();
    }
    Ok(total)
}

fn sync_dir(dir: &Path) {
    // Same best-effort stance as the writer: directory fsync is how
    // renames/unlinks become durable on Unix; elsewhere, skip.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}
