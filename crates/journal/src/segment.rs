//! The on-disk segment format: header, record framing, and a streaming
//! segment reader.
//!
//! # Layout
//!
//! A journal is a directory of segment files named
//! `seg-<base_seq:020>.lxj`, where `base_seq` is the sequence number of
//! the first record the segment holds. Each segment is:
//!
//! ```text
//! header (16 bytes): [magic "LXJ1"][version: u32 BE][base_seq: u64 BE]
//! records, back to back until EOF:
//!   [body_len: u32 BE][crc32(body): u32 BE][body]
//!   body: [seq: u64 BE][trace: u64 BE][at_us: u64 BE][status: u8]
//!         [req_len: u32 BE][request: req_len bytes][verdict: rest]
//! ```
//!
//! * `seq` numbers are assigned by the writer, start at 1, and are
//!   **contiguous** across the whole journal — within a segment and
//!   across the rotation boundary (`base_seq` of segment *k+1* is the
//!   last `seq` of segment *k* plus one). A gap is corruption, never
//!   tolerated.
//! * `crc32` covers the body only; the length prefix is validated by
//!   range (`RECORD_FIXED ..= MAX_RECORD`) before any allocation.
//! * `at_us` is the wall-clock capture time in microseconds since the
//!   UNIX epoch, stamped by the recorder at admission. It exists for
//!   replay pacing (`replay --serve` refires at recorded inter-arrival
//!   gaps); it carries no ordering authority — `seq` alone orders the
//!   journal, and a clock step that makes `at_us` non-monotonic is not
//!   corruption.
//! * `status` is the wire status byte ([`wire` crate's `Status`]); the
//!   journal stores it opaquely so the format does not chase the
//!   serving layer's enum.
//!
//! # Failure vocabulary
//!
//! A segment read ends one of three ways, and the distinction is the
//! whole crash-recovery story (see [`crate::reader`]):
//!
//! * clean EOF at a record boundary — the segment is whole;
//! * **torn**: the file ends mid-prefix or mid-body — the classic shape
//!   of a crash between `write` and the final `fsync`;
//! * **corrupt**: the bytes are all present but wrong — checksum
//!   mismatch, impossible length, an inner length overrunning the body,
//!   a sequence gap. Corruption is reported with the exact byte offset
//!   and reason, and is never silently skipped.

use crate::crc::crc32;
use obs::TraceId;
use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::{Path, PathBuf};

/// Segment file magic: the first four bytes of every segment.
pub const MAGIC: [u8; 4] = *b"LXJ1";

/// Current segment format version. Version 2 added the `at_us` capture
/// timestamp to the record body; version-1 segments are refused loudly
/// rather than read with shifted fields.
pub const VERSION: u32 = 2;

/// Bytes in a segment header: magic + version + base sequence number.
pub const HEADER_LEN: u64 = 4 + 4 + 8;

/// Fixed bytes in a record body before the variable payloads:
/// seq + trace + capture time + status + request length.
pub const RECORD_FIXED: usize = 8 + 8 + 8 + 1 + 4;

/// Bytes in a record's framing prefix: body length + CRC.
pub const PREFIX_LEN: usize = 4 + 4;

/// Cap on a record body. The wire layer refuses frames over 1 MiB, so a
/// journal body (request + verdict + fixed fields) never legitimately
/// reaches 2 MiB; a longer claimed length is corruption, refused before
/// allocation.
pub const MAX_RECORD: u32 = 2 << 20;

/// The segment file extension.
pub const SEGMENT_EXT: &str = "lxj";

/// One record to append: everything but the sequence number, which the
/// writer assigns at enqueue so file order always equals seq order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordData {
    /// The trace id minted for the request at the edge (0 = untraced).
    pub trace: TraceId,
    /// Capture time, µs since the UNIX epoch ([`crate::now_us`]).
    pub at_us: u64,
    /// The wire status byte for the disposition (`Status::as_byte`).
    pub status: u8,
    /// The raw request payload (one JSONL action line, as received).
    pub request: Vec<u8>,
    /// The response payload (the verdict line for `ok`, a diagnostic
    /// otherwise).
    pub verdict: Vec<u8>,
}

/// One record as read back from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Journal-wide sequence number (contiguous from 1).
    pub seq: u64,
    /// The trace id the request carried (0 = untraced).
    pub trace: TraceId,
    /// Capture time, µs since the UNIX epoch.
    pub at_us: u64,
    /// The wire status byte for the disposition.
    pub status: u8,
    /// The raw request payload.
    pub request: Vec<u8>,
    /// The response payload.
    pub verdict: Vec<u8>,
}

/// Encodes one record (prefix + body) onto the end of `out`.
pub fn encode_record(seq: u64, data: &RecordData, out: &mut Vec<u8>) {
    let body_len = RECORD_FIXED + data.request.len() + data.verdict.len();
    debug_assert!(body_len as u64 <= u64::from(MAX_RECORD), "record over cap");
    out.reserve(PREFIX_LEN + body_len);
    let prefix_at = out.len();
    out.extend_from_slice(&(body_len as u32).to_be_bytes());
    out.extend_from_slice(&[0u8; 4]); // CRC back-patched below
    let body_at = out.len();
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&data.trace.as_u64().to_be_bytes());
    out.extend_from_slice(&data.at_us.to_be_bytes());
    out.push(data.status);
    out.extend_from_slice(&(data.request.len() as u32).to_be_bytes());
    out.extend_from_slice(&data.request);
    out.extend_from_slice(&data.verdict);
    let crc = crc32(&out[body_at..]);
    out[prefix_at + 4..prefix_at + 8].copy_from_slice(&crc.to_be_bytes());
}

/// The total on-disk size of a record carrying these payloads.
pub fn record_len(data: &RecordData) -> u64 {
    (PREFIX_LEN + RECORD_FIXED + data.request.len() + data.verdict.len()) as u64
}

/// Encodes a segment header.
pub fn encode_header(base_seq: u64) -> [u8; HEADER_LEN as usize] {
    let mut out = [0u8; HEADER_LEN as usize];
    out[..4].copy_from_slice(&MAGIC);
    out[4..8].copy_from_slice(&VERSION.to_be_bytes());
    out[8..16].copy_from_slice(&base_seq.to_be_bytes());
    out
}

/// The canonical file name for the segment whose first record is
/// `base_seq`.
pub fn segment_file_name(base_seq: u64) -> String {
    format!("seg-{base_seq:020}.{SEGMENT_EXT}")
}

/// Parses a segment file name back to its base sequence number; `None`
/// for files that are not journal segments (they are ignored, so a
/// stray `README` in the directory is harmless).
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".lxj")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// How a segment read failed, before the journal-level reader decides
/// whether that is fatal or a recoverable torn tail.
#[derive(Debug)]
pub enum ReadFailure {
    /// The underlying file read failed.
    Io(io::Error),
    /// The file ends mid-record (or mid-header): the shape of a crash.
    /// `offset` is where the incomplete object starts — the truncation
    /// point that recovers the longest clean prefix.
    Torn {
        /// Byte offset of the incomplete record's first prefix byte.
        offset: u64,
    },
    /// The bytes are present but wrong. Never recoverable by
    /// truncation bookkeeping alone; the reason says exactly what and
    /// where.
    Corrupt {
        /// Byte offset of the offending record's first prefix byte (or
        /// of the header field for header corruption).
        offset: u64,
        /// Human-readable reason, specific enough to act on.
        reason: String,
    },
}

/// A streaming reader over one segment file. Validates the header on
/// open and each record's framing + checksum on read; sequence
/// contiguity is the journal-level reader's job (it spans segments).
#[derive(Debug)]
pub struct SegmentReader {
    path: PathBuf,
    input: BufReader<File>,
    base_seq: u64,
    /// Byte offset of the next unread byte.
    offset: u64,
}

impl SegmentReader {
    /// Opens `path` and validates its header against the base sequence
    /// number its file name claims.
    ///
    /// # Errors
    ///
    /// [`ReadFailure::Torn`] when the file is shorter than a header;
    /// [`ReadFailure::Corrupt`] on bad magic, an unknown version, or a
    /// header/file-name base mismatch; [`ReadFailure::Io`] on I/O
    /// failure.
    pub fn open(path: &Path, expected_base: u64) -> Result<SegmentReader, ReadFailure> {
        let file = File::open(path).map_err(ReadFailure::Io)?;
        let mut input = BufReader::new(file);
        let mut header = [0u8; HEADER_LEN as usize];
        let got = read_up_to(&mut input, &mut header).map_err(ReadFailure::Io)?;
        if got < header.len() {
            return Err(ReadFailure::Torn { offset: 0 });
        }
        if header[..4] != MAGIC {
            return Err(ReadFailure::Corrupt {
                offset: 0,
                reason: format!("bad magic {:02x?} (want {:02x?})", &header[..4], MAGIC),
            });
        }
        let version = u32::from_be_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(ReadFailure::Corrupt {
                offset: 4,
                reason: format!("unsupported segment version {version} (want {VERSION})"),
            });
        }
        let base_seq = u64::from_be_bytes(header[8..16].try_into().expect("8 bytes"));
        if base_seq != expected_base {
            return Err(ReadFailure::Corrupt {
                offset: 8,
                reason: format!(
                    "header base seq {base_seq} disagrees with file name base {expected_base}"
                ),
            });
        }
        Ok(SegmentReader {
            path: path.to_path_buf(),
            input,
            base_seq,
            offset: HEADER_LEN,
        })
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The first sequence number this segment holds.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// Byte offset of the next unread byte — after a failure, the
    /// truncation point that keeps every record read so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reads the next record. `Ok(None)` is a clean EOF at a record
    /// boundary.
    ///
    /// # Errors
    ///
    /// See [`ReadFailure`]. After any error the reader is positioned
    /// unreliably and must not be read again.
    pub fn read_record(&mut self) -> Result<Option<Record>, ReadFailure> {
        let record_at = self.offset;
        let mut prefix = [0u8; PREFIX_LEN];
        let got = read_up_to(&mut self.input, &mut prefix).map_err(ReadFailure::Io)?;
        if got == 0 {
            return Ok(None);
        }
        if got < PREFIX_LEN {
            return Err(ReadFailure::Torn { offset: record_at });
        }
        let body_len = u32::from_be_bytes(prefix[..4].try_into().expect("4 bytes"));
        let stored_crc = u32::from_be_bytes(prefix[4..8].try_into().expect("4 bytes"));
        if (body_len as usize) < RECORD_FIXED {
            return Err(ReadFailure::Corrupt {
                offset: record_at,
                reason: format!(
                    "body length {body_len} shorter than the {RECORD_FIXED}-byte fixed header"
                ),
            });
        }
        if body_len > MAX_RECORD {
            return Err(ReadFailure::Corrupt {
                offset: record_at,
                reason: format!("body length {body_len} exceeds the {MAX_RECORD}-byte record cap"),
            });
        }
        let mut body = vec![0u8; body_len as usize];
        let got = read_up_to(&mut self.input, &mut body).map_err(ReadFailure::Io)?;
        if got < body.len() {
            return Err(ReadFailure::Torn { offset: record_at });
        }
        let computed = crc32(&body);
        if computed != stored_crc {
            return Err(ReadFailure::Corrupt {
                offset: record_at,
                reason: format!(
                    "checksum mismatch: stored {stored_crc:#010x}, computed {computed:#010x}"
                ),
            });
        }
        let seq = u64::from_be_bytes(body[..8].try_into().expect("8 bytes"));
        let trace = u64::from_be_bytes(body[8..16].try_into().expect("8 bytes"));
        let at_us = u64::from_be_bytes(body[16..24].try_into().expect("8 bytes"));
        let status = body[24];
        let req_len = u32::from_be_bytes(body[25..29].try_into().expect("4 bytes")) as usize;
        let payloads = body.len() - RECORD_FIXED;
        if req_len > payloads {
            return Err(ReadFailure::Corrupt {
                offset: record_at,
                reason: format!(
                    "request length {req_len} overruns the {payloads}-byte payload area"
                ),
            });
        }
        self.offset = record_at + (PREFIX_LEN + body.len()) as u64;
        let verdict = body.split_off(RECORD_FIXED + req_len);
        let request = body[RECORD_FIXED..].to_vec();
        Ok(Some(Record {
            seq,
            trace: TraceId::from_u64(trace),
            at_us,
            status,
            request,
            verdict,
        }))
    }
}

/// Fills as much of `buf` as the stream has, retrying `Interrupted`;
/// returns how many bytes landed (short only at EOF).
fn read_up_to(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> RecordData {
        RecordData {
            trace: TraceId::from_u64(i + 100),
            at_us: 1_700_000_000_000_000 + i * 250,
            status: (i % 6) as u8,
            request: format!("{{\"req\":{i}}}").into_bytes(),
            verdict: format!("verdict {i}").into_bytes(),
        }
    }

    #[test]
    fn records_round_trip_through_the_binary_framing() {
        let dir = std::env::temp_dir().join(format!("lxj-seg-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(segment_file_name(1));
        let mut bytes = encode_header(1).to_vec();
        for i in 0..10u64 {
            encode_record(i + 1, &sample(i), &mut bytes);
        }
        std::fs::write(&path, &bytes).unwrap();

        let mut reader = SegmentReader::open(&path, 1).unwrap();
        for i in 0..10u64 {
            let record = reader.read_record().unwrap().expect("record present");
            let data = sample(i);
            assert_eq!(record.seq, i + 1);
            assert_eq!(record.trace, data.trace);
            assert_eq!(record.at_us, data.at_us);
            assert_eq!(record.status, data.status);
            assert_eq!(record.request, data.request);
            assert_eq!(record.verdict, data.verdict);
        }
        assert!(reader.read_record().unwrap().is_none(), "clean EOF");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_file_names_round_trip_and_reject_strays() {
        assert_eq!(segment_file_name(42), "seg-00000000000000000042.lxj");
        assert_eq!(
            parse_segment_file_name(&segment_file_name(u64::MAX)),
            Some(u64::MAX)
        );
        for stray in [
            "README.md",
            "seg-12.lxj",
            "seg-abc.lxj",
            "seg-00000000000000000042.tmp",
        ] {
            assert_eq!(parse_segment_file_name(stray), None, "{stray}");
        }
    }

    #[test]
    fn record_len_matches_the_encoded_size() {
        let data = sample(7);
        let mut out = Vec::new();
        encode_record(7, &data, &mut out);
        assert_eq!(out.len() as u64, record_len(&data));
    }
}
