//! The simcore determinism suite: the same seed must produce the same
//! event trace, event-for-event, and the stepping API must observe the
//! exact schedule `run_until` executes.

use simcore::prelude::*;
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

type Trace = Rc<RefCell<Vec<(u64, usize, u64)>>>; // (time_ns, component, value)

/// A ring of gossiping components: each forwards a decremented counter to
/// its successor after an RNG-jittered delay, and re-arms a periodic
/// timer a few times. Exercises messages, timers, and per-component RNG
/// streams together.
struct Gossip {
    next: ComponentId,
    rearm: u32,
    trace: Trace,
}

impl Component for Gossip {
    fn on_start(&mut self, ctx: &mut SimContext<'_>) {
        if ctx.id().0 == 0 {
            ctx.emit(self.next, 64u64, SimDuration::from_millis(1));
        }
        ctx.set_timer(SimDuration::from_millis(7));
    }
    fn on_event(&mut self, ctx: &mut SimContext<'_>, event: Box<dyn Any>) {
        let v = *event.downcast::<u64>().expect("ring carries u64");
        self.trace
            .borrow_mut()
            .push((ctx.time().as_nanos(), ctx.id().0, v));
        if v > 0 {
            let jitter = ctx.rng().range(1, 20);
            ctx.emit(self.next, v - 1, SimDuration::from_millis(jitter));
        }
    }
    fn on_timer(&mut self, ctx: &mut SimContext<'_>, timer: TimerToken) {
        self.trace
            .borrow_mut()
            .push((ctx.time().as_nanos(), ctx.id().0, u64::MAX - timer.0));
        if self.rearm > 0 {
            self.rearm -= 1;
            let jitter = ctx.rng().range(3, 11);
            ctx.set_timer(SimDuration::from_millis(jitter));
        }
    }
}

fn build(seed: u64, ring: usize, trace: &Trace) -> Simulation {
    let mut sim = Simulation::new(seed);
    for i in 0..ring {
        sim.add_component(Gossip {
            next: ComponentId((i + 1) % ring),
            rearm: 3,
            trace: trace.clone(),
        });
    }
    sim
}

fn run_trace(seed: u64) -> (Vec<(u64, usize, u64)>, EngineCounters) {
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));
    let mut sim = build(seed, 16, &trace);
    sim.run_until(SimTime::from_secs(5));
    let t = trace.borrow().clone();
    (t, sim.counters())
}

#[test]
fn same_seed_same_event_trace() {
    let (trace_a, counters_a) = run_trace(0xfeed);
    let (trace_b, counters_b) = run_trace(0xfeed);
    assert_eq!(trace_a, trace_b, "trace must be bit-identical across runs");
    assert_eq!(counters_a, counters_b);
    assert!(
        counters_a.messages >= 64,
        "the ring actually gossiped: {counters_a:?}"
    );
}

#[test]
fn different_seed_different_trace() {
    let (trace_a, _) = run_trace(0xfeed);
    let (trace_c, _) = run_trace(0xfeee);
    assert_ne!(trace_a, trace_c, "jitter draws must depend on the seed");
}

#[test]
fn step_observes_the_same_schedule_as_run_until() {
    let trace_run: Trace = Rc::new(RefCell::new(Vec::new()));
    let mut sim = build(42, 8, &trace_run);
    sim.run_until(SimTime::from_secs(5));
    let by_run = trace_run.borrow().clone();

    let trace_step: Trace = Rc::new(RefCell::new(Vec::new()));
    let mut sim = build(42, 8, &trace_step);
    sim.start();
    while sim.now() <= SimTime::from_secs(5) && sim.step() {}
    let by_step = trace_step.borrow().clone();

    assert_eq!(by_run, by_step);
}

#[test]
fn event_queue_orders_a_shuffled_schedule() {
    // Push a deterministic but shuffled batch of (time, tag) pairs and
    // verify pops come back sorted by time with FIFO ties.
    let mut rng = SimRng::seed_from(5);
    let mut q = EventQueue::new();
    let mut expected: Vec<(u64, u64)> = Vec::new(); // (time_ms, push_index)
    for i in 0..1000u64 {
        let ms = rng.next_below(50); // heavy collision pressure
        q.push(SimTime::from_millis(ms), i);
        expected.push((ms, i));
    }
    expected.sort_by_key(|&(ms, i)| (ms, i));
    let mut popped = Vec::new();
    while let Some((at, i)) = q.pop() {
        popped.push((at.as_nanos() / 1_000_000, i));
    }
    assert_eq!(popped, expected);
}

#[test]
fn derived_component_streams_match_derive_seed_contract() {
    // The per-component stream is documented as derive(master, id):
    // verify through the public API that registration order alone (not
    // traffic) selects the stream.
    struct FirstDraw {
        out: Rc<RefCell<Vec<u64>>>,
    }
    impl Component for FirstDraw {
        fn on_start(&mut self, ctx: &mut SimContext<'_>) {
            let v = ctx.rng().next_u64();
            self.out.borrow_mut().push(v);
        }
    }
    let out = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulation::new(1234);
    for _ in 0..4 {
        sim.add_component(FirstDraw { out: out.clone() });
    }
    sim.start();
    let expected: Vec<u64> = (0..4).map(|i| SimRng::derive(1234, i).next_u64()).collect();
    assert_eq!(*out.borrow(), expected);
}
