//! The deterministic event queue: a min-heap ordered by `(time, seq)`.
//!
//! `seq` is a monotone counter assigned at push, so two events scheduled
//! for the same instant always fire in their scheduling order — the FIFO
//! tie-break every deterministic discrete-event engine needs. The payload
//! type is generic: domain simulators keep their own compact event enums
//! (no boxing on the hot path) while sharing one ordering implementation.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// Order entries by (time, seq) only — the payload never participates, so
// it needs no Ord bound and cannot perturb the schedule.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A time-ordered queue of events with deterministic FIFO tie-breaking.
///
/// ```
/// use simcore::queue::EventQueue;
/// use simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_millis(5);
/// q.push(t, "second");        // same instant…
/// q.push(t, "third");         // …fire in push order
/// q.push(SimTime::ZERO, "first");
/// assert_eq!(q.pop(), Some((SimTime::ZERO, "first")));
/// assert_eq!(q.pop(), Some((t, "second")));
/// assert_eq!(q.pop(), Some((t, "third")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("scheduled", &self.seq)
            .finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at `at`. Events pushed for the same instant
    /// pop in push order.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.payload))
    }

    /// The time of the earliest pending event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pending (not yet popped) events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (the monotone tie-break counter).
    pub fn scheduled(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for ms in [30u64, 10, 20] {
            q.push(SimTime::from_millis(ms), ms);
        }
        assert_eq!(q.pop().unwrap().1, 10);
        assert_eq!(q.pop().unwrap().1, 20);
        assert_eq!(q.pop().unwrap().1, 30);
    }

    #[test]
    fn fifo_tie_break_at_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_pushes_keep_per_instant_order() {
        let mut q = EventQueue::new();
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        q.push(b, "b0");
        q.push(a, "a0");
        q.push(b, "b1");
        q.push(a, "a1");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, ["a0", "a1", "b0", "b1"]);
    }

    #[test]
    fn counters_and_emptiness() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO + SimDuration::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled(), 2);
        assert_eq!(q.next_time(), Some(SimTime::ZERO));
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled(), 2, "scheduled counts pushes, not pops");
    }
}
