//! Simulation time: a nanosecond-resolution monotone clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from raw nanoseconds.
    pub fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Constructs from microseconds.
    pub fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Constructs from milliseconds.
    pub fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Constructs from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Raw nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as floating-point seconds (for statistics).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating duration since an earlier instant.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from raw nanoseconds.
    pub fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Constructs from microseconds.
    pub fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Constructs from milliseconds.
    pub fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Constructs from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Constructs from floating-point seconds (negative clamps to zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((secs * 1e9).round() as u64)
        }
    }

    /// Raw nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span as floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Integer multiplication.
    #[allow(clippy::should_implement_trait)] // also provided via `impl Mul<u64>` below
    pub fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_millis(1500).as_millis_f64(), 1500.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        let d = t - SimTime::from_secs(1);
        assert_eq!(d, SimDuration::from_millis(500));
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_secs(3);
        assert_eq!(t2, SimTime::from_secs(3));
    }

    #[test]
    fn saturating_subtraction() {
        let d = SimTime::from_secs(1) - SimTime::from_secs(5);
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(
            SimDuration::from_millis(2).mul(3),
            SimDuration::from_millis(6)
        );
    }
}
