//! The generic component engine: typed events, timer tokens, and
//! per-component RNG streams over the deterministic [`EventQueue`].
//!
//! A [`Simulation`] owns a flat, index-addressed table of
//! [`Component`]s. Components exchange *typed* events (any `'static`
//! value, delivered as `Box<dyn Any>` for the receiver to downcast),
//! schedule timers that return [`TimerToken`]s, and draw randomness from
//! their own [`SimRng`] stream derived as
//! `derive(master_seed, component_id)` — so one component's draws can
//! never perturb another's, and adding a component cannot shift existing
//! streams.
//!
//! Domain simulators with hot packet paths (like `netsim`) skip this
//! layer and build directly on [`EventQueue`] with their own compact
//! event enums; this engine is for new domains where per-event boxing is
//! acceptable and the component model does the bookkeeping.

use crate::queue::EventQueue;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::any::Any;

/// Index of a component in a [`Simulation`] (flat, dense, assigned in
/// registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub usize);

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifies one scheduled timer. Tokens are unique per simulation and
/// allocated in scheduling order, so they are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerToken(pub u64);

/// Behaviour attached to a component. All callbacks receive a
/// [`SimContext`] for emitting events, setting timers, and drawing from
/// the component's own RNG stream.
///
/// The `Any` supertrait lets callers recover their concrete component
/// (and its accumulated state) after a run via
/// [`Simulation::take_component_as`].
pub trait Component: Any {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut SimContext<'_>) {}
    /// Called when a typed event addressed to this component arrives.
    /// Downcast with `event.downcast::<T>()`.
    fn on_event(&mut self, _ctx: &mut SimContext<'_>, _event: Box<dyn Any>) {}
    /// Called when a timer set via [`SimContext::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut SimContext<'_>, _timer: TimerToken) {}
}

enum Payload {
    Message { to: ComponentId, data: Box<dyn Any> },
    Timer { on: ComponentId, token: TimerToken },
}

/// Counters the engine maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Events dispatched (messages + timers).
    pub events: u64,
    /// Typed messages delivered to components.
    pub messages: u64,
    /// Timers fired.
    pub timers: u64,
}

/// The interface a component uses to interact with the simulation.
pub struct SimContext<'a> {
    id: ComponentId,
    time: SimTime,
    rng: &'a mut SimRng,
    next_timer: &'a mut u64,
    pending: Vec<(SimDuration, Payload)>,
}

impl std::fmt::Debug for SimContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimContext")
            .field("id", &self.id)
            .field("time", &self.time)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl SimContext<'_> {
    /// The component this callback runs on.
    pub fn id(&self) -> ComponentId {
        self.id
    }

    /// Current simulation time.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// This component's own deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Emits a typed event to `to`, delivered after `delay`.
    pub fn emit<T: Any>(&mut self, to: ComponentId, data: T, delay: SimDuration) {
        self.pending.push((
            delay,
            Payload::Message {
                to,
                data: Box::new(data),
            },
        ));
    }

    /// Schedules `on_timer` on this component after `delay`, returning
    /// the token that will identify the firing.
    pub fn set_timer(&mut self, delay: SimDuration) -> TimerToken {
        let token = TimerToken(*self.next_timer);
        *self.next_timer += 1;
        self.pending
            .push((delay, Payload::Timer { on: self.id, token }));
        token
    }
}

/// The generic deterministic discrete-event simulation.
///
/// See the [module docs](self) for the determinism contract and the
/// crate docs for a runnable example.
pub struct Simulation {
    time: SimTime,
    queue: EventQueue<Payload>,
    components: Vec<Option<Box<dyn Component>>>,
    rngs: Vec<SimRng>,
    master_seed: u64,
    next_timer: u64,
    counters: EngineCounters,
    started: bool,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("time", &self.time)
            .field("components", &self.components.len())
            .field("pending", &self.queue.len())
            .field("counters", &self.counters)
            .finish()
    }
}

impl Simulation {
    /// Creates an empty simulation with a deterministic master seed.
    pub fn new(seed: u64) -> Self {
        Simulation {
            time: SimTime::ZERO,
            queue: EventQueue::new(),
            components: Vec::new(),
            rngs: Vec::new(),
            master_seed: seed,
            next_timer: 0,
            counters: EngineCounters::default(),
            started: false,
        }
    }

    /// Registers a component, returning its id. The component's RNG
    /// stream is `SimRng::derive(master_seed, id)` — a pure function of
    /// the seed and the registration position.
    pub fn add_component<C: Component + 'static>(&mut self, component: C) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(Some(Box::new(component)));
        self.rngs
            .push(SimRng::derive(self.master_seed, id.0 as u64));
        id
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Aggregate engine counters.
    pub fn counters(&self) -> EngineCounters {
        self.counters
    }

    /// Pending (scheduled, not yet dispatched) events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Injects a typed event from outside the simulation, delivered to
    /// `to` after `delay` from the current time.
    pub fn emit<T: Any>(&mut self, to: ComponentId, data: T, delay: SimDuration) {
        self.queue.push(
            self.time + delay,
            Payload::Message {
                to,
                data: Box::new(data),
            },
        );
    }

    /// Immutable view of a component as its concrete type.
    pub fn component_as<C: Component>(&self, id: ComponentId) -> Option<&C> {
        let c = self.components[id.0].as_deref()?;
        (c as &dyn Any).downcast_ref::<C>()
    }

    /// Takes a component out and downcasts it to its concrete type,
    /// returning `None` (and leaving the slot passive) on type mismatch.
    pub fn take_component_as<C: Component>(&mut self, id: ComponentId) -> Option<Box<C>> {
        let c = self.components[id.0].take()?;
        let any: Box<dyn Any> = c;
        any.downcast::<C>().ok()
    }

    /// Runs `on_start` for every component (idempotent; also invoked by
    /// the first `run_until`/`step`).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.components.len() {
            self.with_component(ComponentId(i), |c, ctx| c.on_start(ctx));
        }
    }

    /// Dispatches the earliest pending event, advancing time to it.
    /// Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start();
        let Some((at, payload)) = self.queue.pop() else {
            return false;
        };
        self.time = at;
        self.counters.events += 1;
        self.dispatch(payload);
        true
    }

    /// Processes events until the queue empties or `deadline` passes.
    /// Time advances to `deadline` (or further events' times).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start();
        while let Some(at) = self.queue.next_time() {
            if at > deadline {
                break;
            }
            let (at, payload) = self.queue.pop().expect("peeked");
            self.time = at;
            self.counters.events += 1;
            self.dispatch(payload);
        }
        if self.time < deadline {
            self.time = deadline;
        }
    }

    /// Drains every remaining event (use with care: components that
    /// reschedule forever will never drain).
    pub fn run_to_completion(&mut self) {
        self.start();
        while self.step() {}
    }

    fn dispatch(&mut self, payload: Payload) {
        match payload {
            Payload::Message { to, data } => {
                self.counters.messages += 1;
                self.with_component(to, |c, ctx| c.on_event(ctx, data));
            }
            Payload::Timer { on, token } => {
                self.counters.timers += 1;
                self.with_component(on, |c, ctx| c.on_timer(ctx, token));
            }
        }
    }

    /// Runs a component callback and flushes what it scheduled.
    fn with_component<F>(&mut self, id: ComponentId, f: F)
    where
        F: FnOnce(&mut dyn Component, &mut SimContext<'_>),
    {
        let Some(mut component) = self.components[id.0].take() else {
            return; // passive slot (taken out or never attached)
        };
        let mut ctx = SimContext {
            id,
            time: self.time,
            rng: &mut self.rngs[id.0],
            next_timer: &mut self.next_timer,
            pending: Vec::new(),
        };
        f(component.as_mut(), &mut ctx);
        let pending = ctx.pending;
        self.components[id.0] = Some(component);
        for (delay, payload) in pending {
            self.queue.push(self.time + delay, payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    type Trace = Rc<RefCell<Vec<(SimTime, String)>>>;

    /// Records every callback into a shared trace; pings a peer on start
    /// and echoes typed events back until a hop budget runs out.
    struct Tracer {
        peer: Option<ComponentId>,
        hops: u32,
        trace: Trace,
    }

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Ping(u32);

    impl Component for Tracer {
        fn on_start(&mut self, ctx: &mut SimContext<'_>) {
            self.trace
                .borrow_mut()
                .push((ctx.time(), format!("{} start", ctx.id())));
            if let Some(peer) = self.peer {
                ctx.emit(peer, Ping(self.hops), SimDuration::from_millis(10));
            }
            ctx.set_timer(SimDuration::from_millis(5));
        }
        fn on_event(&mut self, ctx: &mut SimContext<'_>, event: Box<dyn Any>) {
            let ping = event.downcast::<Ping>().expect("only pings are sent");
            self.trace
                .borrow_mut()
                .push((ctx.time(), format!("{} ping {}", ctx.id(), ping.0)));
            if ping.0 > 0 {
                if let Some(peer) = self.peer {
                    let jitter = ctx.rng().range(1, 5);
                    ctx.emit(peer, Ping(ping.0 - 1), SimDuration::from_millis(jitter));
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut SimContext<'_>, timer: TimerToken) {
            self.trace
                .borrow_mut()
                .push((ctx.time(), format!("{} timer {}", ctx.id(), timer.0)));
        }
    }

    fn trace_run(seed: u64) -> (Vec<(SimTime, String)>, EngineCounters) {
        let trace: Trace = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(seed);
        let a = ComponentId(0);
        let b = ComponentId(1);
        sim.add_component(Tracer {
            peer: Some(b),
            hops: 3,
            trace: trace.clone(),
        });
        sim.add_component(Tracer {
            peer: Some(a),
            hops: 0,
            trace: trace.clone(),
        });
        sim.run_until(SimTime::from_secs(1));
        let t = trace.borrow().clone();
        (t, sim.counters())
    }

    #[test]
    fn same_seed_identical_event_trace() {
        let (trace_a, counters_a) = trace_run(7);
        let (trace_b, counters_b) = trace_run(7);
        assert_eq!(trace_a, trace_b);
        assert_eq!(counters_a, counters_b);
        assert!(counters_a.messages >= 4, "ping chain ran: {counters_a:?}");
        assert_eq!(
            counters_a.events,
            counters_a.messages + counters_a.timers,
            "events partition into messages and timers"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        // Jitter draws differ, so delivery times must differ somewhere.
        let (trace_a, _) = trace_run(7);
        let (trace_c, _) = trace_run(8);
        assert_ne!(trace_a, trace_c);
    }

    #[test]
    fn simultaneous_events_fire_in_emit_order() {
        struct Collector {
            seen: Rc<RefCell<Vec<u32>>>,
        }
        impl Component for Collector {
            fn on_event(&mut self, _ctx: &mut SimContext<'_>, event: Box<dyn Any>) {
                self.seen
                    .borrow_mut()
                    .push(*event.downcast::<u32>().unwrap());
            }
        }
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(1);
        let c = sim.add_component(Collector { seen: seen.clone() });
        for i in 0..50u32 {
            sim.emit(c, i, SimDuration::from_millis(10)); // all at t=10ms
        }
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(*seen.borrow(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn per_component_rng_streams_are_isolated() {
        struct Drawer {
            draws: u32,
            out: Rc<RefCell<Vec<u64>>>,
        }
        impl Component for Drawer {
            fn on_start(&mut self, ctx: &mut SimContext<'_>) {
                for _ in 0..self.draws {
                    let v = ctx.rng().next_u64();
                    self.out.borrow_mut().push(v);
                }
            }
        }
        // Component 1 draws the same stream whether component 0 draws 0
        // or 100 values — streams are indexed, not interleaved.
        let run = |first_draws: u32| {
            let out = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Simulation::new(99);
            sim.add_component(Drawer {
                draws: first_draws,
                out: Rc::new(RefCell::new(Vec::new())),
            });
            sim.add_component(Drawer {
                draws: 4,
                out: out.clone(),
            });
            sim.start();
            let v = out.borrow().clone();
            v
        };
        assert_eq!(run(0), run(100));
        // And the stream is exactly the derived one.
        let mut expected = SimRng::derive(99, 1);
        assert_eq!(
            run(0),
            (0..4).map(|_| expected.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn timer_tokens_unique_and_fire_in_time_order() {
        struct Timers {
            tokens: Rc<RefCell<Vec<u64>>>,
            fired: Rc<RefCell<Vec<u64>>>,
        }
        impl Component for Timers {
            fn on_start(&mut self, ctx: &mut SimContext<'_>) {
                let t1 = ctx.set_timer(SimDuration::from_millis(30));
                let t2 = ctx.set_timer(SimDuration::from_millis(10));
                let t3 = ctx.set_timer(SimDuration::from_millis(20));
                self.tokens.borrow_mut().extend([t1.0, t2.0, t3.0]);
            }
            fn on_timer(&mut self, _ctx: &mut SimContext<'_>, timer: TimerToken) {
                self.fired.borrow_mut().push(timer.0);
            }
        }
        let tokens = Rc::new(RefCell::new(Vec::new()));
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(3);
        sim.add_component(Timers {
            tokens: tokens.clone(),
            fired: fired.clone(),
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(*tokens.borrow(), vec![0, 1, 2], "tokens allocated in order");
        assert_eq!(*fired.borrow(), vec![1, 2, 0], "fired in time order");
        assert_eq!(sim.counters().timers, 3);
    }

    #[test]
    fn step_advances_one_event_at_a_time() {
        struct Noop;
        impl Component for Noop {}
        let mut sim = Simulation::new(1);
        let c = sim.add_component(Noop);
        sim.emit(c, 1u8, SimDuration::from_millis(1));
        sim.emit(c, 2u8, SimDuration::from_millis(2));
        assert!(sim.step());
        assert_eq!(sim.now(), SimTime::from_millis(1));
        assert_eq!(sim.pending_events(), 1);
        assert!(sim.step());
        assert!(!sim.step(), "queue drained");
        assert_eq!(sim.counters().events, 2);
    }

    #[test]
    fn run_until_advances_time_even_when_idle() {
        let mut sim = Simulation::new(1);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn take_component_recovers_state() {
        struct Counter {
            n: u64,
        }
        impl Component for Counter {
            fn on_event(&mut self, _ctx: &mut SimContext<'_>, _event: Box<dyn Any>) {
                self.n += 1;
            }
        }
        let mut sim = Simulation::new(1);
        let c = sim.add_component(Counter { n: 0 });
        sim.emit(c, (), SimDuration::ZERO);
        sim.emit(c, (), SimDuration::ZERO);
        sim.run_to_completion();
        assert_eq!(sim.component_as::<Counter>(c).unwrap().n, 2);
        let boxed = sim.take_component_as::<Counter>(c).unwrap();
        assert_eq!(boxed.n, 2);
        // Slot is now passive: events to it are dropped silently.
        sim.emit(c, (), SimDuration::ZERO);
        sim.run_to_completion();
        assert!(sim.component_as::<Counter>(c).is_none());
    }
}
