//! Deterministic random numbers: one shared SplitMix64 and the
//! xoshiro256++ [`SimRng`] with the distributions the simulators need.
//!
//! The whole workspace's experiments are seeded, so identical runs produce
//! identical packets, delays, and results — a requirement for regenerable
//! tables. Every derived stream funnels through the single [`splitmix64`]
//! below: per-trial seeds ([`derive_seed`], re-exported as
//! `trials::derive_seed`), per-stream RNG construction
//! ([`SimRng::derive`]), and seed-to-state expansion
//! ([`SimRng::seed_from`]). The exact output streams are pinned by golden
//! tests — downstream experiment outputs depend on them bit-for-bit.

/// One SplitMix64 step: advances `state` by the 64-bit golden ratio and
/// returns the finalized value.
///
/// This is the workspace's *only* SplitMix64 — `netsim` seeds xoshiro
/// state from it and `trials` derives per-trial seeds from it, so the two
/// can never drift apart.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Derives the RNG seed for one stream (trial, component, …) from a
/// master seed.
///
/// One SplitMix64 round over the `(master, stream)` pair: adjacent stream
/// indices land on well-separated, statistically independent seeds, and
/// the mapping is a pure function — the foundation of the trial runner's
/// worker-count-independence guarantee and of per-component stream
/// isolation in [`crate::sim::Simulation`].
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut s = master.wrapping_add(stream.wrapping_mul(0xbf58476d1ce4e5b9));
    splitmix64(&mut s)
}

/// Deterministic pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates an RNG from a seed. Equal seeds yield equal streams.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (rejection-free modulo with
    /// widening multiply; slight bias is irrelevant for simulation).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_below(hi - lo)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponential with given rate (mean 1/rate), for Poisson arrivals.
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        let u = 1.0 - self.next_f64(); // (0, 1]
        -u.ln() / rate
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Pareto with scale `xm` and shape `alpha` (heavy-tailed on/off
    /// periods).
    ///
    /// # Panics
    ///
    /// Panics if `xm <= 0` or `alpha <= 0`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(
            xm > 0.0 && alpha > 0.0,
            "pareto parameters must be positive"
        );
        let u = 1.0 - self.next_f64();
        xm / u.powf(1.0 / alpha)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_below(slice.len() as u64) as usize])
        }
    }

    /// Derives an independent child RNG (for per-node streams).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }

    /// Constructs the RNG for stream `stream` of a master seed — the
    /// cheap per-trial constructor the parallel trial runner needs:
    /// `derive(seed, t)` is a pure function of its arguments, so trial
    /// `t` gets the same stream no matter which worker thread builds it,
    /// and adjacent stream indices land on statistically independent
    /// states.
    pub fn derive(seed: u64, stream: u64) -> SimRng {
        let mut sm = seed;
        let mixed = splitmix64(&mut sm) ^ stream.wrapping_mul(0x9e3779b97f4a7c15);
        SimRng::seed_from(mixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SimRng::seed_from(9);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn range_inclusive_exclusive() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1_000 {
            let x = r.range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_approximates() {
        let mut r = SimRng::seed_from(11);
        let rate = 4.0;
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments_approximate() {
        let mut r = SimRng::seed_from(13);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn pareto_exceeds_scale() {
        let mut r = SimRng::seed_from(17);
        for _ in 0..1_000 {
            assert!(r.pareto(1.5, 2.0) >= 1.5);
        }
    }

    #[test]
    fn chance_frequency() {
        let mut r = SimRng::seed_from(23);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(29);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut r = SimRng::seed_from(31);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert!(r.choose(&[1, 2, 3]).is_some());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::seed_from(37);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SimRng::seed_from(1).next_below(0);
    }

    #[test]
    fn derive_is_pure_and_streams_differ() {
        let mut a = SimRng::derive(42, 3);
        let mut b = SimRng::derive(42, 3);
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::derive(42, 4);
        let mut d = SimRng::derive(43, 3);
        let first = SimRng::derive(42, 3).next_u64();
        assert_ne!(first, c.next_u64());
        assert_ne!(first, d.next_u64());
    }

    /// Golden streams: these literals were captured from the pre-simcore
    /// implementations in `netsim::rng` and `trials::derive_seed`. Every
    /// experiment table in the repo is downstream of these exact values —
    /// a change here silently invalidates all recorded results.
    mod golden {
        use super::*;

        #[test]
        fn splitmix64_stream_from_zero() {
            let mut s = 0u64;
            assert_eq!(splitmix64(&mut s), 0xe220a8397b1dcdaf);
            assert_eq!(splitmix64(&mut s), 0x6e789e6aa1b965f4);
        }

        #[test]
        fn derive_seed_matches_pre_dedupe_trials_stream() {
            // Captured from trials::derive_seed before the dedupe into
            // simcore (it inlined the same finalizer).
            assert_eq!(derive_seed(0, 0), 0xe220a8397b1dcdaf);
            assert_eq!(derive_seed(0, 1), 0xe4bacea5c4b9b499);
            assert_eq!(derive_seed(0x2a, 7), 0xbce658309f1c4fac);
            assert_eq!(derive_seed(0xa11ce, 3), 0x58973988a7d60e77);
            assert_eq!(derive_seed(u64::MAX, 1000), 0x5b74cd6d9f079608);
        }

        #[test]
        fn simrng_seed_from_matches_pre_move_netsim_stream() {
            let mut r = SimRng::seed_from(0);
            assert_eq!(
                [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()],
                [
                    0x53175d61490b23df,
                    0x61da6f3dc380d507,
                    0x5c0fdf91ec9a7bfc,
                    0x02eebf8c3bbe5e1a,
                ]
            );
            let mut r = SimRng::seed_from(12345);
            assert_eq!(
                [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()],
                [
                    0x8d948a82def8a568,
                    0x3477f953796702a0,
                    0x15caa2fce6db8d69,
                    0x2cef8853c20c6dd0,
                ]
            );
        }

        #[test]
        fn simrng_derive_matches_pre_move_netsim_stream() {
            let mut r = SimRng::derive(99, 7);
            assert_eq!(
                [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()],
                [
                    0x9fa5da228a7c576f,
                    0x72936e1fc13132c8,
                    0x7a05928d54881a08,
                    0x028ae9fad3803b90,
                ]
            );
        }

        #[test]
        fn next_f64_matches_pre_move_netsim_stream() {
            let mut r = SimRng::seed_from(1);
            assert_eq!(r.next_f64(), 0.8116121588818848);
            assert_eq!(r.next_f64(), 0.7471047161582187);
            assert_eq!(r.next_f64(), 0.10015090353378375);
        }
    }
}
