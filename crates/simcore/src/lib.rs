//! # simcore
//!
//! A generic, dependency-free, deterministic discrete-event simulation
//! engine — the bottom layer of the workspace's simulator stack:
//!
//! ```text
//! simcore            (this crate: time, RNG streams, event queue, components)
//!   └── netsim       (network domain: packets, links, routing, capture taps)
//!         ├── p2psim  (Gnutella / OneSwarm overlays, timing attack)
//!         └── anonsim (anonymizing proxy chains)
//! ```
//!
//! The engine makes one promise: **a simulation is a pure function of its
//! seed and configuration.** Three mechanisms enforce it:
//!
//! * **Total event order** ([`queue::EventQueue`]): events are ordered by
//!   `(time, seq)` where `seq` is assigned at push — simultaneous events
//!   fire in exactly their scheduling order, on every run.
//! * **One shared SplitMix64** ([`rng`]): every derived stream in the
//!   workspace — per-trial seeds ([`rng::derive_seed`]), per-component
//!   streams, the xoshiro256++ state expansion of [`rng::SimRng`] — comes
//!   from the single [`rng::splitmix64`] implementation, pinned by golden
//!   stream tests.
//! * **Per-component RNG streams** ([`sim::Simulation`]): each component
//!   draws from its own `derive(master_seed, component_id)` stream, so
//!   adding or reordering *other* components' draws cannot perturb it.
//!
//! Two layers are exposed. Domain simulators that need tight control over
//! their event payloads (like `netsim`) build directly on
//! [`queue::EventQueue`] + [`time`] + [`rng`]. New domains can instead
//! implement [`sim::Component`] and let [`sim::Simulation`] own dispatch,
//! timers, and per-component RNG streams.
//!
//! ## Example
//!
//! ```
//! use simcore::prelude::*;
//!
//! struct Ping { peer: Option<ComponentId>, seen: u64 }
//! impl Component for Ping {
//!     fn on_start(&mut self, ctx: &mut SimContext<'_>) {
//!         if let Some(peer) = self.peer {
//!             ctx.emit(peer, "ping", SimDuration::from_millis(5));
//!         }
//!     }
//!     fn on_event(&mut self, _ctx: &mut SimContext<'_>, event: Box<dyn std::any::Any>) {
//!         if event.downcast::<&str>().is_ok() {
//!             self.seen += 1;
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let b = sim.add_component(Ping { peer: None, seen: 0 });
//! let _a = sim.add_component(Ping { peer: Some(b), seen: 0 });
//! sim.run_until(SimTime::from_secs(1));
//! assert_eq!(sim.component_as::<Ping>(b).unwrap().seen, 1);
//! assert_eq!(sim.counters().messages, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod queue;
pub mod rng;
pub mod sim;
pub mod time;

/// Commonly used items, importable with `use simcore::prelude::*`.
pub mod prelude {
    pub use crate::queue::EventQueue;
    pub use crate::rng::{derive_seed, splitmix64, SimRng};
    pub use crate::sim::{
        Component, ComponentId, EngineCounters, SimContext, Simulation, TimerToken,
    };
    pub use crate::time::{SimDuration, SimTime};
}
