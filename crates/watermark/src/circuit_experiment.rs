//! The Tor-flavoured variant of E-IV-B: the watermarked flow crosses a
//! **three-hop onion circuit** whose relays jitter (and optionally batch)
//! timing — the paper's "anonymous communication network system such as
//! Tor or Anonymizer" in its stronger form.
//!
//! The legal posture is unchanged — the detector consumes rate-only taps
//! — but the timing perturbation now compounds across three relays, and
//! payloads are layered ciphertext end to end.

use crate::baseline::identify_by_correlation;
use crate::detect::{Detection, Detector};
use crate::embed::{EmbedConfig, WatermarkedSource};
use crate::experiment::WatermarkExperimentConfig;
use crate::pn::PnCode;
use anonsim::relay::{Circuit, OnionRelay};
use anonsim::transform::FlowTransform;
use netsim::prelude::*;

/// Outcome of a circuit trial (same shape as the proxy trial).
#[derive(Debug, Clone)]
pub struct CircuitTrialOutcome {
    /// The targeted suspect index.
    pub true_suspect: usize,
    /// Per-suspect detections.
    pub detections: Vec<Detection>,
    /// The despreader's identification.
    pub identified: Option<usize>,
    /// The passive aggregate-correlation pick.
    pub baseline_identified: Option<usize>,
}

impl CircuitTrialOutcome {
    /// Whether the watermark identified the right suspect.
    pub fn watermark_correct(&self) -> bool {
        self.identified == Some(self.true_suspect)
    }
}

/// Countermeasure knobs for the circuit variant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CircuitOptions {
    /// Mix-style batching interval at the middle relay (ms).
    pub batching_ms: Option<u64>,
    /// Fixed-size cell payload (bytes) — defeats size correlation; the
    /// watermark rides on packet rate, so it should survive.
    pub fixed_cell_payload: Option<usize>,
}

/// Runs one watermark trial through a three-hop onion circuit.
///
/// Relay jitter is taken from `config.proxy_jitter_ms` (applied at *each*
/// of the three relays). When `batching_ms` is set, the middle relay
/// additionally batches departures on that interval (mix behaviour).
pub fn run_circuit_trial(
    config: &WatermarkExperimentConfig,
    batching_ms: Option<u64>,
    trial: u64,
) -> CircuitTrialOutcome {
    run_circuit_trial_with(
        config,
        CircuitOptions {
            batching_ms,
            fixed_cell_payload: None,
        },
        trial,
    )
}

/// Like [`run_circuit_trial`] with full countermeasure options.
pub fn run_circuit_trial_with(
    config: &WatermarkExperimentConfig,
    options: CircuitOptions,
    trial: u64,
) -> CircuitTrialOutcome {
    let batching_ms = options.batching_ms;
    let seed = config.seed ^ trial.wrapping_mul(0x517c_c1b7_2722_0a95);
    let mut rng = SimRng::seed_from(seed);
    let true_suspect = rng.next_below(config.suspects as u64) as usize;

    // Topology: accounts → gateway → r1 → r2 → r3 → suspects; cross
    // sources at each suspect.
    let mut topo = Topology::new();
    let gateway = topo.add_node();
    let r1 = topo.add_node();
    let r2 = topo.add_node();
    let r3 = topo.add_node();
    topo.connect(gateway, r1, SimDuration::from_millis(10));
    topo.connect(r1, r2, SimDuration::from_millis(15));
    topo.connect(r2, r3, SimDuration::from_millis(15));
    let mut accounts = Vec::new();
    let mut suspects = Vec::new();
    let mut cross_sources = Vec::new();
    for _ in 0..config.suspects {
        let a = topo.add_node();
        topo.connect(a, gateway, SimDuration::from_millis(2));
        accounts.push(a);
        let s = topo.add_node();
        let c = topo.add_node();
        topo.connect(r3, s, SimDuration::from_millis(20));
        topo.connect(c, s, SimDuration::from_millis(5));
        suspects.push(s);
        cross_sources.push(c);
    }

    let mut sim = Simulator::new(topo, seed ^ 0x0c1c);

    // Taps.
    let mut taps = Vec::new();
    for &s in &suspects {
        taps.push(sim.add_tap(Tap::new(
            TapPoint::Node(s),
            CaptureScope::RateOnly,
            CaptureFilter::any(),
        )));
    }
    let gateway_tap = sim.add_tap(Tap::new(
        TapPoint::Node(gateway),
        CaptureScope::RateOnly,
        CaptureFilter::any(),
    ));

    // Relays with per-hop jitter; the middle relay optionally batches.
    let (jlo, jhi) = config.proxy_jitter_ms;
    let keys = [0xaaaa_u64 ^ seed, 0xbbbb ^ seed, 0xcccc ^ seed];
    sim.set_protocol(
        r1,
        OnionRelay::new(keys[0], FlowTransform::jitter(jlo, jhi)),
    );
    let middle_transform = match batching_ms {
        Some(ms) => FlowTransform::batching(SimDuration::from_millis(ms)),
        None => FlowTransform::jitter(jlo, jhi),
    };
    sim.set_protocol(r2, OnionRelay::new(keys[1], middle_transform));
    sim.set_protocol(
        r3,
        OnionRelay::new(keys[2], FlowTransform::jitter(jlo, jhi)),
    );

    // One onion-wrapped flow per account; the target's is watermarked.
    let code = PnCode::m_sequence(config.code_degree, (seed as u32) | 1);
    let chip = SimDuration::from_millis(config.chip_ms);
    let mut signal = SimDuration::ZERO;
    for (i, &a) in accounts.iter().enumerate() {
        let is_target = i == true_suspect;
        let embed = if is_target {
            EmbedConfig {
                code: code.clone(),
                chip_duration: chip,
                rate_high_pps: config.rate_high_pps,
                rate_low_pps: config.rate_low_pps,
                payload_len: config.payload_len,
                repetitions: 1,
            }
        } else {
            EmbedConfig {
                code: PnCode::from_chips(vec![1; code.len()]),
                chip_duration: chip,
                rate_high_pps: config.mean_rate_pps(),
                rate_low_pps: config.mean_rate_pps(),
                payload_len: config.payload_len,
                repetitions: 1,
            }
        };
        signal = embed.signal_duration();
        let mut circuit = Circuit::new(vec![(r1, keys[0]), (r2, keys[1]), (r3, keys[2])]);
        if let Some(size) = options.fixed_cell_payload {
            circuit = circuit.with_fixed_cell_payload(size);
        }
        let suspect = suspects[i];
        let wrapper =
            Box::new(move |raw: &[u8]| (circuit.entry(), circuit.make_cell(suspect, raw)));
        sim.set_protocol(
            a,
            WatermarkedSource::with_wrapper(embed, FlowId(1 + i as u64), wrapper),
        );
    }

    for (i, &c) in cross_sources.iter().enumerate() {
        sim.set_protocol(
            c,
            PoissonSource::new(
                suspects[i],
                FlowId(100 + i as u64),
                512,
                config.cross_rate_pps,
            ),
        );
    }

    sim.run_until(SimTime::ZERO + signal + SimDuration::from_secs(3));

    let fine_bin = SimDuration::from_millis(config.chip_ms / config.oversample as u64);
    let n_bins = code.len() * config.oversample + 4 * config.oversample;
    let detector = Detector::new(
        code.clone(),
        config.oversample,
        2 * config.oversample,
        Detector::sigma_threshold(code.len(), config.threshold_sigma),
    );
    let mut detections = Vec::new();
    let mut series = Vec::new();
    for &t in &taps {
        let s = sim.tap(t).rate_series(SimTime::ZERO, fine_bin, n_bins);
        detections.push(detector.detect(&s));
        series.push(s);
    }
    let identified = detections
        .iter()
        .enumerate()
        .filter(|(_, d)| d.detected)
        .max_by(|a, b| {
            a.1.statistic
                .abs()
                .partial_cmp(&b.1.statistic.abs())
                .expect("finite")
        })
        .map(|(i, _)| i);
    let gateway_series = sim
        .tap(gateway_tap)
        .rate_series(SimTime::ZERO, fine_bin, n_bins);
    let baseline_identified =
        identify_by_correlation(&gateway_series, &series, 2 * config.oversample).map(|(i, _)| i);

    CircuitTrialOutcome {
        true_suspect,
        detections,
        identified,
        baseline_identified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> WatermarkExperimentConfig {
        WatermarkExperimentConfig {
            suspects: 4,
            code_degree: 7,
            chip_ms: 300,
            ..WatermarkExperimentConfig::default()
        }
    }

    #[test]
    fn watermark_survives_three_hop_circuit() {
        let outcome = run_circuit_trial(&quick_config(), None, 1);
        assert!(
            outcome.watermark_correct(),
            "true {} identified {:?} stats {:?}",
            outcome.true_suspect,
            outcome.identified,
            outcome
                .detections
                .iter()
                .map(|d| d.statistic)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn watermark_survives_mix_batching() {
        // Batching at 100 ms quantizes departures well below the 300 ms
        // chip — the coarse rate modulation survives.
        let outcome = run_circuit_trial(&quick_config(), Some(100), 2);
        assert!(
            outcome.watermark_correct(),
            "stats {:?}",
            outcome
                .detections
                .iter()
                .map(|d| d.statistic)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn circuit_trials_deterministic() {
        let a = run_circuit_trial(&quick_config(), None, 3);
        let b = run_circuit_trial(&quick_config(), None, 3);
        assert_eq!(a.true_suspect, b.true_suspect);
        assert_eq!(a.identified, b.identified);
    }
}

#[cfg(test)]
mod padding_tests {
    use super::*;

    #[test]
    fn watermark_survives_fixed_size_cells() {
        // Padding every cell to a fixed size defeats size correlation but
        // not rate modulation — the watermark rides on packet counts.
        let cfg = WatermarkExperimentConfig {
            suspects: 4,
            code_degree: 7,
            chip_ms: 300,
            ..WatermarkExperimentConfig::default()
        };
        let outcome = run_circuit_trial_with(
            &cfg,
            CircuitOptions {
                batching_ms: None,
                fixed_cell_payload: Some(1024),
            },
            4,
        );
        assert!(
            outcome.watermark_correct(),
            "stats {:?}",
            outcome
                .detections
                .iter()
                .map(|d| d.statistic)
                .collect::<Vec<_>>()
        );
    }
}
