//! Population-scale watermark detection: one simulation, one watermarked
//! account, and a *whole population* of candidate suspects despread
//! simultaneously.
//!
//! The per-trial harness in [`experiment`](crate::experiment) runs a few
//! suspects per trial and averages over many trials. The population run
//! answers the complementary §IV-B question: when the seized server hosts
//! tens of thousands of accounts, does despreading every candidate's
//! rate-only observation still single out the one watermarked flow? The
//! non-target suspects form an *empirical null distribution* measured in
//! the very same run — the separation between the target's statistic and
//! the null tail is the population-scale analogue of the ROC sweep.
//!
//! Scale comes from the bounded-state simulator core: node state is flat,
//! routing needs one cached BFS (every account addresses the proxy), and
//! capture taps are indexed by attachment point — so a 100k-node overlay
//! (33k+ suspects) runs in seconds. Parameters default smaller than the
//! per-trial harness (shorter code, faster chips, lower rates) to keep
//! population runs event-bounded; detection headroom at these settings is
//! still orders of magnitude.

use crate::detect::{Detection, Detector};
use crate::embed::{EmbedConfig, WatermarkedSource};
use crate::pn::PnCode;
use anonsim::proxy::{wrap_for_proxy, AnonymizerProxy};
use anonsim::transform::FlowTransform;
use netsim::prelude::*;

/// Parameters of one population-scale watermark run.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Total overlay size in nodes. Each suspect costs three nodes
    /// (account, suspect, cross-traffic source) plus the shared gateway
    /// and proxy; the built overlay is the largest `2 + 3·k ≤ nodes`.
    pub nodes: usize,
    /// PN-code degree (length = 2^degree − 1).
    pub code_degree: u32,
    /// Chip duration in milliseconds.
    pub chip_ms: u64,
    /// Packet rate during +1 chips.
    pub rate_high_pps: f64,
    /// Packet rate during −1 chips.
    pub rate_low_pps: f64,
    /// Payload bytes per served packet.
    pub payload_len: usize,
    /// Proxy jitter in milliseconds `[lo, hi)`.
    pub proxy_jitter_ms: (u64, u64),
    /// Poisson cross-traffic rate into each suspect (packets/second).
    pub cross_rate_pps: f64,
    /// Fine bins per chip for the rate observation.
    pub oversample: usize,
    /// Detection threshold in sigmas (of the analytic null).
    pub threshold_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            nodes: 100_000,
            code_degree: 6,
            chip_ms: 400,
            rate_high_pps: 40.0,
            rate_low_pps: 10.0,
            payload_len: 256,
            proxy_jitter_ms: (5, 30),
            cross_rate_pps: 1.0,
            oversample: 2,
            threshold_sigma: 4.0,
            seed: 0xbeef,
        }
    }
}

impl PopulationConfig {
    /// Candidate suspects the configured overlay size supports.
    pub fn suspects(&self) -> usize {
        ((self.nodes.saturating_sub(2)) / 3).max(2)
    }

    /// Overlay nodes actually built (`2 + 3 · suspects`).
    pub fn built_nodes(&self) -> usize {
        2 + 3 * self.suspects()
    }

    /// The mean service rate, used for unwatermarked account flows.
    pub fn mean_rate_pps(&self) -> f64 {
        0.5 * (self.rate_high_pps + self.rate_low_pps)
    }
}

/// What one population run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationResult {
    /// Overlay nodes actually built.
    pub nodes: usize,
    /// Candidate suspects despread.
    pub suspects: usize,
    /// Ground truth: the watermarked account's index.
    pub true_suspect: usize,
    /// The suspect the despreader identified (highest statistic among
    /// detections), if any cleared the threshold.
    pub identified: Option<usize>,
    /// The target's despreading statistic (absolute value).
    pub target_statistic: f64,
    /// Mean |statistic| over the non-target population (empirical null).
    pub null_mean_abs: f64,
    /// Max |statistic| over the non-target population (empirical null
    /// tail — the statistic the target must beat).
    pub null_max_abs: f64,
    /// Non-target suspects whose statistic cleared the threshold.
    pub false_positives: usize,
    /// Simulator events processed (throughput axis).
    pub sim_events: u64,
    /// Packets delivered end-to-end.
    pub delivered: u64,
}

impl PopulationResult {
    /// Whether despreading singled out the watermarked account.
    pub fn correct(&self) -> bool {
        self.identified == Some(self.true_suspect)
    }

    /// Target statistic over the empirical null tail (`> 1` means the
    /// target beats every non-target candidate).
    pub fn separation(&self) -> f64 {
        if self.null_max_abs == 0.0 {
            f64::INFINITY
        } else {
            self.target_statistic / self.null_max_abs
        }
    }
}

/// Runs one population-scale watermark detection end to end.
///
/// Deterministic: a pure function of `config` (including the seed).
pub fn run_population(config: &PopulationConfig) -> PopulationResult {
    let suspects_n = config.suspects();
    let seed = config.seed;
    let mut rng = SimRng::seed_from(seed);
    let true_suspect = rng.next_below(suspects_n as u64) as usize;

    // Topology: account sources → gateway → proxy → suspects, plus a
    // cross-traffic source per suspect (same shape as the per-trial
    // harness, scaled out).
    let mut topo = Topology::new();
    let gateway = topo.add_node();
    let proxy = topo.add_node();
    topo.connect(gateway, proxy, SimDuration::from_millis(10));
    let mut accounts = Vec::with_capacity(suspects_n);
    let mut suspects = Vec::with_capacity(suspects_n);
    let mut cross_sources = Vec::with_capacity(suspects_n);
    for _ in 0..suspects_n {
        let a = topo.add_node();
        topo.connect(a, gateway, SimDuration::from_millis(2));
        accounts.push(a);
        let s = topo.add_node();
        let c = topo.add_node();
        topo.connect(proxy, s, SimDuration::from_millis(20));
        topo.connect(c, s, SimDuration::from_millis(5));
        suspects.push(s);
        cross_sources.push(c);
    }
    let nodes = topo.node_count();

    let mut sim = Simulator::new(topo, seed ^ 0xd15_ea5e);

    // Rate-only taps at every suspect: the whole population is observed
    // at pen/trap scope. (No gateway tap — the aggregate-egress baseline
    // is a per-trial comparison, not a population observable.)
    let mut taps = Vec::with_capacity(suspects_n);
    for &s in &suspects {
        taps.push(sim.add_tap(Tap::new(
            TapPoint::Node(s),
            CaptureScope::RateOnly,
            CaptureFilter::any(),
        )));
    }

    let (jlo, jhi) = config.proxy_jitter_ms;
    sim.set_protocol(proxy, AnonymizerProxy::new(FlowTransform::jitter(jlo, jhi)));

    // One flow per account through the proxy; only the target account is
    // PN-modulated, every other flow runs flat at the mean rate.
    let code = PnCode::m_sequence(config.code_degree, (seed as u32) | 1);
    let chip = SimDuration::from_millis(config.chip_ms);
    let flat = PnCode::from_chips(vec![1; code.len()]);
    let mut signal = SimDuration::ZERO;
    for (i, &a) in accounts.iter().enumerate() {
        let embed = if i == true_suspect {
            EmbedConfig {
                code: code.clone(),
                chip_duration: chip,
                rate_high_pps: config.rate_high_pps,
                rate_low_pps: config.rate_low_pps,
                payload_len: config.payload_len,
                repetitions: 1,
            }
        } else {
            EmbedConfig {
                code: flat.clone(),
                chip_duration: chip,
                rate_high_pps: config.mean_rate_pps(),
                rate_low_pps: config.mean_rate_pps(),
                payload_len: config.payload_len,
                repetitions: 1,
            }
        };
        signal = embed.signal_duration();
        sim.set_protocol(
            a,
            WatermarkedSource::new(
                embed,
                proxy,
                FlowId(1 + i as u64),
                wrap_for_proxy(suspects[i], &[]),
            ),
        );
    }
    for (i, &c) in cross_sources.iter().enumerate() {
        sim.set_protocol(
            c,
            PoissonSource::new(
                suspects[i],
                FlowId(1 + (suspects_n + i) as u64),
                config.payload_len,
                config.cross_rate_pps,
            ),
        );
    }

    sim.run_until(SimTime::ZERO + signal + SimDuration::from_secs(2));

    // Despread every suspect's observation against the target's code.
    let fine_bin = SimDuration::from_millis(config.chip_ms / config.oversample as u64);
    let n_bins = code.len() * config.oversample + 4 * config.oversample;
    let detector = Detector::new(
        code.clone(),
        config.oversample,
        2 * config.oversample,
        Detector::sigma_threshold(code.len(), config.threshold_sigma),
    );
    let detections: Vec<Detection> = taps
        .iter()
        .map(|&t| {
            let series = sim.tap(t).rate_series(SimTime::ZERO, fine_bin, n_bins);
            detector.detect(&series)
        })
        .collect();

    let identified = detections
        .iter()
        .enumerate()
        .filter(|(_, d)| d.detected)
        .max_by(|a, b| {
            a.1.statistic
                .abs()
                .partial_cmp(&b.1.statistic.abs())
                .expect("statistics are finite")
        })
        .map(|(i, _)| i);
    let target_statistic = detections[true_suspect].statistic.abs();
    let mut null_sum = 0.0;
    let mut null_max = 0.0f64;
    let mut false_positives = 0;
    for (i, d) in detections.iter().enumerate() {
        if i == true_suspect {
            continue;
        }
        let s = d.statistic.abs();
        null_sum += s;
        null_max = null_max.max(s);
        if d.detected {
            false_positives += 1;
        }
    }

    PopulationResult {
        nodes,
        suspects: suspects_n,
        true_suspect,
        identified,
        target_statistic,
        null_mean_abs: null_sum / (suspects_n - 1) as f64,
        null_max_abs: null_max,
        false_positives,
        sim_events: sim.counters().events,
        delivered: sim.counters().delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PopulationConfig {
        PopulationConfig {
            nodes: 50, // 16 suspects
            ..PopulationConfig::default()
        }
    }

    #[test]
    fn population_run_singles_out_the_watermarked_account() {
        let r = run_population(&small());
        assert_eq!(r.suspects, 16);
        assert_eq!(r.nodes, 50);
        assert!(
            r.correct(),
            "identified {:?} truth {}",
            r.identified,
            r.true_suspect
        );
        assert!(
            r.separation() > 2.0,
            "target {} vs null max {}",
            r.target_statistic,
            r.null_max_abs
        );
        assert!(r.sim_events > 0);
        assert!(r.delivered > 0);
    }

    #[test]
    fn population_run_is_deterministic() {
        let a = run_population(&small());
        let b = run_population(&small());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_moves_the_target() {
        let a = run_population(&small());
        let b = run_population(&PopulationConfig {
            seed: 0xbeef ^ 0x1234,
            ..small()
        });
        // Both must still detect; the layout (and usually the target)
        // differs.
        assert!(a.correct() && b.correct());
        assert_ne!(
            (a.true_suspect, a.target_statistic),
            (b.true_suspect, b.target_statistic)
        );
    }

    #[test]
    fn node_budget_rounds_down() {
        let cfg = PopulationConfig {
            nodes: 51, // 16 suspects still (2 + 3·16 = 50 ≤ 51)
            ..PopulationConfig::default()
        };
        assert_eq!(cfg.suspects(), 16);
        assert_eq!(cfg.built_nodes(), 50);
        let tiny = PopulationConfig {
            nodes: 0,
            ..PopulationConfig::default()
        };
        assert_eq!(tiny.suspects(), 2, "floor of two suspects");
    }
}
