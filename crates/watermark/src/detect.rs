//! The DSSS despreading detector.
//!
//! §IV-B: the investigator "collect\[s\] the traffic rate at the suspect's
//! ISP (they do not need to collect the entire packet, so they do not
//! need a wiretap warrant)" and despreads it against the known PN code.
//! The detector consumes exactly a rate time series — the output of a
//! [`netsim::capture::CaptureScope::RateOnly`] tap.
//!
//! # Synchronization-search complexity
//!
//! [`Detector::detect`] scans every candidate fine-bin offset. The naive
//! formulation (retained as [`Detector::detect_reference`]) re-aggregates
//! the fine bins of every chip at every offset and allocates two fresh
//! vectors per candidate — O(offsets × chips × oversample) time plus
//! O(offsets) allocations. The production path instead builds one
//! prefix-sum table over the series, so each chip aggregate is a single
//! subtraction, and folds the Pearson normalization into incremental
//! running sums — O(series + offsets × chips) with **zero heap
//! allocations inside the offset loop**. Both paths agree to within
//! floating-point rounding (≪ 1e-9; see the `detect_differential`
//! integration test).

use crate::pn::PnCode;

/// The result of a detection attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Normalized correlation statistic in `[-1, 1]` at the best offset.
    pub statistic: f64,
    /// Offset (in fine bins) at which the statistic peaked.
    pub best_offset: usize,
    /// Whether the statistic cleared the decision threshold.
    pub detected: bool,
}

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct Detector {
    code: PnCode,
    /// Fine bins per chip in the input series.
    oversample: usize,
    /// Maximum synchronization search offset, in fine bins.
    max_offset: usize,
    /// Decision threshold on the normalized statistic.
    threshold: f64,
}

impl Detector {
    /// Creates a detector for `code`.
    ///
    /// `oversample` is how many fine rate bins make up one chip in the
    /// observed series; `max_offset` bounds the synchronization search
    /// (in fine bins); `threshold` is the decision level on the
    /// normalized correlation.
    ///
    /// # Panics
    ///
    /// Panics if `oversample == 0`.
    pub fn new(code: PnCode, oversample: usize, max_offset: usize, threshold: f64) -> Self {
        assert!(oversample > 0, "oversample must be positive");
        Detector {
            code,
            oversample,
            max_offset,
            threshold,
        }
    }

    /// A threshold calibrated to the code length: under the null
    /// hypothesis the normalized statistic is ≈ N(0, 1/√N), so `k` sigma
    /// is `k/√N`.
    pub fn sigma_threshold(code_len: usize, k: f64) -> f64 {
        k / (code_len as f64).sqrt()
    }

    /// The code under test.
    pub fn code(&self) -> &PnCode {
        &self.code
    }

    /// Whole chips available at `offset`, or `None` when fewer than two
    /// fit.
    fn chips_at(&self, series_len: usize, offset: usize) -> Option<usize> {
        if offset >= series_len {
            return None;
        }
        let chips = ((series_len - offset) / self.oversample).min(self.code.len());
        if chips < 2 {
            None
        } else {
            Some(chips)
        }
    }

    /// Pearson correlation of `chips` chip rates against the code signs,
    /// via incremental running sums — no intermediate vectors.
    ///
    /// `shift` is a constant subtracted from every chip rate before
    /// accumulation; Pearson is shift-invariant, and centring near the
    /// series mean keeps the `Σa² − (Σa)²/n` variance form from
    /// cancelling catastrophically.
    fn correlate(&self, chips: usize, shift: f64, chip_rate: impl Fn(usize) -> f64) -> Option<f64> {
        let signs = self.code.chips();
        let n = chips as f64;
        let (mut sa, mut sa2, mut sb, mut sab) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (c, &sign) in signs.iter().enumerate().take(chips) {
            let r = chip_rate(c) - shift;
            let b = sign as f64;
            sa += r;
            sa2 += r * r;
            sb += b;
            sab += r * b;
        }
        let cov = sab - sa * sb / n;
        let va = sa2 - sa * sa / n;
        // The signs are ±1, so Σb² is exactly n.
        let vb = n - sb * sb / n;
        if va <= 0.0 || vb <= 0.0 {
            return None;
        }
        Some(cov / (va.sqrt() * vb.sqrt()))
    }

    /// Despreads `series` (fine-binned rates) against the code at a
    /// given fine-bin offset, returning the normalized correlation over
    /// as many whole chips as fit.
    ///
    /// Returns `None` when fewer than two chips fit or the series is
    /// constant. Allocation-free; for a full synchronization search use
    /// [`detect`](Self::detect), which amortizes chip aggregation across
    /// offsets with a prefix-sum table.
    pub fn despread_at(&self, series: &[f64], offset: usize) -> Option<f64> {
        let chips = self.chips_at(series.len(), offset)?;
        let shift = series.iter().sum::<f64>() / series.len() as f64;
        self.correlate(chips, shift, |c| {
            let start = offset + c * self.oversample;
            series[start..start + self.oversample].iter().sum::<f64>() / self.oversample as f64
        })
    }

    /// The retained naive despreader — O(oversample) fine-bin summation
    /// per chip and two fresh vectors per call, exactly the original
    /// formulation. Kept as the reference implementation for the
    /// fast-path differential tests and benchmarks.
    pub fn despread_at_reference(&self, series: &[f64], offset: usize) -> Option<f64> {
        if offset >= series.len() {
            return None;
        }
        let avail = (series.len() - offset) / self.oversample;
        let chips = avail.min(self.code.len());
        if chips < 2 {
            return None;
        }
        // Aggregate fine bins into chip bins.
        let mut chip_rates = Vec::with_capacity(chips);
        for c in 0..chips {
            let start = offset + c * self.oversample;
            let sum: f64 = series[start..start + self.oversample].iter().sum();
            chip_rates.push(sum / self.oversample as f64);
        }
        let signs: Vec<f64> = (0..chips).map(|c| self.code.chips()[c] as f64).collect();
        netsim::stats::pearson(&chip_rates, &signs)
    }

    /// Runs the synchronization search and decides.
    ///
    /// One prefix-sum table is built up front (the only allocation);
    /// every candidate offset then aggregates each chip in O(1) and
    /// normalizes through running sums, making the whole search
    /// O(series + offsets × chips).
    pub fn detect(&self, series: &[f64]) -> Detection {
        let mut best = Detection {
            statistic: 0.0,
            best_offset: 0,
            detected: false,
        };
        let mut prefix = Vec::with_capacity(series.len() + 1);
        let mut acc = 0.0f64;
        prefix.push(0.0);
        for &x in series {
            acc += x;
            prefix.push(acc);
        }
        let shift = if series.is_empty() {
            0.0
        } else {
            acc / series.len() as f64
        };
        for offset in 0..=self.max_offset {
            let Some(chips) = self.chips_at(series.len(), offset) else {
                continue;
            };
            let stat = self.correlate(chips, shift, |c| {
                let start = offset + c * self.oversample;
                (prefix[start + self.oversample] - prefix[start]) / self.oversample as f64
            });
            if let Some(stat) = stat {
                if stat.abs() > best.statistic.abs() {
                    best.statistic = stat;
                    best.best_offset = offset;
                }
            }
        }
        best.detected = best.statistic.abs() >= self.threshold;
        best
    }

    /// The retained naive synchronization search over
    /// [`despread_at_reference`](Self::despread_at_reference) —
    /// O(offsets × chips × oversample) with two allocations per offset.
    /// Reference implementation for differential tests and benchmarks.
    pub fn detect_reference(&self, series: &[f64]) -> Detection {
        let mut best = Detection {
            statistic: 0.0,
            best_offset: 0,
            detected: false,
        };
        for offset in 0..=self.max_offset {
            if let Some(stat) = self.despread_at_reference(series, offset) {
                if stat.abs() > best.statistic.abs() {
                    best.statistic = stat;
                    best.best_offset = offset;
                }
            }
        }
        best.detected = best.statistic.abs() >= self.threshold;
        best
    }
}

/// Synthesizes the ideal (noise-free) chip-rate series for a code — used
/// by tests and the baseline comparison.
pub fn ideal_series(code: &PnCode, oversample: usize, high: f64, low: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(code.len() * oversample);
    for &c in code.chips() {
        let r = if c > 0 { high } else { low };
        out.extend(std::iter::repeat_n(r, oversample));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code() -> PnCode {
        PnCode::m_sequence(7, 1)
    }

    #[test]
    fn clean_signal_detected_with_statistic_one() {
        let c = code();
        let series = ideal_series(&c, 4, 100.0, 20.0);
        let det = Detector::new(c, 4, 0, 0.5);
        let d = det.detect(&series);
        assert!(d.detected);
        assert!((d.statistic - 1.0).abs() < 1e-9, "stat {}", d.statistic);
        assert_eq!(d.best_offset, 0);
    }

    #[test]
    fn offset_signal_found_by_sync_search() {
        let c = code();
        let mut series = vec![60.0; 10]; // 10 fine bins of pre-signal noise floor
        series.extend(ideal_series(&c, 4, 100.0, 20.0));
        let det = Detector::new(c, 4, 16, 0.5);
        let d = det.detect(&series);
        assert!(d.detected);
        assert_eq!(d.best_offset, 10);
    }

    #[test]
    fn wrong_code_not_detected() {
        let c = code();
        let other = PnCode::m_sequence(7, 11); // different phase/sequence
        let series = ideal_series(&other, 4, 100.0, 20.0);
        let det = Detector::new(c.clone(), 4, 8, Detector::sigma_threshold(c.len(), 4.0));
        let d = det.detect(&series);
        assert!(
            !d.detected,
            "different m-sequence must not trigger (stat {})",
            d.statistic
        );
    }

    #[test]
    fn unwatermarked_noise_not_detected() {
        let c = code();
        // Deterministic pseudo-noise series.
        let mut x = 1u64;
        let series: Vec<f64> = (0..c.len() * 4)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                50.0 + (x >> 40) as f64 / 1e6
            })
            .collect();
        let det = Detector::new(c.clone(), 4, 8, Detector::sigma_threshold(c.len(), 4.0));
        assert!(!det.detect(&series).detected);
    }

    #[test]
    fn noisy_signal_still_detected() {
        let c = code();
        let mut x = 99u64;
        let mut noise = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 40) as f64 / (1u64 << 24) as f64 - 0.5) * 80.0
        };
        let series: Vec<f64> = ideal_series(&c, 4, 100.0, 20.0)
            .into_iter()
            .map(|r| (r + noise()).max(0.0))
            .collect();
        let det = Detector::new(c.clone(), 4, 0, Detector::sigma_threshold(c.len(), 4.0));
        let d = det.detect(&series);
        assert!(d.detected, "stat {}", d.statistic);
    }

    #[test]
    fn short_series_yields_no_detection() {
        let c = code();
        let det = Detector::new(c, 4, 4, 0.5);
        let d = det.detect(&[1.0, 2.0, 3.0]);
        assert!(!d.detected);
        assert_eq!(d.statistic, 0.0);
    }

    #[test]
    fn sigma_threshold_shrinks_with_code_length() {
        assert!(Detector::sigma_threshold(127, 4.0) > Detector::sigma_threshold(1023, 4.0));
        let t = Detector::sigma_threshold(100, 4.0);
        assert!((t - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "oversample")]
    fn zero_oversample_panics() {
        Detector::new(code(), 0, 0, 0.5);
    }

    #[test]
    fn despread_partial_code_coverage() {
        let c = code();
        // Only half the code's worth of series available.
        let series = ideal_series(&c, 2, 100.0, 20.0);
        let half = &series[..series.len() / 2];
        let det = Detector::new(c, 2, 0, 0.5);
        let stat = det.despread_at(half, 0).unwrap();
        assert!(stat > 0.9, "partial despreading still correlates: {stat}");
    }
}
