//! The naive baseline the paper says the watermark beats: direct
//! traffic-rate correlation between the sender's egress and each
//! candidate suspect's ingress, with a lag search.

/// Maximum-over-lags Pearson correlation between a transmit-side and a
/// receive-side rate series.
///
/// `max_lag` is in bins; the receive series is assumed delayed relative
/// to the transmit series (only non-negative lags are searched).
///
/// Returns `None` when the series are too short or constant at every
/// lag.
pub fn lag_correlation(tx: &[f64], rx: &[f64], max_lag: usize) -> Option<(f64, usize)> {
    let mut best: Option<(f64, usize)> = None;
    for lag in 0..=max_lag {
        if lag >= rx.len() {
            break;
        }
        let n = tx.len().min(rx.len() - lag);
        if n < 2 {
            break;
        }
        if let Some(r) = netsim::stats::pearson(&tx[..n], &rx[lag..lag + n]) {
            if best.is_none_or(|(b, _)| r.abs() > b.abs()) {
                best = Some((r, lag));
            }
        }
    }
    best
}

/// Identifies which candidate receive series best matches the transmit
/// series: returns `(index, correlation)` of the argmax, or `None` if no
/// candidate correlates at all.
pub fn identify_by_correlation(
    tx: &[f64],
    candidates: &[Vec<f64>],
    max_lag: usize,
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, rx) in candidates.iter().enumerate() {
        if let Some((r, _)) = lag_correlation(tx, rx, max_lag) {
            if best.is_none_or(|(_, b)| r.abs() > b.abs()) {
                best = Some((i, r));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lag_identity() {
        let tx = vec![1.0, 5.0, 2.0, 8.0, 3.0, 9.0];
        let (r, lag) = lag_correlation(&tx, &tx, 3).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        assert_eq!(lag, 0);
    }

    #[test]
    fn finds_true_lag() {
        let tx = vec![1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0, 7.0];
        let mut rx = vec![0.0, 0.0];
        rx.extend_from_slice(&tx);
        let (r, lag) = lag_correlation(&tx, &rx, 4).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        assert_eq!(lag, 2);
    }

    #[test]
    fn identify_picks_matching_candidate() {
        let tx = vec![1.0, 9.0, 2.0, 8.0, 3.0, 7.0, 4.0, 6.0];
        let matching = tx.clone();
        let noise = vec![5.0, 5.1, 4.9, 5.0, 5.2, 4.8, 5.0, 5.1];
        let (idx, r) = identify_by_correlation(&tx, &[noise, matching], 2).unwrap();
        assert_eq!(idx, 1);
        assert!(r > 0.99);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(lag_correlation(&[1.0], &[1.0], 2).is_none());
        assert!(identify_by_correlation(&[1.0, 2.0], &[], 2).is_none());
        // Constant candidate yields no correlation.
        assert!(lag_correlation(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0], 0).is_none());
    }
}
