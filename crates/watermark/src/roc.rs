//! Detector calibration: null/alternative statistic distributions and
//! ROC curves for the despreading detector.
//!
//! The paper claims the watermark is "more effective than other methods";
//! effectiveness for a detector means the trade-off between detection
//! rate and false positives. This module quantifies it on synthetic rate
//! series so thresholds (in sigmas of the null) can be chosen with known
//! false-positive budgets.

use crate::detect::{ideal_series, Detector};
use crate::pn::PnCode;
use netsim::rng::SimRng;
use trials::TrialRunner;

/// Draws `trials` despreading statistics from the null hypothesis
/// (unwatermarked noise around `mean_rate` with `noise_sigma`), fanned
/// across one worker per available core.
///
/// Each trial draws from its own [`SimRng::derive`]d stream, so the
/// returned vector is identical at any worker count.
pub fn null_statistics(
    code: &PnCode,
    oversample: usize,
    mean_rate: f64,
    noise_sigma: f64,
    trials: usize,
    seed: u64,
) -> Vec<f64> {
    null_statistics_on(
        &TrialRunner::new(),
        code,
        oversample,
        mean_rate,
        noise_sigma,
        trials,
        seed,
    )
}

/// [`null_statistics`] on an explicit [`TrialRunner`].
pub fn null_statistics_on(
    runner: &TrialRunner,
    code: &PnCode,
    oversample: usize,
    mean_rate: f64,
    noise_sigma: f64,
    trials: usize,
    seed: u64,
) -> Vec<f64> {
    let det = Detector::new(code.clone(), oversample, 0, 0.0);
    runner
        .run(trials, |t| {
            let mut rng = SimRng::derive(seed, t);
            let series: Vec<f64> = (0..code.len() * oversample)
                .map(|_| (mean_rate + rng.normal(0.0, noise_sigma)).max(0.0))
                .collect();
            det.despread_at(&series, 0).unwrap_or(0.0)
        })
        .0
}

/// Draws `trials` despreading statistics from the alternative hypothesis
/// (watermark with the given high/low rates plus noise), fanned across
/// one worker per available core. Worker-count independent, like
/// [`null_statistics`].
pub fn signal_statistics(
    code: &PnCode,
    oversample: usize,
    rate_high: f64,
    rate_low: f64,
    noise_sigma: f64,
    trials: usize,
    seed: u64,
) -> Vec<f64> {
    signal_statistics_on(
        &TrialRunner::new(),
        code,
        oversample,
        rate_high,
        rate_low,
        noise_sigma,
        trials,
        seed,
    )
}

/// [`signal_statistics`] on an explicit [`TrialRunner`].
#[allow(clippy::too_many_arguments)]
pub fn signal_statistics_on(
    runner: &TrialRunner,
    code: &PnCode,
    oversample: usize,
    rate_high: f64,
    rate_low: f64,
    noise_sigma: f64,
    trials: usize,
    seed: u64,
) -> Vec<f64> {
    let det = Detector::new(code.clone(), oversample, 0, 0.0);
    let clean = ideal_series(code, oversample, rate_high, rate_low);
    runner
        .run(trials, |t| {
            let mut rng = SimRng::derive(seed, t);
            let series: Vec<f64> = clean
                .iter()
                .map(|r| (r + rng.normal(0.0, noise_sigma)).max(0.0))
                .collect();
            det.despread_at(&series, 0).unwrap_or(0.0)
        })
        .0
}

/// One point on an ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// The decision threshold on |statistic|.
    pub threshold: f64,
    /// True-positive rate at that threshold.
    pub tpr: f64,
    /// False-positive rate at that threshold.
    pub fpr: f64,
}

/// Builds an ROC curve from null and signal statistic samples over a
/// threshold grid.
pub fn roc_curve(null: &[f64], signal: &[f64], thresholds: &[f64]) -> Vec<RocPoint> {
    thresholds
        .iter()
        .map(|&t| {
            let fpr =
                null.iter().filter(|s| s.abs() >= t).count() as f64 / null.len().max(1) as f64;
            let tpr =
                signal.iter().filter(|s| s.abs() >= t).count() as f64 / signal.len().max(1) as f64;
            RocPoint {
                threshold: t,
                tpr,
                fpr,
            }
        })
        .collect()
}

/// Area under the ROC curve by trapezoid over the (sorted-by-fpr) points,
/// anchored at (0,0) and (1,1).
pub fn auc(points: &[RocPoint]) -> f64 {
    let mut pts: Vec<(f64, f64)> = points.iter().map(|p| (p.fpr, p.tpr)).collect();
    pts.push((0.0, 0.0));
    pts.push((1.0, 1.0));
    pts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut area = 0.0;
    for w in pts.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        area += (x1 - x0) * (y0 + y1) / 2.0;
    }
    area
}

/// The empirical detection gain from repeating the code `reps` times:
/// the signal statistic is computed over the concatenated (repeated)
/// code, so its null spread shrinks like 1/√(reps·N).
pub fn repetition_null_sigma(code: &PnCode, reps: usize, trials: usize, seed: u64) -> f64 {
    let repeated = PnCode::from_chips(
        code.chips()
            .iter()
            .copied()
            .cycle()
            .take(code.len() * reps)
            .collect(),
    );
    let stats = null_statistics(&repeated, 2, 100.0, 30.0, trials, seed);
    let mean = stats.iter().sum::<f64>() / stats.len() as f64;
    (stats.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / stats.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code() -> PnCode {
        PnCode::m_sequence(8, 1)
    }

    #[test]
    fn null_statistics_center_on_zero() {
        let stats = null_statistics(&code(), 2, 100.0, 25.0, 200, 1);
        let mean = stats.iter().sum::<f64>() / stats.len() as f64;
        assert!(mean.abs() < 0.05, "null mean {mean}");
        // Spread ≈ 1/sqrt(N) = 1/sqrt(255) ≈ 0.063.
        let sigma =
            (stats.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / stats.len() as f64).sqrt();
        assert!(sigma < 0.15, "null sigma {sigma}");
    }

    #[test]
    fn signal_statistics_are_large() {
        let stats = signal_statistics(&code(), 2, 120.0, 40.0, 25.0, 100, 2);
        let mean = stats.iter().sum::<f64>() / stats.len() as f64;
        assert!(mean > 0.7, "signal mean {mean}");
    }

    #[test]
    fn roc_separates_cleanly_at_moderate_noise() {
        let c = code();
        let null = null_statistics(&c, 2, 100.0, 30.0, 300, 3);
        let signal = signal_statistics(&c, 2, 120.0, 40.0, 30.0, 300, 4);
        let thresholds: Vec<f64> = (0..50).map(|i| i as f64 / 50.0).collect();
        let roc = roc_curve(&null, &signal, &thresholds);
        let a = auc(&roc);
        assert!(a > 0.99, "AUC {a}");
    }

    #[test]
    fn roc_degrades_with_extreme_noise() {
        let c = code();
        // Noise dwarfing the modulation amplitude.
        let null = null_statistics(&c, 2, 100.0, 2000.0, 200, 5);
        let signal = signal_statistics(&c, 2, 120.0, 40.0, 2000.0, 200, 6);
        let thresholds: Vec<f64> = (0..50).map(|i| i as f64 / 50.0).collect();
        let a = auc(&roc_curve(&null, &signal, &thresholds));
        assert!(a < 0.95, "AUC should degrade, got {a}");
    }

    #[test]
    fn threshold_zero_catches_everything() {
        let roc = roc_curve(&[0.01, 0.02], &[0.9, 0.8], &[0.0]);
        assert_eq!(roc[0].tpr, 1.0);
        assert_eq!(roc[0].fpr, 1.0);
    }

    #[test]
    fn repetitions_shrink_the_null() {
        let c = PnCode::m_sequence(6, 1);
        let s1 = repetition_null_sigma(&c, 1, 150, 7);
        let s4 = repetition_null_sigma(&c, 4, 150, 8);
        assert!(
            s4 < s1 * 0.75,
            "4× repetition should shrink null sigma ≈2×: {s1} → {s4}"
        );
    }

    #[test]
    fn auc_of_perfect_separation_is_one() {
        let roc = roc_curve(&[0.0, 0.01], &[0.99, 1.0], &[0.5]);
        assert!((auc(&roc) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn statistics_independent_of_worker_count() {
        let c = code();
        for threads in [1usize, 2, 8] {
            let runner = TrialRunner::with_threads(threads);
            let null = null_statistics_on(&runner, &c, 2, 100.0, 30.0, 64, 9);
            let signal = signal_statistics_on(&runner, &c, 2, 120.0, 40.0, 30.0, 64, 9);
            assert_eq!(null, null_statistics(&c, 2, 100.0, 30.0, 64, 9));
            assert_eq!(signal, signal_statistics(&c, 2, 120.0, 40.0, 30.0, 64, 9));
        }
    }
}
