//! The watermark embedder: a traffic source whose send rate is modulated
//! chip-by-chip by a PN code.
//!
//! §IV-B: "By slightly modifying the traffic rate with an embedded PN
//! code at the seized web-server ... they can identify the suspect in the
//! anonymous network system." The source plays the role of the seized
//! server; each chip period it transmits at either the high (+1 chip) or
//! low (−1 chip) rate.

use crate::pn::PnCode;
use netsim::packet::{FlowId, Packet, Transport};
use netsim::prelude::{Context, NodeId, Protocol, SimDuration};

/// Configuration of a watermarked flow.
#[derive(Debug, Clone)]
pub struct EmbedConfig {
    /// The spreading code.
    pub code: PnCode,
    /// Duration of one chip.
    pub chip_duration: SimDuration,
    /// Packet rate during +1 chips (packets/second).
    pub rate_high_pps: f64,
    /// Packet rate during −1 chips (packets/second).
    pub rate_low_pps: f64,
    /// Payload bytes per packet.
    pub payload_len: usize,
    /// How many times to repeat the code (≥1).
    pub repetitions: usize,
}

impl EmbedConfig {
    /// Total duration of the embedded signal.
    pub fn signal_duration(&self) -> SimDuration {
        self.chip_duration
            .mul((self.code.len() * self.repetitions) as u64)
    }
}

/// Per-packet encapsulation: given the raw payload, produce the first-hop
/// destination and the wrapped bytes (e.g. onion-wrap for a circuit).
pub type PacketWrapper = Box<dyn FnMut(&[u8]) -> (NodeId, Vec<u8>)>;

/// A traffic source that embeds `config.code` into its send rate.
///
/// Every packet is addressed to `dst`; `payload_prefix` is prepended to
/// each payload (use [`anonsim::wrap_for_proxy`]'s output shape to route
/// the flow through an anonymizing proxy toward a final destination).
/// For onion circuits, use [`WatermarkedSource::with_wrapper`] to wrap
/// each packet individually.
///
/// [`anonsim::wrap_for_proxy`]: anonsim::proxy::wrap_for_proxy
pub struct WatermarkedSource {
    config: EmbedConfig,
    dst: NodeId,
    flow: FlowId,
    payload_prefix: Vec<u8>,
    wrapper: Option<PacketWrapper>,
    chip_index: usize,
    sent: u64,
    done: bool,
    chain_alive: bool,
}

impl std::fmt::Debug for WatermarkedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatermarkedSource")
            .field("dst", &self.dst)
            .field("flow", &self.flow)
            .field("chip_index", &self.chip_index)
            .field("sent", &self.sent)
            .field("done", &self.done)
            .field("wrapped", &self.wrapper.is_some())
            .finish()
    }
}

const CHIP: u64 = 1;
const EMIT: u64 = 2;

impl WatermarkedSource {
    /// Creates the source.
    pub fn new(config: EmbedConfig, dst: NodeId, flow: FlowId, payload_prefix: Vec<u8>) -> Self {
        WatermarkedSource {
            config,
            dst,
            flow,
            payload_prefix,
            wrapper: None,
            chip_index: 0,
            sent: 0,
            done: false,
            chain_alive: false,
        }
    }

    /// Creates a source whose packets are individually encapsulated by
    /// `wrapper` (e.g. onion-wrapped for a circuit); the wrapper decides
    /// the first-hop destination per packet.
    pub fn with_wrapper(config: EmbedConfig, flow: FlowId, wrapper: PacketWrapper) -> Self {
        WatermarkedSource {
            config,
            dst: NodeId(0),
            flow,
            payload_prefix: Vec::new(),
            wrapper: Some(wrapper),
            chip_index: 0,
            sent: 0,
            done: false,
            chain_alive: false,
        }
    }

    /// Packets emitted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Whether the full signal has been transmitted.
    pub fn is_done(&self) -> bool {
        self.done
    }

    fn total_chips(&self) -> usize {
        self.config.code.len() * self.config.repetitions
    }

    fn current_rate(&self) -> f64 {
        if self.config.code.chip(self.chip_index) > 0 {
            self.config.rate_high_pps
        } else {
            self.config.rate_low_pps
        }
    }

    fn schedule_emit(&mut self, ctx: &mut Context<'_>) {
        let rate = self.current_rate();
        if rate <= 0.0 {
            // Silent chip: the emission chain dies; a later CHIP timer
            // revives it when the rate becomes positive again.
            self.chain_alive = false;
            return;
        }
        self.chain_alive = true;
        let gap = ctx.rng().exponential(rate);
        ctx.set_timer(SimDuration::from_secs_f64(gap), EMIT);
    }

    fn emit(&mut self, ctx: &mut Context<'_>) {
        let (dst, payload) = match &mut self.wrapper {
            Some(wrap) => {
                let raw = vec![0u8; self.config.payload_len];
                wrap(&raw)
            }
            None => {
                let mut payload = self.payload_prefix.clone();
                payload.extend(std::iter::repeat_n(0u8, self.config.payload_len));
                (self.dst, payload)
            }
        };
        let p = Packet::new(
            ctx.node(),
            dst,
            Transport::Tcp {
                src_port: 80,
                dst_port: 443,
                seq: self.sent as u32,
            },
            self.flow,
            payload,
        );
        ctx.send(p);
        self.sent += 1;
    }
}

impl Protocol for WatermarkedSource {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.config.chip_duration, CHIP);
        self.schedule_emit(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if self.done {
            return;
        }
        match token {
            CHIP => {
                self.chip_index += 1;
                if self.chip_index >= self.total_chips() {
                    self.done = true;
                    return;
                }
                ctx.set_timer(self.config.chip_duration, CHIP);
                // Revive the emission chain only if it died on a silent
                // chip — otherwise the existing chain continues (one
                // chain total, never one per chip).
                if !self.chain_alive {
                    self.schedule_emit(ctx);
                }
            }
            EMIT => {
                self.emit(ctx);
                self.schedule_emit(ctx);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::prelude::*;

    fn run_source(config: EmbedConfig, seed: u64) -> (Vec<SimTime>, u64) {
        let mut topo = Topology::new();
        let src = topo.add_node();
        let dst = topo.add_node();
        topo.connect(src, dst, SimDuration::from_millis(1));
        let mut sim = Simulator::new(topo, seed);
        let duration = config.signal_duration();
        sim.set_protocol(src, WatermarkedSource::new(config, dst, FlowId(9), vec![]));
        sim.set_protocol(dst, CountingSink::new());
        sim.run_until(SimTime::ZERO + duration + SimDuration::from_secs(2));
        let sink = sim.take_protocol_as::<CountingSink>(dst).unwrap();
        (sink.arrivals().to_vec(), sink.received())
    }

    fn config(high: f64, low: f64) -> EmbedConfig {
        EmbedConfig {
            code: PnCode::m_sequence(5, 1),
            chip_duration: SimDuration::from_millis(500),
            rate_high_pps: high,
            rate_low_pps: low,
            payload_len: 100,
            repetitions: 1,
        }
    }

    #[test]
    fn signal_duration_accounts_for_repetitions() {
        let mut c = config(100.0, 20.0);
        assert_eq!(c.signal_duration(), SimDuration::from_millis(500 * 31));
        c.repetitions = 3;
        assert_eq!(c.signal_duration(), SimDuration::from_millis(500 * 93));
    }

    #[test]
    fn mean_rate_between_high_and_low() {
        let (_arrivals, n) = run_source(config(100.0, 20.0), 5);
        let duration_s = 31.0 * 0.5;
        let rate = n as f64 / duration_s;
        // Balanced code → mean ≈ (100+20)/2 = 60 pps.
        assert!((40.0..80.0).contains(&rate), "rate {rate}");
    }

    #[test]
    fn high_chips_carry_more_packets_than_low_chips() {
        let cfg = config(200.0, 10.0);
        let code = cfg.code.clone();
        let chip = cfg.chip_duration;
        let (arrivals, _) = run_source(cfg, 6);
        // Bin arrivals by chip and compare mean counts for ±1 chips.
        let mut high = Vec::new();
        let mut low = Vec::new();
        for (i, &c) in code.chips().iter().enumerate() {
            let start = SimTime::ZERO + chip.mul(i as u64);
            let end = start + chip;
            let count = arrivals.iter().filter(|&&t| t >= start && t < end).count() as f64;
            if c > 0 {
                high.push(count);
            } else {
                low.push(count);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&high) > 4.0 * mean(&low),
            "high {} low {}",
            mean(&high),
            mean(&low)
        );
    }

    #[test]
    fn source_stops_after_signal() {
        let (_arrivals, n1) = run_source(config(50.0, 5.0), 7);
        // Run the same config twice as long: count must not grow after
        // completion — verified by the arrivals all falling inside the
        // signal window.
        let cfg = config(50.0, 5.0);
        let window = cfg.signal_duration();
        let (arrivals, n2) = run_source(cfg, 7);
        assert_eq!(n1, n2);
        for t in arrivals {
            assert!(t <= SimTime::ZERO + window + SimDuration::from_secs(1));
        }
    }

    #[test]
    fn zero_low_rate_is_on_off_flavour() {
        let (_, n) = run_source(config(100.0, 0.0), 8);
        assert!(n > 0, "on-chips still emit");
    }
}
