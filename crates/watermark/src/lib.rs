//! # watermark
//!
//! Long-PN-code DSSS flow watermarking for network traceback — the
//! technique the paper analyzes in §IV-B (Huang, Pan, Fu & Wang, *Long PN
//! Code Based DSSS Watermarking*, INFOCOM 2011) — plus the naive
//! rate-correlation baseline it is compared against.
//!
//! The pipeline mirrors the paper's legal posture end to end:
//!
//! 1. [`pn`] — maximal-length ±1 spreading codes from a Galois LFSR;
//! 2. [`embed`] — a traffic source (the *seized web server*) whose send
//!    rate is modulated chip-by-chip;
//! 3. the flow crosses an anonymizing proxy ([`anonsim`]) that jitters
//!    timing and hides content;
//! 4. [`detect`] — the investigator despreads a **rate-only** observation
//!    (a pen/trap-scope capture — "they do not need to collect the entire
//!    packet, so they do not need a wiretap warrant");
//! 5. [`baseline`] — naive lag-correlation for comparison;
//! 6. [`experiment`] — the full E-IV-B harness.
//!
//! ```
//! use watermark::detect::{ideal_series, Detector};
//! use watermark::pn::PnCode;
//!
//! let code = PnCode::m_sequence(9, 1);
//! let observed = ideal_series(&code, 4, 120.0, 40.0);
//! let detector = Detector::new(code.clone(), 4, 0, Detector::sigma_threshold(code.len(), 4.0));
//! assert!(detector.detect(&observed).detected);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod circuit_experiment;
pub mod detect;
pub mod embed;
pub mod experiment;
pub mod pn;
pub mod population;
pub mod roc;

pub use detect::{Detection, Detector};
pub use embed::{EmbedConfig, WatermarkedSource};
pub use experiment::{
    run_trial, run_trials, run_trials_on, WatermarkExperimentConfig, WatermarkSummary,
};
pub use pn::{Lfsr, PnCode};
pub use population::{run_population, PopulationConfig, PopulationResult};
