//! The E-IV-B experiment harness: the seized-server storyline of §IV-B.
//!
//! The paper's situation one: investigators control a seized web server
//! with "a lot of accounts", one of which is being downloaded from by a
//! suspect hiding behind an anonymizing proxy. The server simultaneously
//! serves one flow per candidate account; the investigator watermarks
//! **only the account under investigation** by modulating its rate with a
//! PN code. Rate-only taps — the pen/trap-scoped observation a court
//! order supports — sit at every candidate suspect's access point.
//!
//! Two identification strategies are compared:
//!
//! * **Watermark (active)**: despread each suspect's rate series against
//!   the PN code.
//! * **Baseline (passive)**: correlate the server site's *aggregate*
//!   egress rate with each suspect's ingress rate. Because every account
//!   flow shares the same egress aggregate, passive correlation cannot
//!   tell the accounts apart — the paper's reason the watermark is "more
//!   effective than other methods".

use crate::baseline::identify_by_correlation;
use crate::detect::{Detection, Detector};
use crate::embed::{EmbedConfig, WatermarkedSource};
use crate::pn::PnCode;
use anonsim::proxy::{wrap_for_proxy, AnonymizerProxy};
use anonsim::transform::FlowTransform;
use netsim::prelude::*;
use trials::{TrialReport, TrialRunner};

/// Parameters of one watermark experiment.
#[derive(Debug, Clone)]
pub struct WatermarkExperimentConfig {
    /// Number of candidate suspects (= accounts served) behind the proxy.
    pub suspects: usize,
    /// PN-code degree (length = 2^degree − 1).
    pub code_degree: u32,
    /// Chip duration in milliseconds.
    pub chip_ms: u64,
    /// Packet rate during +1 chips.
    pub rate_high_pps: f64,
    /// Packet rate during −1 chips.
    pub rate_low_pps: f64,
    /// Payload bytes per served packet.
    pub payload_len: usize,
    /// Proxy jitter in milliseconds `[lo, hi)`.
    pub proxy_jitter_ms: (u64, u64),
    /// Independent per-packet drop probability at the proxy (failure
    /// injection; the DSSS watermark should tolerate moderate loss).
    pub proxy_loss: f64,
    /// Poisson cross-traffic rate into each suspect (packets/second).
    pub cross_rate_pps: f64,
    /// Fine bins per chip for the rate observation.
    pub oversample: usize,
    /// Detection threshold in sigmas (of the null distribution).
    pub threshold_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WatermarkExperimentConfig {
    fn default() -> Self {
        WatermarkExperimentConfig {
            suspects: 8,
            code_degree: 9,
            chip_ms: 400,
            rate_high_pps: 120.0,
            rate_low_pps: 40.0,
            payload_len: 512,
            proxy_jitter_ms: (5, 60),
            proxy_loss: 0.0,
            cross_rate_pps: 60.0,
            oversample: 2,
            threshold_sigma: 4.0,
            seed: 0xbeef,
        }
    }
}

impl WatermarkExperimentConfig {
    /// The mean service rate, used for unwatermarked account flows.
    pub fn mean_rate_pps(&self) -> f64 {
        0.5 * (self.rate_high_pps + self.rate_low_pps)
    }
}

/// Outcome of one watermarked trial.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// Index of the account/suspect the watermark actually targeted.
    pub true_suspect: usize,
    /// Per-suspect detection results.
    pub detections: Vec<Detection>,
    /// The suspect the despreader identified (highest statistic among
    /// detections), if any cleared the threshold.
    pub identified: Option<usize>,
    /// The suspect the passive aggregate-correlation baseline picked in
    /// this (watermarked) run.
    pub baseline_identified: Option<usize>,
}

impl TrialOutcome {
    /// Whether the watermark identified the right suspect.
    pub fn watermark_correct(&self) -> bool {
        self.identified == Some(self.true_suspect)
    }

    /// Whether the baseline identified the right suspect.
    pub fn baseline_correct(&self) -> bool {
        self.baseline_identified == Some(self.true_suspect)
    }

    /// Count of non-target suspects whose statistic cleared the
    /// threshold (false positives).
    pub fn false_positives(&self) -> usize {
        self.detections
            .iter()
            .enumerate()
            .filter(|(i, d)| *i != self.true_suspect && d.detected)
            .count()
    }
}

struct TrialRun {
    true_suspect: usize,
    suspect_series: Vec<Vec<f64>>,
    gateway_series: Vec<f64>,
    code: PnCode,
}

/// Builds and runs the topology once. When `watermarked` is false the
/// target account is served at the constant mean rate like every other
/// account (the passive-baseline condition).
fn run_sim(config: &WatermarkExperimentConfig, trial: u64, watermarked: bool) -> TrialRun {
    let seed = config.seed ^ trial.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut rng = SimRng::seed_from(seed);
    let true_suspect = rng.next_below(config.suspects as u64) as usize;

    // Topology: account sources → gateway → proxy → suspects, plus a
    // cross-traffic source per suspect.
    let mut topo = Topology::new();
    let gateway = topo.add_node();
    let proxy = topo.add_node();
    topo.connect(gateway, proxy, SimDuration::from_millis(10));
    let mut accounts = Vec::new();
    let mut suspects = Vec::new();
    let mut cross_sources = Vec::new();
    for _ in 0..config.suspects {
        let a = topo.add_node();
        topo.connect(a, gateway, SimDuration::from_millis(2));
        accounts.push(a);
        let s = topo.add_node();
        let c = topo.add_node();
        topo.connect(proxy, s, SimDuration::from_millis(20));
        topo.connect(c, s, SimDuration::from_millis(5));
        suspects.push(s);
        cross_sources.push(c);
    }

    let mut sim = Simulator::new(topo, seed ^ 0xd15_ea5e);

    // Rate-only taps at every suspect (the ISP vantage point), and at the
    // gateway for the aggregate-egress baseline observable.
    let mut taps = Vec::new();
    for &s in &suspects {
        taps.push(sim.add_tap(Tap::new(
            TapPoint::Node(s),
            CaptureScope::RateOnly,
            CaptureFilter::any(),
        )));
    }
    let gateway_tap = sim.add_tap(Tap::new(
        TapPoint::Node(gateway),
        CaptureScope::RateOnly,
        CaptureFilter::any(),
    ));

    // The proxy jitters timing (and may drop).
    let (jlo, jhi) = config.proxy_jitter_ms;
    let transform = FlowTransform {
        drop_prob: config.proxy_loss,
        ..FlowTransform::jitter(jlo, jhi)
    };
    sim.set_protocol(proxy, AnonymizerProxy::new(transform));

    // One flow per account through the proxy; the target account gets the
    // PN modulation iff `watermarked`.
    let code = PnCode::m_sequence(config.code_degree, (seed as u32) | 1);
    let chip = SimDuration::from_millis(config.chip_ms);
    let mut signal = SimDuration::ZERO;
    for (i, &a) in accounts.iter().enumerate() {
        let is_target = i == true_suspect;
        let embed = if is_target && watermarked {
            EmbedConfig {
                code: code.clone(),
                chip_duration: chip,
                rate_high_pps: config.rate_high_pps,
                rate_low_pps: config.rate_low_pps,
                payload_len: config.payload_len,
                repetitions: 1,
            }
        } else {
            // Unmodulated account flow: a constant "all +1" code at the
            // mean rate — statistically a plain Poisson flow.
            EmbedConfig {
                code: PnCode::from_chips(vec![1; code.len()]),
                chip_duration: chip,
                rate_high_pps: config.mean_rate_pps(),
                rate_low_pps: config.mean_rate_pps(),
                payload_len: config.payload_len,
                repetitions: 1,
            }
        };
        signal = embed.signal_duration();
        sim.set_protocol(
            a,
            WatermarkedSource::new(
                embed,
                proxy,
                FlowId(1 + i as u64),
                wrap_for_proxy(suspects[i], &[]),
            ),
        );
    }

    // Cross traffic into every suspect.
    for (i, &c) in cross_sources.iter().enumerate() {
        sim.set_protocol(
            c,
            PoissonSource::new(
                suspects[i],
                FlowId(100 + i as u64),
                512,
                config.cross_rate_pps,
            ),
        );
    }

    sim.run_until(SimTime::ZERO + signal + SimDuration::from_secs(2));

    let fine_bin = SimDuration::from_millis(config.chip_ms / config.oversample as u64);
    let n_bins = code.len() * config.oversample + 4 * config.oversample;
    let suspect_series = taps
        .iter()
        .map(|&t| sim.tap(t).rate_series(SimTime::ZERO, fine_bin, n_bins))
        .collect();
    let gateway_series = sim
        .tap(gateway_tap)
        .rate_series(SimTime::ZERO, fine_bin, n_bins);
    TrialRun {
        true_suspect,
        suspect_series,
        gateway_series,
        code,
    }
}

/// Runs one watermarked trial and both identification strategies.
pub fn run_trial(config: &WatermarkExperimentConfig, trial: u64) -> TrialOutcome {
    let run = run_sim(config, trial, true);
    let detector = Detector::new(
        run.code.clone(),
        config.oversample,
        2 * config.oversample,
        Detector::sigma_threshold(run.code.len(), config.threshold_sigma),
    );
    let detections: Vec<Detection> = run
        .suspect_series
        .iter()
        .map(|s| detector.detect(s))
        .collect();
    let identified = detections
        .iter()
        .enumerate()
        .filter(|(_, d)| d.detected)
        .max_by(|a, b| {
            a.1.statistic
                .abs()
                .partial_cmp(&b.1.statistic.abs())
                .expect("statistics are finite")
        })
        .map(|(i, _)| i);
    let baseline_identified = identify_by_correlation(
        &run.gateway_series,
        &run.suspect_series,
        2 * config.oversample,
    )
    .map(|(i, _)| i);

    TrialOutcome {
        true_suspect: run.true_suspect,
        detections,
        identified,
        baseline_identified,
    }
}

/// Runs one *passive* trial: no watermark anywhere; the baseline must
/// identify the target account from aggregate-egress correlation alone.
/// Returns `(true_suspect, baseline_pick)`.
pub fn run_passive_trial(config: &WatermarkExperimentConfig, trial: u64) -> (usize, Option<usize>) {
    let run = run_sim(config, trial, false);
    let pick = identify_by_correlation(
        &run.gateway_series,
        &run.suspect_series,
        2 * config.oversample,
    )
    .map(|(i, _)| i);
    (run.true_suspect, pick)
}

/// Aggregate results over many trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatermarkSummary {
    /// Trials run (per condition).
    pub trials: usize,
    /// Fraction of watermarked trials where despreading identified the
    /// true suspect.
    pub watermark_accuracy: f64,
    /// Fraction of *passive* trials where aggregate correlation
    /// identified the true suspect (expected ≈ 1/suspects).
    pub baseline_accuracy: f64,
    /// Mean count of false-positive suspects per watermarked trial.
    pub mean_false_positives: f64,
}

/// Runs `trials` trials of each condition and aggregates, fanning the
/// trials across one worker per available core.
///
/// Every trial is a pure function of `(config, trial_index)`, so the
/// summary is identical at any worker count — see [`run_trials_on`] to
/// control the fan-out explicitly.
pub fn run_trials(config: &WatermarkExperimentConfig, trials: usize) -> WatermarkSummary {
    run_trials_on(&TrialRunner::new(), config, trials).0
}

/// Runs `trials` trials of each condition on an explicit [`TrialRunner`],
/// returning the aggregate summary and the runner's [`TrialReport`].
///
/// The per-trial outcomes (and therefore the summary) are bit-for-bit
/// independent of the runner's worker count.
pub fn run_trials_on(
    runner: &TrialRunner,
    config: &WatermarkExperimentConfig,
    trials: usize,
) -> (WatermarkSummary, TrialReport) {
    let (outcomes, report) = runner.run(trials, |t| {
        let watermarked = run_trial(config, t);
        let passive = run_passive_trial(config, t);
        (watermarked, passive)
    });
    let mut wm_hits = 0usize;
    let mut base_hits = 0usize;
    let mut fp = 0usize;
    for (outcome, (truth, pick)) in &outcomes {
        if outcome.watermark_correct() {
            wm_hits += 1;
        }
        fp += outcome.false_positives();
        if *pick == Some(*truth) {
            base_hits += 1;
        }
    }
    let summary = WatermarkSummary {
        trials,
        watermark_accuracy: wm_hits as f64 / trials as f64,
        baseline_accuracy: base_hits as f64 / trials as f64,
        mean_false_positives: fp as f64 / trials as f64,
    };
    (summary, report)
}

/// Runs every watermarked trial on an explicit runner and returns the raw
/// per-trial outcomes, ordered by trial index — the worker-count-stable
/// record the determinism tests serialize and compare.
pub fn run_trial_outcomes_on(
    runner: &TrialRunner,
    config: &WatermarkExperimentConfig,
    trials: usize,
) -> (Vec<TrialOutcome>, TrialReport) {
    runner.run(trials, |t| run_trial(config, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> WatermarkExperimentConfig {
        WatermarkExperimentConfig {
            suspects: 4,
            code_degree: 7,
            chip_ms: 300,
            ..WatermarkExperimentConfig::default()
        }
    }

    #[test]
    fn watermark_identifies_suspect_through_jittering_proxy() {
        let outcome = run_trial(&quick_config(), 1);
        assert!(
            outcome.watermark_correct(),
            "true {} identified {:?} detections {:?}",
            outcome.true_suspect,
            outcome.identified,
            outcome
                .detections
                .iter()
                .map(|d| d.statistic)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn target_statistic_dominates_others() {
        let outcome = run_trial(&quick_config(), 2);
        let target_stat = outcome.detections[outcome.true_suspect].statistic.abs();
        for (i, d) in outcome.detections.iter().enumerate() {
            if i != outcome.true_suspect {
                assert!(
                    target_stat > d.statistic.abs() * 2.0,
                    "target {} vs other {}",
                    target_stat,
                    d.statistic
                );
            }
        }
    }

    #[test]
    fn summary_over_trials_beats_passive_baseline() {
        let summary = run_trials(&quick_config(), 4);
        assert_eq!(summary.trials, 4);
        assert!(
            summary.watermark_accuracy >= 0.75,
            "watermark accuracy {}",
            summary.watermark_accuracy
        );
        assert!(
            summary.watermark_accuracy > summary.baseline_accuracy,
            "watermark {} must beat passive baseline {}",
            summary.watermark_accuracy,
            summary.baseline_accuracy
        );
    }

    #[test]
    fn passive_baseline_near_chance() {
        // With all account flows statistically identical, aggregate
        // correlation cannot single out the target.
        let cfg = quick_config();
        let mut hits = 0;
        let trials = 8;
        for t in 0..trials {
            let (truth, pick) = run_passive_trial(&cfg, t);
            if pick == Some(truth) {
                hits += 1;
            }
        }
        // Chance is 1/4; allow generous slack but rule out reliable
        // identification.
        assert!(hits <= trials / 2, "passive baseline hit {hits}/{trials}");
    }

    #[test]
    fn trials_are_deterministic() {
        let a = run_trial(&quick_config(), 3);
        let b = run_trial(&quick_config(), 3);
        assert_eq!(a.true_suspect, b.true_suspect);
        assert_eq!(a.identified, b.identified);
    }

    #[test]
    fn summary_is_worker_count_independent() {
        let cfg = quick_config();
        let (seq, _) = run_trials_on(&TrialRunner::sequential(), &cfg, 3);
        for threads in [2usize, 8] {
            let (par, report) = run_trials_on(&TrialRunner::with_threads(threads), &cfg, 3);
            assert_eq!(seq, par, "summary diverged at {threads} workers");
            assert_eq!(report.per_worker.iter().sum::<u64>(), 3);
        }
    }

    #[test]
    fn false_positive_counter() {
        let outcome = run_trial(&quick_config(), 1);
        assert!(outcome.false_positives() <= outcome.detections.len());
    }
}

/// Runs a *two-watermark* trial: two different accounts are watermarked
/// with two different m-sequences simultaneously. Code-division lets each
/// despreader find its own flow — the "long PN code" design scales to
/// tracking several suspects at once.
///
/// Returns `(first_correct, second_correct)`.
pub fn run_dual_watermark_trial(config: &WatermarkExperimentConfig, trial: u64) -> (bool, bool) {
    assert!(config.suspects >= 2, "need at least two suspects");
    let seed = config.seed ^ trial.wrapping_mul(0x2545_f491_4f6c_dd1d);
    let mut rng = SimRng::seed_from(seed);
    let first = rng.next_below(config.suspects as u64) as usize;
    let second =
        (first + 1 + rng.next_below(config.suspects as u64 - 1) as usize) % config.suspects;

    let mut topo = Topology::new();
    let gateway = topo.add_node();
    let proxy = topo.add_node();
    topo.connect(gateway, proxy, SimDuration::from_millis(10));
    let mut accounts = Vec::new();
    let mut suspects = Vec::new();
    for _ in 0..config.suspects {
        let a = topo.add_node();
        topo.connect(a, gateway, SimDuration::from_millis(2));
        accounts.push(a);
        let s = topo.add_node();
        topo.connect(proxy, s, SimDuration::from_millis(20));
        suspects.push(s);
    }
    let mut sim = Simulator::new(topo, seed ^ 0xd0a1);
    let mut taps = Vec::new();
    for &s in &suspects {
        taps.push(sim.add_tap(Tap::new(
            TapPoint::Node(s),
            CaptureScope::RateOnly,
            CaptureFilter::any(),
        )));
    }
    let (jlo, jhi) = config.proxy_jitter_ms;
    sim.set_protocol(proxy, AnonymizerProxy::new(FlowTransform::jitter(jlo, jhi)));

    // Two distinct m-sequences (different seeds → different phases).
    let code_a = PnCode::m_sequence(config.code_degree, 1);
    let code_b = PnCode::m_sequence(config.code_degree, 5);
    let chip = SimDuration::from_millis(config.chip_ms);
    let mut signal = SimDuration::ZERO;
    for (i, &a) in accounts.iter().enumerate() {
        let code = if i == first {
            code_a.clone()
        } else if i == second {
            code_b.clone()
        } else {
            PnCode::from_chips(vec![1; code_a.len()])
        };
        let watermarked = i == first || i == second;
        let embed = EmbedConfig {
            code,
            chip_duration: chip,
            rate_high_pps: if watermarked {
                config.rate_high_pps
            } else {
                config.mean_rate_pps()
            },
            rate_low_pps: if watermarked {
                config.rate_low_pps
            } else {
                config.mean_rate_pps()
            },
            payload_len: config.payload_len,
            repetitions: 1,
        };
        signal = embed.signal_duration();
        sim.set_protocol(
            a,
            WatermarkedSource::new(
                embed,
                proxy,
                FlowId(1 + i as u64),
                wrap_for_proxy(suspects[i], &[]),
            ),
        );
    }
    sim.run_until(SimTime::ZERO + signal + SimDuration::from_secs(2));

    let fine_bin = SimDuration::from_millis(config.chip_ms / config.oversample as u64);
    let n_bins = code_a.len() * config.oversample + 4 * config.oversample;
    let series: Vec<Vec<f64>> = taps
        .iter()
        .map(|&t| sim.tap(t).rate_series(SimTime::ZERO, fine_bin, n_bins))
        .collect();

    let identify = |code: &PnCode| -> Option<usize> {
        let det = Detector::new(
            code.clone(),
            config.oversample,
            2 * config.oversample,
            Detector::sigma_threshold(code.len(), config.threshold_sigma),
        );
        series
            .iter()
            .map(|s| det.detect(s))
            .enumerate()
            .filter(|(_, d)| d.detected)
            .max_by(|a, b| {
                a.1.statistic
                    .abs()
                    .partial_cmp(&b.1.statistic.abs())
                    .expect("finite")
            })
            .map(|(i, _)| i)
    };
    (
        identify(&code_a) == Some(first),
        identify(&code_b) == Some(second),
    )
}

#[cfg(test)]
mod dual_tests {
    use super::*;

    #[test]
    fn two_watermarks_coexist_by_code_division() {
        let cfg = WatermarkExperimentConfig {
            suspects: 4,
            code_degree: 7,
            chip_ms: 300,
            ..WatermarkExperimentConfig::default()
        };
        let (a_ok, b_ok) = run_dual_watermark_trial(&cfg, 1);
        assert!(a_ok, "first watermark must find its suspect");
        assert!(b_ok, "second watermark must find its suspect");
    }

    #[test]
    fn dual_trial_deterministic() {
        let cfg = WatermarkExperimentConfig {
            suspects: 4,
            code_degree: 6,
            chip_ms: 300,
            ..WatermarkExperimentConfig::default()
        };
        assert_eq!(
            run_dual_watermark_trial(&cfg, 2),
            run_dual_watermark_trial(&cfg, 2)
        );
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;

    /// The despreader tolerates moderate random loss at the proxy: loss
    /// scales every chip's rate down uniformly, and the correlation
    /// statistic is scale-invariant.
    #[test]
    fn watermark_survives_proxy_loss() {
        let cfg = WatermarkExperimentConfig {
            suspects: 4,
            code_degree: 7,
            chip_ms: 300,
            proxy_loss: 0.25,
            ..WatermarkExperimentConfig::default()
        };
        let outcome = run_trial(&cfg, 5);
        assert!(
            outcome.watermark_correct(),
            "stats {:?}",
            outcome
                .detections
                .iter()
                .map(|d| d.statistic)
                .collect::<Vec<_>>()
        );
    }
}
