//! Pseudo-noise (PN) spreading codes: maximal-length sequences from a
//! Galois LFSR.
//!
//! The §IV-B technique embeds "a long PN code" into a flow's traffic
//! rate. M-sequences have the two properties the detector relies on:
//! near-perfect balance (equal ±1 counts, so the modulation does not
//! change the mean rate) and a two-valued autocorrelation (N at zero
//! shift, −1 elsewhere, so synchronization peaks are unambiguous).

use std::fmt;

/// Primitive feedback tap masks for Galois LFSRs of degrees 3–13
/// (polynomials from standard tables; bit i set ⇒ tap on stage i).
fn taps_for_degree(degree: u32) -> Option<u32> {
    Some(match degree {
        3 => 0b110,
        4 => 0b1100,
        5 => 0b1_0100,
        6 => 0b11_0000,
        7 => 0b110_0000,
        8 => 0b1011_1000,
        9 => 0b1_0001_0000,
        10 => 0b10_0100_0000,
        11 => 0b101_0000_0000,
        12 => 0b1110_0000_1000,
        13 => 0b1_1100_1000_0000,
        _ => return None,
    })
}

/// A Galois LFSR over GF(2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    state: u32,
    taps: u32,
    degree: u32,
}

impl Lfsr {
    /// Creates an LFSR of the given degree (3–13) with a nonzero seed.
    ///
    /// # Errors
    ///
    /// Returns `None` for unsupported degrees. A zero seed is coerced to
    /// 1 (the all-zero state is a fixed point).
    pub fn new(degree: u32, seed: u32) -> Option<Lfsr> {
        let taps = taps_for_degree(degree)?;
        let mask = (1u32 << degree) - 1;
        let state = if seed & mask == 0 { 1 } else { seed & mask };
        Some(Lfsr {
            state,
            taps,
            degree,
        })
    }

    /// Advances one step, returning the output bit.
    pub fn next_bit(&mut self) -> u8 {
        let out = (self.state & 1) as u8;
        self.state >>= 1;
        if out == 1 {
            self.state ^= self.taps;
        }
        out
    }

    /// The sequence period for a maximal-length configuration.
    pub fn period(&self) -> usize {
        (1usize << self.degree) - 1
    }
}

/// A ±1 spreading code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PnCode {
    chips: Vec<i8>,
}

impl PnCode {
    /// Generates a maximal-length sequence of degree `degree`
    /// (length 2^degree − 1), mapped 0→+1, 1→−1.
    ///
    /// # Panics
    ///
    /// Panics if the degree is outside 3–13.
    pub fn m_sequence(degree: u32, seed: u32) -> PnCode {
        let mut lfsr =
            Lfsr::new(degree, seed).unwrap_or_else(|| panic!("unsupported LFSR degree {degree}"));
        let n = lfsr.period();
        let chips = (0..n)
            .map(|_| if lfsr.next_bit() == 0 { 1i8 } else { -1i8 })
            .collect();
        PnCode { chips }
    }

    /// Builds a code from raw chips.
    ///
    /// # Panics
    ///
    /// Panics if any chip is not ±1 or the code is empty.
    pub fn from_chips(chips: Vec<i8>) -> PnCode {
        assert!(!chips.is_empty(), "code must be nonempty");
        assert!(chips.iter().all(|&c| c == 1 || c == -1), "chips must be ±1");
        PnCode { chips }
    }

    /// The chips.
    pub fn chips(&self) -> &[i8] {
        &self.chips
    }

    /// Code length in chips.
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// Whether the code is empty (never true for constructed codes).
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// Sum of chips — balance; ±1 for an m-sequence.
    pub fn balance(&self) -> i32 {
        self.chips.iter().map(|&c| c as i32).sum()
    }

    /// Circular autocorrelation at the given shift (un-normalized).
    pub fn autocorrelation(&self, shift: usize) -> i32 {
        let n = self.len();
        (0..n)
            .map(|i| self.chips[i] as i32 * self.chips[(i + shift) % n] as i32)
            .sum()
    }

    /// The chip at a position (periodic extension).
    pub fn chip(&self, index: usize) -> i8 {
        self.chips[index % self.chips.len()]
    }
}

impl fmt::Display for PnCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PN[{}]", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_reaches_full_period() {
        for degree in [3u32, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13] {
            let mut lfsr = Lfsr::new(degree, 1).unwrap();
            let start = lfsr.state;
            let mut steps = 0usize;
            loop {
                lfsr.next_bit();
                steps += 1;
                if lfsr.state == start {
                    break;
                }
                assert!(steps <= lfsr.period(), "degree {degree} not maximal");
            }
            assert_eq!(steps, lfsr.period(), "degree {degree} not maximal");
        }
    }

    #[test]
    fn zero_seed_coerced() {
        let mut a = Lfsr::new(5, 0).unwrap();
        let mut b = Lfsr::new(5, 1).unwrap();
        for _ in 0..10 {
            assert_eq!(a.next_bit(), b.next_bit());
        }
    }

    #[test]
    fn unsupported_degree() {
        assert!(Lfsr::new(2, 1).is_none());
        assert!(Lfsr::new(40, 1).is_none());
    }

    #[test]
    fn m_sequence_length_and_balance() {
        for degree in [5u32, 7, 9, 11] {
            let code = PnCode::m_sequence(degree, 1);
            assert_eq!(code.len(), (1 << degree) - 1);
            assert_eq!(code.balance().abs(), 1, "degree {degree}");
        }
    }

    #[test]
    fn m_sequence_autocorrelation_two_valued() {
        let code = PnCode::m_sequence(7, 3);
        let n = code.len() as i32;
        assert_eq!(code.autocorrelation(0), n);
        for shift in 1..code.len() {
            assert_eq!(code.autocorrelation(shift), -1, "shift {shift}");
        }
    }

    #[test]
    fn different_seeds_give_shifted_sequences() {
        let a = PnCode::m_sequence(6, 1);
        let b = PnCode::m_sequence(6, 5);
        assert_ne!(a.chips(), b.chips());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn periodic_chip_access() {
        let code = PnCode::m_sequence(3, 1);
        for i in 0..code.len() * 3 {
            assert_eq!(code.chip(i), code.chips()[i % code.len()]);
        }
    }

    #[test]
    fn from_chips_validation() {
        let c = PnCode::from_chips(vec![1, -1, 1]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.to_string(), "PN[3]");
    }

    #[test]
    #[should_panic(expected = "chips must be ±1")]
    fn invalid_chip_rejected() {
        PnCode::from_chips(vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_code_rejected() {
        PnCode::from_chips(vec![]);
    }
}
