//! The §IV-A forensic investigator: a timing attack on OneSwarm-style
//! anonymous filesharing (after Prusty, Levine & Liberatore, CCS 2011).
//!
//! "Law enforcement officers join the anonymous P2P system; do a query
//! for child pornography pictures within the system. By collecting the
//! delay time of the respond message from neighbors, law enforcement
//! officers can identify whether the neighbors are sources or trusted
//! nodes of the sources." The investigator only sends ordinary protocol
//! queries and observes its own incoming traffic — no process needed
//! (Table 1 row 10).

use crate::message::Message;
use netsim::packet::{FlowId, Packet, Transport};
use netsim::prelude::{Context, NodeId, Protocol, SimDuration, SimTime};
use std::collections::HashMap;

/// One neighbor's probe measurements.
#[derive(Debug, Clone, Default)]
pub struct NeighborSamples {
    /// First-response delay of each completed probe.
    pub delays: Vec<SimDuration>,
    /// Probes that never got a response.
    pub timeouts: u64,
}

impl NeighborSamples {
    /// The minimum observed first-response delay, if any probe completed.
    pub fn min_delay(&self) -> Option<SimDuration> {
        self.delays.iter().copied().min()
    }
}

/// The timing-attack investigator protocol.
///
/// Attach it to a node with overlay links to each probe target; it sends
/// `probes_per_target` queries to each target, spaced `probe_gap` apart,
/// and records the delay of the *first* response per probe.
#[derive(Debug)]
pub struct TimingInvestigator {
    targets: Vec<NodeId>,
    content_id: u64,
    probes_per_target: usize,
    probe_gap: SimDuration,
    ttl: u8,
    /// query_id → (target, sent_at); removed on first response.
    outstanding: HashMap<u64, (NodeId, SimTime)>,
    samples: HashMap<NodeId, NeighborSamples>,
    next_query_id: u64,
}

impl TimingInvestigator {
    /// Creates an investigator probing `targets` for `content_id`.
    pub fn new(
        targets: Vec<NodeId>,
        content_id: u64,
        probes_per_target: usize,
        probe_gap: SimDuration,
        ttl: u8,
    ) -> Self {
        TimingInvestigator {
            targets,
            content_id,
            probes_per_target,
            probe_gap,
            ttl,
            outstanding: HashMap::new(),
            samples: HashMap::new(),
            next_query_id: 1,
        }
    }

    /// The samples gathered so far, per target.
    pub fn samples(&self) -> &HashMap<NodeId, NeighborSamples> {
        &self.samples
    }

    /// Marks every still-outstanding probe as a timeout (call after the
    /// run deadline).
    pub fn close_outstanding(&mut self) {
        for (_qid, (target, _t)) in self.outstanding.drain() {
            self.samples.entry(target).or_default().timeouts += 1;
        }
    }

    /// Classifies each target: `true` = source, by thresholding the
    /// minimum observed delay.
    pub fn classify(&self, threshold: SimDuration) -> HashMap<NodeId, bool> {
        self.targets
            .iter()
            .map(|&t| {
                let is_source = self
                    .samples
                    .get(&t)
                    .and_then(NeighborSamples::min_delay)
                    .map(|d| d <= threshold)
                    .unwrap_or(false);
                (t, is_source)
            })
            .collect()
    }
}

impl Protocol for TimingInvestigator {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Interleave probes across targets, one probe slot per gap.
        let mut slot = 0u64;
        for k in 0..self.probes_per_target {
            for (i, _) in self.targets.iter().enumerate() {
                // Token encodes the target index; query id assigned when
                // the timer fires.
                let token = (k as u64) << 32 | i as u64;
                ctx.set_timer(self.probe_gap.mul(slot + 1), token);
                slot += 1;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        let target = self.targets[(token & 0xffff_ffff) as usize];
        let query_id = self.next_query_id;
        self.next_query_id += 1;
        let msg = Message::Query {
            query_id,
            content_id: self.content_id,
            ttl: self.ttl,
        };
        let p = Packet::new(
            ctx.node(),
            target,
            Transport::Tcp {
                src_port: 6881,
                dst_port: 6881,
                seq: 0,
            },
            FlowId(query_id),
            msg.encode(),
        );
        self.outstanding.insert(query_id, (target, ctx.time()));
        ctx.send(p);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let Some(Message::Response { query_id, .. }) = Message::decode(packet.payload()) else {
            return;
        };
        // Only the first response to a probe matters — it bounds the
        // neighbor's fastest path to the content.
        if let Some((target, sent_at)) = self.outstanding.remove(&query_id) {
            let delay = ctx.time() - sent_at;
            self.samples.entry(target).or_default().delays.push(delay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::{DelayModel, OneSwarmPeer};
    use netsim::prelude::*;

    #[test]
    fn investigator_distinguishes_source_from_proxy() {
        // investigator(0) linked to source(1) and proxy(2); proxy trusts
        // hidden source(3).
        let mut topo = Topology::new();
        let inv = topo.add_node();
        let src = topo.add_node();
        let proxy = topo.add_node();
        let hidden = topo.add_node();
        for &n in &[src, proxy] {
            topo.connect(inv, n, SimDuration::from_millis(10));
        }
        topo.connect(proxy, hidden, SimDuration::from_millis(10));

        let dm = DelayModel::default();
        let mut sim = Simulator::new(topo, 11);
        sim.set_protocol(src, OneSwarmPeer::new(vec![inv], [42], dm));
        sim.set_protocol(proxy, OneSwarmPeer::new(vec![inv, hidden], [], dm));
        sim.set_protocol(hidden, OneSwarmPeer::new(vec![proxy], [42], dm));
        sim.set_protocol(
            inv,
            TimingInvestigator::new(vec![src, proxy], 42, 5, SimDuration::from_secs(3), 8),
        );
        sim.run_until(SimTime::from_secs(60));

        let mut inv_proto = sim.take_protocol_as::<TimingInvestigator>(inv).unwrap();
        inv_proto.close_outstanding();
        // Threshold: max source delay 300ms + 2 RTTs slack.
        let classified = inv_proto.classify(SimDuration::from_millis(340));
        assert!(classified[&src], "direct source must classify as source");
        assert!(!classified[&proxy], "proxy must not classify as source");
    }

    #[test]
    fn unresponsive_target_counts_timeouts_and_classifies_negative() {
        let mut topo = Topology::new();
        let inv = topo.add_node();
        let deaf = topo.add_node();
        topo.connect(inv, deaf, SimDuration::from_millis(10));
        let mut sim = Simulator::new(topo, 2);
        // deaf node runs no protocol: queries vanish.
        sim.set_protocol(
            inv,
            TimingInvestigator::new(vec![deaf], 7, 3, SimDuration::from_secs(1), 4),
        );
        sim.run_until(SimTime::from_secs(10));
        let mut inv_proto = sim.take_protocol_as::<TimingInvestigator>(inv).unwrap();
        inv_proto.close_outstanding();
        assert_eq!(inv_proto.samples()[&deaf].timeouts, 3);
        assert!(inv_proto.samples()[&deaf].min_delay().is_none());
        assert!(!inv_proto.classify(SimDuration::from_secs(1))[&deaf]);
    }

    #[test]
    fn samples_accumulate_per_probe() {
        let mut topo = Topology::new();
        let inv = topo.add_node();
        let src = topo.add_node();
        topo.connect(inv, src, SimDuration::from_millis(5));
        let mut sim = Simulator::new(topo, 3);
        sim.set_protocol(
            src,
            OneSwarmPeer::new(vec![inv], [1], DelayModel::default()),
        );
        sim.set_protocol(
            inv,
            TimingInvestigator::new(vec![src], 1, 4, SimDuration::from_secs(2), 2),
        );
        sim.run_until(SimTime::from_secs(30));
        let inv_proto = sim.take_protocol_as::<TimingInvestigator>(inv).unwrap();
        assert_eq!(inv_proto.samples()[&src].delays.len(), 4);
        for d in &inv_proto.samples()[&src].delays {
            assert!(*d >= SimDuration::from_millis(160));
            assert!(*d < SimDuration::from_millis(311));
        }
    }
}
