//! Wire format for overlay messages, carried as packet payloads.
//!
//! The encoding is deliberately simple (tag byte + big-endian fields) —
//! the point is that queries and responses are ordinary protocol traffic
//! visible to every participant, which is exactly why the paper's §IV-A
//! holds the timing attack lawful without process.

use std::fmt;

/// An overlay search query or its response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Message {
    /// A search for `content_id`, flooded through the overlay.
    Query {
        /// Unique id correlating responses to this query.
        query_id: u64,
        /// The content searched for.
        content_id: u64,
        /// Remaining overlay hop budget.
        ttl: u8,
    },
    /// A positive response routed back toward the querier.
    Response {
        /// The query being answered.
        query_id: u64,
        /// The content found.
        content_id: u64,
    },
    /// A response that openly names its source — how "normal P2P
    /// software" (Table 1 row 9) behaves: "the information is such as
    /// other user's name and the file names they share".
    SourceResponse {
        /// The query being answered.
        query_id: u64,
        /// The content found.
        content_id: u64,
        /// The responding peer's public identity.
        source: u64,
    },
}

const TAG_QUERY: u8 = 1;
const TAG_RESPONSE: u8 = 2;
const TAG_SOURCE_RESPONSE: u8 = 3;

impl Message {
    /// Serializes to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(18);
        match self {
            Message::Query {
                query_id,
                content_id,
                ttl,
            } => {
                out.push(TAG_QUERY);
                out.extend_from_slice(&query_id.to_be_bytes());
                out.extend_from_slice(&content_id.to_be_bytes());
                out.push(*ttl);
            }
            Message::Response {
                query_id,
                content_id,
            } => {
                out.push(TAG_RESPONSE);
                out.extend_from_slice(&query_id.to_be_bytes());
                out.extend_from_slice(&content_id.to_be_bytes());
            }
            Message::SourceResponse {
                query_id,
                content_id,
                source,
            } => {
                out.push(TAG_SOURCE_RESPONSE);
                out.extend_from_slice(&query_id.to_be_bytes());
                out.extend_from_slice(&content_id.to_be_bytes());
                out.extend_from_slice(&source.to_be_bytes());
            }
        }
        out
    }

    /// Parses payload bytes.
    ///
    /// Returns `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<Message> {
        let (&tag, rest) = bytes.split_first()?;
        let read_u64 = |b: &[u8]| -> Option<u64> { Some(u64::from_be_bytes(b.try_into().ok()?)) };
        match tag {
            TAG_QUERY => {
                if rest.len() != 17 {
                    return None;
                }
                Some(Message::Query {
                    query_id: read_u64(&rest[0..8])?,
                    content_id: read_u64(&rest[8..16])?,
                    ttl: rest[16],
                })
            }
            TAG_RESPONSE => {
                if rest.len() != 16 {
                    return None;
                }
                Some(Message::Response {
                    query_id: read_u64(&rest[0..8])?,
                    content_id: read_u64(&rest[8..16])?,
                })
            }
            TAG_SOURCE_RESPONSE => {
                if rest.len() != 24 {
                    return None;
                }
                Some(Message::SourceResponse {
                    query_id: read_u64(&rest[0..8])?,
                    content_id: read_u64(&rest[8..16])?,
                    source: read_u64(&rest[16..24])?,
                })
            }
            _ => None,
        }
    }

    /// The query id of either variant.
    pub fn query_id(&self) -> u64 {
        match self {
            Message::Query { query_id, .. }
            | Message::Response { query_id, .. }
            | Message::SourceResponse { query_id, .. } => *query_id,
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::Query {
                query_id,
                content_id,
                ttl,
            } => write!(f, "query#{query_id} for c{content_id} (ttl {ttl})"),
            Message::Response {
                query_id,
                content_id,
            } => write!(f, "response#{query_id} has c{content_id}"),
            Message::SourceResponse {
                query_id,
                content_id,
                source,
            } => write!(
                f,
                "response#{query_id} has c{content_id} (source n{source})"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trip() {
        let m = Message::Query {
            query_id: 0xdead_beef,
            content_id: 7,
            ttl: 5,
        };
        assert_eq!(Message::decode(&m.encode()), Some(m));
    }

    #[test]
    fn response_round_trip() {
        let m = Message::Response {
            query_id: u64::MAX,
            content_id: 0,
        };
        assert_eq!(Message::decode(&m.encode()), Some(m));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert_eq!(Message::decode(&[]), None);
        assert_eq!(Message::decode(&[9, 1, 2]), None);
        assert_eq!(Message::decode(&[TAG_QUERY, 0, 0]), None);
        let mut long = Message::Response {
            query_id: 1,
            content_id: 2,
        }
        .encode();
        long.push(0);
        assert_eq!(Message::decode(&long), None);
    }

    #[test]
    fn source_response_round_trip() {
        let m = Message::SourceResponse {
            query_id: 7,
            content_id: 8,
            source: 42,
        };
        assert_eq!(Message::decode(&m.encode()), Some(m));
        assert!(m.to_string().contains("source n42"));
        assert_eq!(m.query_id(), 7);
    }

    #[test]
    fn query_id_accessor_and_display() {
        let q = Message::Query {
            query_id: 3,
            content_id: 4,
            ttl: 1,
        };
        assert_eq!(q.query_id(), 3);
        assert!(q.to_string().contains("query#3"));
        let r = Message::Response {
            query_id: 3,
            content_id: 4,
        };
        assert_eq!(r.query_id(), 3);
        assert!(r.to_string().contains("response#3"));
    }
}
