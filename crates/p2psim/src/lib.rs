//! # p2psim
//!
//! Peer-to-peer overlay simulators on top of [`netsim`], reproducing the
//! paper's §IV-A analysis: the forensic investigation of an anonymous
//! filesharing system by response-delay timing (after Prusty, Levine &
//! Liberatore, CCS 2011).
//!
//! Two peer kinds are provided:
//!
//! * [`peer::GnutellaPeer`] — "normal P2P software" (Table 1 row 9):
//!   immediate flooding, immediate answers;
//! * [`peer::OneSwarmPeer`] — "anonymous P2P software" (Table 1 row 10):
//!   trusted-edge forwarding with artificial per-hop delays.
//!
//! The [`investigator::TimingInvestigator`] joins the overlay as an
//! ordinary peer, probes its neighbors with protocol-visible queries, and
//! classifies each neighbor as *source* or *proxy* purely from first-
//! response delays. [`experiment::run_experiment`] packages the whole
//! §IV-A evaluation.
//!
//! ```
//! use p2psim::experiment::{run_experiment, ExperimentConfig};
//!
//! let cfg = ExperimentConfig {
//!     peers: 24,
//!     sources: 4,
//!     targets: 8,
//!     probes: 2,
//!     ..ExperimentConfig::default()
//! };
//! let result = run_experiment(&cfg);
//! assert!(result.metrics.accuracy() > 0.8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiment;
pub mod gnutella_experiment;
pub mod investigator;
pub mod message;
pub mod peer;

pub use experiment::{run_experiment, ExperimentConfig, ExperimentResult};
pub use gnutella_experiment::{run_comparison, ComparisonConfig, ComparisonResult};
pub use investigator::TimingInvestigator;
pub use message::Message;
pub use peer::{DelayModel, GnutellaPeer, OneSwarmPeer};
