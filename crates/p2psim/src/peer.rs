//! Overlay peers: a Gnutella-style open flooding peer and a
//! OneSwarm-style anonymous peer with trusted-edge forwarding and
//! per-hop artificial delays.

use crate::message::Message;
use netsim::packet::{FlowId, Packet, Transport};
use netsim::prelude::{Context, NodeId, Protocol, SimDuration};
use std::collections::{HashMap, HashSet};

/// Delay parameters for a OneSwarm-style peer (all uniform intervals).
///
/// OneSwarm obscures sourcehood by delaying *both* its own responses and
/// its forwards, but a forwarded response necessarily pays the forward
/// delay **plus** the downstream peer's own handling — the gap the CCS'11
/// attack measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    /// Uniform delay a source waits before answering a query it can
    /// serve, in milliseconds `[min, max)`.
    pub source_delay_ms: (u64, u64),
    /// Uniform delay added before forwarding a query to each trusted
    /// neighbor, in milliseconds `[min, max)`.
    pub forward_delay_ms: (u64, u64),
}

impl Default for DelayModel {
    fn default() -> Self {
        // The CCS'11 measurements put OneSwarm's artificial delays in the
        // 150–300 ms band.
        DelayModel {
            source_delay_ms: (150, 300),
            forward_delay_ms: (150, 300),
        }
    }
}

impl DelayModel {
    fn sample(interval: (u64, u64), ctx: &mut Context<'_>) -> SimDuration {
        let (lo, hi) = interval;
        let ms = if hi > lo { ctx.rng().range(lo, hi) } else { lo };
        SimDuration::from_millis(ms)
    }
}

/// Common peer plumbing shared by both peer kinds.
#[derive(Debug, Clone)]
struct PeerCore {
    /// Overlay neighbors this peer will talk to.
    neighbors: Vec<NodeId>,
    /// Content ids this peer can serve.
    content: HashSet<u64>,
    /// query_id → neighbor the query arrived from (reverse path).
    reverse_path: HashMap<u64, NodeId>,
    /// Queries already seen (flood suppression).
    seen: HashSet<u64>,
    served: u64,
    forwarded: u64,
}

impl PeerCore {
    fn new(neighbors: Vec<NodeId>, content: HashSet<u64>) -> Self {
        PeerCore {
            neighbors,
            content,
            reverse_path: HashMap::new(),
            seen: HashSet::new(),
            served: 0,
            forwarded: 0,
        }
    }

    fn packet_to(ctx: &mut Context<'_>, to: NodeId, msg: &Message) -> Packet {
        Packet::new(
            ctx.node(),
            to,
            Transport::Tcp {
                src_port: 6881,
                dst_port: 6881,
                seq: 0,
            },
            FlowId(msg.query_id()),
            msg.encode(),
        )
    }
}

/// A Gnutella-style peer: floods queries to *all* neighbors immediately,
/// answers immediately when it holds the content. "Normal P2P software"
/// in Table 1 row 9.
#[derive(Debug, Clone)]
pub struct GnutellaPeer {
    core: PeerCore,
}

impl GnutellaPeer {
    /// Creates a peer with the given overlay neighbors and content.
    pub fn new(neighbors: Vec<NodeId>, content: impl IntoIterator<Item = u64>) -> Self {
        GnutellaPeer {
            core: PeerCore::new(neighbors, content.into_iter().collect()),
        }
    }

    /// Queries served from local content.
    pub fn served(&self) -> u64 {
        self.core.served
    }

    /// Queries forwarded onward.
    pub fn forwarded(&self) -> u64 {
        self.core.forwarded
    }
}

impl Protocol for GnutellaPeer {
    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let Some(msg) = Message::decode(packet.payload()) else {
            return;
        };
        let from = packet.src();
        match msg {
            Message::Query {
                query_id,
                content_id,
                ttl,
            } => {
                if !self.core.seen.insert(query_id) {
                    return;
                }
                self.core.reverse_path.insert(query_id, from);
                if self.core.content.contains(&content_id) {
                    self.core.served += 1;
                    // Normal P2P openly names the source in its hits.
                    let resp = Message::SourceResponse {
                        query_id,
                        content_id,
                        source: ctx.node().0 as u64,
                    };
                    let p = PeerCore::packet_to(ctx, from, &resp);
                    ctx.send(p);
                }
                if ttl > 1 {
                    let fwd = Message::Query {
                        query_id,
                        content_id,
                        ttl: ttl - 1,
                    };
                    let neighbors = self.core.neighbors.clone();
                    for n in neighbors {
                        if n != from {
                            self.core.forwarded += 1;
                            let p = PeerCore::packet_to(ctx, n, &fwd);
                            ctx.send(p);
                        }
                    }
                }
            }
            Message::Response { query_id, .. } | Message::SourceResponse { query_id, .. } => {
                // Route back along the reverse path.
                if let Some(&back) = self.core.reverse_path.get(&query_id) {
                    let p = PeerCore::packet_to(ctx, back, &msg);
                    ctx.send(p);
                }
            }
        }
    }
}

/// A OneSwarm-style anonymous peer: forwards only over *trusted* edges,
/// inserts artificial delays before both serving and forwarding, and
/// relays responses back hop-by-hop so the querier never learns who the
/// source was — except through timing.
#[derive(Debug, Clone)]
pub struct OneSwarmPeer {
    core: PeerCore,
    delays: DelayModel,
    /// Deferred sends keyed by timer token.
    pending: HashMap<u64, (NodeId, Message)>,
    next_token: u64,
}

impl OneSwarmPeer {
    /// Creates a peer whose `neighbors` are its trusted edges.
    pub fn new(
        trusted_neighbors: Vec<NodeId>,
        content: impl IntoIterator<Item = u64>,
        delays: DelayModel,
    ) -> Self {
        OneSwarmPeer {
            core: PeerCore::new(trusted_neighbors, content.into_iter().collect()),
            delays,
            pending: HashMap::new(),
            next_token: 0,
        }
    }

    /// Queries served from local content.
    pub fn served(&self) -> u64 {
        self.core.served
    }

    /// Queries forwarded onward.
    pub fn forwarded(&self) -> u64 {
        self.core.forwarded
    }

    fn defer(&mut self, ctx: &mut Context<'_>, delay: SimDuration, to: NodeId, msg: Message) {
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, (to, msg));
        ctx.set_timer(delay, token);
    }
}

impl Protocol for OneSwarmPeer {
    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let Some(msg) = Message::decode(packet.payload()) else {
            return;
        };
        let from = packet.src();
        match msg {
            Message::Query {
                query_id,
                content_id,
                ttl,
            } => {
                if !self.core.seen.insert(query_id) {
                    return;
                }
                self.core.reverse_path.insert(query_id, from);
                if self.core.content.contains(&content_id) {
                    self.core.served += 1;
                    let delay = DelayModel::sample(self.delays.source_delay_ms, ctx);
                    let resp = Message::Response {
                        query_id,
                        content_id,
                    };
                    self.defer(ctx, delay, from, resp);
                }
                if ttl > 1 {
                    let fwd = Message::Query {
                        query_id,
                        content_id,
                        ttl: ttl - 1,
                    };
                    let neighbors = self.core.neighbors.clone();
                    for n in neighbors {
                        if n != from {
                            self.core.forwarded += 1;
                            let delay = DelayModel::sample(self.delays.forward_delay_ms, ctx);
                            self.defer(ctx, delay, n, fwd);
                        }
                    }
                }
            }
            Message::Response { query_id, .. } | Message::SourceResponse { query_id, .. } => {
                if let Some(&back) = self.core.reverse_path.get(&query_id) {
                    // Relaying a response is also delayed, like any
                    // forward.
                    let delay = DelayModel::sample(self.delays.forward_delay_ms, ctx);
                    self.defer(ctx, delay, back, msg);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if let Some((to, msg)) = self.pending.remove(&token) {
            let p = PeerCore::packet_to(ctx, to, &msg);
            ctx.send(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::prelude::*;

    fn overlay_line(n: usize, latency_ms: u64) -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let nodes = t.add_nodes(n);
        for w in nodes.windows(2) {
            t.connect(w[0], w[1], SimDuration::from_millis(latency_ms));
        }
        (t, nodes)
    }

    /// Collector protocol that records response arrival times.
    #[derive(Debug, Default)]
    struct Querier {
        responses: Vec<(SimTime, Message)>,
    }

    impl Protocol for Querier {
        fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
            if let Some(msg) = Message::decode(packet.payload()) {
                self.responses.push((ctx.time(), msg));
            }
        }
    }

    fn send_query(sim: &mut Simulator, from: NodeId, to: NodeId, query_id: u64, content: u64) {
        let msg = Message::Query {
            query_id,
            content_id: content,
            ttl: 8,
        };
        let p = Packet::new(
            from,
            to,
            Transport::Tcp {
                src_port: 6881,
                dst_port: 6881,
                seq: 0,
            },
            FlowId(query_id),
            msg.encode(),
        );
        sim.inject(from, p);
    }

    #[test]
    fn gnutella_flood_reaches_distant_source() {
        // querier(0) - peer(1) - peer(2) - source(3)
        let (topo, nodes) = overlay_line(4, 10);
        let mut sim = Simulator::new(topo, 1);
        sim.set_protocol(nodes[0], Querier::default());
        sim.set_protocol(nodes[1], GnutellaPeer::new(vec![nodes[0], nodes[2]], []));
        sim.set_protocol(nodes[2], GnutellaPeer::new(vec![nodes[1], nodes[3]], []));
        sim.set_protocol(nodes[3], GnutellaPeer::new(vec![nodes[2]], [42]));
        sim.start();
        send_query(&mut sim, nodes[0], nodes[1], 1, 42);
        sim.run_until(SimTime::from_secs(2));
        let q = sim.take_protocol_as::<Querier>(nodes[0]).unwrap();
        assert_eq!(q.responses.len(), 1);
        // 3 hops out + 3 hops back at 10ms each = 60ms, no artificial delay.
        assert_eq!(q.responses[0].0, SimTime::from_millis(60));
    }

    #[test]
    fn gnutella_suppresses_duplicate_queries() {
        let (topo, nodes) = overlay_line(3, 5);
        let mut sim = Simulator::new(topo, 1);
        sim.set_protocol(nodes[0], Querier::default());
        sim.set_protocol(nodes[1], GnutellaPeer::new(vec![nodes[0], nodes[2]], [7]));
        sim.set_protocol(nodes[2], GnutellaPeer::new(vec![nodes[1]], [7]));
        sim.start();
        send_query(&mut sim, nodes[0], nodes[1], 5, 7);
        send_query(&mut sim, nodes[0], nodes[1], 5, 7); // duplicate
        sim.run_until(SimTime::from_secs(2));
        let q = sim.take_protocol_as::<Querier>(nodes[0]).unwrap();
        // One response from node1, one relayed from node2 — duplicates
        // suppressed, so exactly 2.
        assert_eq!(q.responses.len(), 2);
    }

    #[test]
    fn ttl_limits_flood_depth() {
        let (topo, nodes) = overlay_line(5, 5);
        let mut sim = Simulator::new(topo, 1);
        sim.set_protocol(nodes[0], Querier::default());
        for i in 1..4 {
            sim.set_protocol(
                nodes[i],
                GnutellaPeer::new(vec![nodes[i - 1], nodes[i + 1]], []),
            );
        }
        sim.set_protocol(nodes[4], GnutellaPeer::new(vec![nodes[3]], [9]));
        sim.start();
        // TTL 2: reaches nodes 1 and 2 only — source at 4 never hears it.
        let msg = Message::Query {
            query_id: 1,
            content_id: 9,
            ttl: 2,
        };
        let p = Packet::new(
            nodes[0],
            nodes[1],
            Transport::Tcp {
                src_port: 6881,
                dst_port: 6881,
                seq: 0,
            },
            FlowId(1),
            msg.encode(),
        );
        sim.inject(nodes[0], p);
        sim.run_until(SimTime::from_secs(2));
        let q = sim.take_protocol_as::<Querier>(nodes[0]).unwrap();
        assert!(q.responses.is_empty());
    }

    #[test]
    fn oneswarm_source_answers_after_artificial_delay() {
        let (topo, nodes) = overlay_line(2, 10);
        let mut sim = Simulator::new(topo, 3);
        sim.set_protocol(nodes[0], Querier::default());
        sim.set_protocol(
            nodes[1],
            OneSwarmPeer::new(vec![nodes[0]], [42], DelayModel::default()),
        );
        sim.start();
        send_query(&mut sim, nodes[0], nodes[1], 1, 42);
        sim.run_until(SimTime::from_secs(3));
        let q = sim.take_protocol_as::<Querier>(nodes[0]).unwrap();
        assert_eq!(q.responses.len(), 1);
        let t = q.responses[0].0;
        // 20 ms network RTT + source delay in [150, 300) ms.
        assert!(t >= SimTime::from_millis(170), "t={t}");
        assert!(t < SimTime::from_millis(320), "t={t}");
    }

    #[test]
    fn oneswarm_proxy_response_pays_extra_hops() {
        // querier(0) - proxy(1) - source(2): proxied response pays
        // forward delay + source delay + relay delay + 4 link hops.
        let (topo, nodes) = overlay_line(3, 10);
        let mut sim = Simulator::new(topo, 4);
        sim.set_protocol(nodes[0], Querier::default());
        sim.set_protocol(
            nodes[1],
            OneSwarmPeer::new(vec![nodes[0], nodes[2]], [], DelayModel::default()),
        );
        sim.set_protocol(
            nodes[2],
            OneSwarmPeer::new(vec![nodes[1]], [42], DelayModel::default()),
        );
        sim.start();
        send_query(&mut sim, nodes[0], nodes[1], 1, 42);
        sim.run_until(SimTime::from_secs(5));
        let q = sim.take_protocol_as::<Querier>(nodes[0]).unwrap();
        assert_eq!(q.responses.len(), 1);
        // Minimum: 150 (fwd) + 150 (src) + 150 (relay) + 40 net = 490 ms —
        // always distinguishable from a direct source's max 300 + 20.
        assert!(q.responses[0].0 >= SimTime::from_millis(490));
    }

    #[test]
    fn oneswarm_counters() {
        let (topo, nodes) = overlay_line(3, 10);
        let mut sim = Simulator::new(topo, 4);
        sim.set_protocol(nodes[0], Querier::default());
        sim.set_protocol(
            nodes[1],
            OneSwarmPeer::new(vec![nodes[0], nodes[2]], [], DelayModel::default()),
        );
        sim.set_protocol(
            nodes[2],
            OneSwarmPeer::new(vec![nodes[1]], [42], DelayModel::default()),
        );
        sim.start();
        send_query(&mut sim, nodes[0], nodes[1], 1, 42);
        sim.run_until(SimTime::from_secs(5));
        let proxy = sim.take_protocol_as::<OneSwarmPeer>(nodes[1]).unwrap();
        let source = sim.take_protocol_as::<OneSwarmPeer>(nodes[2]).unwrap();
        assert_eq!(proxy.served(), 0);
        assert!(proxy.forwarded() >= 1);
        assert_eq!(source.served(), 1);
    }

    #[test]
    fn delay_model_degenerate_interval() {
        // min == max must not panic (range requires lo < hi).
        let dm = DelayModel {
            source_delay_ms: (100, 100),
            forward_delay_ms: (100, 100),
        };
        let (topo, nodes) = overlay_line(2, 1);
        let mut sim = Simulator::new(topo, 5);
        sim.set_protocol(nodes[0], Querier::default());
        sim.set_protocol(nodes[1], OneSwarmPeer::new(vec![nodes[0]], [1], dm));
        sim.start();
        send_query(&mut sim, nodes[0], nodes[1], 1, 1);
        sim.run_until(SimTime::from_secs(1));
        let q = sim.take_protocol_as::<Querier>(nodes[0]).unwrap();
        assert_eq!(q.responses.len(), 1);
        assert_eq!(q.responses[0].0, SimTime::from_millis(102));
    }
}
