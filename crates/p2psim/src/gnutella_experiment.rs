//! The Table 1 row-9-vs-row-10 ablation: how investigation effort differs
//! between "normal P2P software" (sources openly named in query hits) and
//! an anonymous overlay (sources identifiable only through the timing
//! attack).
//!
//! Both are lawful without process — the contrast is purely in *how much
//! work* identification takes and *how far* it reaches.

use crate::investigator::TimingInvestigator;
use crate::message::Message;
use crate::peer::{DelayModel, GnutellaPeer, OneSwarmPeer};
use netsim::builders::random_connected;
use netsim::packet::{FlowId, Packet, Transport};
use netsim::prelude::*;
use std::collections::BTreeSet;
use trials::{derive_seed, TrialReport, TrialRunner};

/// A plain querier that records the sources named by [`Message::SourceResponse`]s.
#[derive(Debug, Default)]
pub struct SourceCollector {
    sources: BTreeSet<u64>,
    responses: u64,
}

impl SourceCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        SourceCollector::default()
    }

    /// The distinct source identities collected.
    pub fn sources(&self) -> &BTreeSet<u64> {
        &self.sources
    }

    /// Total responses heard.
    pub fn responses(&self) -> u64 {
        self.responses
    }
}

impl Protocol for SourceCollector {
    fn on_packet(&mut self, _ctx: &mut Context<'_>, packet: Packet) {
        if let Some(Message::SourceResponse { source, .. }) = Message::decode(packet.payload()) {
            self.sources.insert(source);
            self.responses += 1;
        } else if let Some(Message::Response { .. }) = Message::decode(packet.payload()) {
            self.responses += 1;
        }
    }
}

/// Shared parameters for the comparison.
#[derive(Debug, Clone)]
pub struct ComparisonConfig {
    /// Overlay size.
    pub peers: usize,
    /// Overlay degree.
    pub degree: usize,
    /// Number of content sources.
    pub sources: usize,
    /// Query TTL.
    pub ttl: u8,
    /// Seed.
    pub seed: u64,
}

impl Default for ComparisonConfig {
    fn default() -> Self {
        ComparisonConfig {
            peers: 64,
            degree: 4,
            sources: 8,
            ttl: 8,
            seed: 0x90a7,
        }
    }
}

/// The result of the comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComparisonResult {
    /// Sources that exist in the overlay.
    pub true_sources: usize,
    /// Sources identified on the normal (Gnutella) overlay with a single
    /// query.
    pub gnutella_identified: usize,
    /// Queries the Gnutella investigator needed.
    pub gnutella_queries: u64,
    /// Neighbors the anonymous-overlay investigator could classify as
    /// sources (only its *direct* neighbors are reachable this way).
    pub oneswarm_identified: usize,
    /// Probes the anonymous-overlay investigator spent.
    pub oneswarm_probes: u64,
}

fn build_overlay(
    config: &ComparisonConfig,
) -> (Topology, Vec<NodeId>, NodeId, Vec<usize>, Vec<Vec<NodeId>>) {
    let mut rng = SimRng::seed_from(config.seed);
    let (mut topo, nodes) = random_connected(config.peers, config.degree, 5, 25, &mut rng);
    let investigator = topo.add_node();
    // The investigator attaches to a handful of peers.
    let mut attach: Vec<usize> = (0..config.peers).collect();
    rng.shuffle(&mut attach);
    let attach: Vec<usize> = attach.into_iter().take(config.peers / 4).collect();
    for &a in &attach {
        topo.connect(investigator, nodes[a], SimDuration::from_millis(10));
    }
    // Neighbor lists.
    let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); config.peers];
    for link in topo.links() {
        let (a, b) = (link.a, link.b);
        if a.0 < config.peers && b.0 < config.peers {
            neighbors[a.0].push(b);
            neighbors[b.0].push(a);
        }
    }
    for &a in &attach {
        neighbors[a].push(investigator);
    }
    (topo, nodes, investigator, attach, neighbors)
}

/// Runs the row-9/row-10 comparison.
pub fn run_comparison(config: &ComparisonConfig) -> ComparisonResult {
    let content_id = 42u64;
    let mut rng = SimRng::seed_from(config.seed ^ 0xfeed);
    let mut idx: Vec<usize> = (0..config.peers).collect();
    rng.shuffle(&mut idx);
    let source_set: BTreeSet<usize> = idx.into_iter().take(config.sources).collect();

    // --- Normal P2P: one query floods, hits name their sources. ---
    let (topo, nodes, inv, attach, neighbors) = build_overlay(config);
    let mut sim = Simulator::new(topo, config.seed);
    for i in 0..config.peers {
        let content: Vec<u64> = if source_set.contains(&i) {
            vec![content_id]
        } else {
            vec![]
        };
        sim.set_protocol(nodes[i], GnutellaPeer::new(neighbors[i].clone(), content));
    }
    sim.set_protocol(inv, SourceCollector::new());
    sim.start();
    // One query to one attached neighbor suffices: the flood reaches the
    // whole overlay.
    let msg = Message::Query {
        query_id: 1,
        content_id,
        ttl: config.ttl,
    };
    let p = Packet::new(
        inv,
        nodes[attach[0]],
        Transport::Tcp {
            src_port: 6881,
            dst_port: 6881,
            seq: 0,
        },
        FlowId(1),
        msg.encode(),
    );
    sim.inject(inv, p);
    sim.run_until(SimTime::from_secs(30));
    let collector = sim.take_protocol_as::<SourceCollector>(inv).unwrap();
    let gnutella_identified = collector
        .sources()
        .iter()
        .filter(|&&s| source_set.contains(&(s as usize)))
        .count();

    // --- Anonymous overlay: timing attack, direct neighbors only. ---
    let (topo, nodes, inv, attach, neighbors) = build_overlay(config);
    let mut sim = Simulator::new(topo, config.seed);
    for i in 0..config.peers {
        let content: Vec<u64> = if source_set.contains(&i) {
            vec![content_id]
        } else {
            vec![]
        };
        sim.set_protocol(
            nodes[i],
            OneSwarmPeer::new(neighbors[i].clone(), content, DelayModel::default()),
        );
    }
    let probes = 3usize;
    let targets: Vec<NodeId> = attach.iter().map(|&a| nodes[a]).collect();
    sim.set_protocol(
        inv,
        TimingInvestigator::new(
            targets.clone(),
            content_id,
            probes,
            SimDuration::from_millis(2 * config.ttl as u64 * 300),
            config.ttl,
        ),
    );
    let total = (probes * targets.len()) as u64;
    sim.run_until(
        SimTime::ZERO
            + SimDuration::from_millis(2 * config.ttl as u64 * 300).mul(total + 2)
            + SimDuration::from_secs(10),
    );
    let mut ti = sim.take_protocol_as::<TimingInvestigator>(inv).unwrap();
    ti.close_outstanding();
    let threshold = SimDuration::from_millis(300 + 4 * 25);
    let classified = ti.classify(threshold);
    let oneswarm_identified = attach
        .iter()
        .filter(|&&a| source_set.contains(&a) && classified[&nodes[a]])
        .count();

    ComparisonResult {
        true_sources: config.sources,
        gnutella_identified,
        gnutella_queries: 1,
        oneswarm_identified,
        oneswarm_probes: total,
    }
}

/// Runs `trials` independent comparisons — trial `t` uses the seed
/// [`derive_seed`]`(config.seed, t)` — fanned across one worker per
/// available core. Results are ordered by trial index and identical at
/// any worker count.
pub fn run_comparisons(config: &ComparisonConfig, trials: usize) -> Vec<ComparisonResult> {
    run_comparisons_on(&TrialRunner::new(), config, trials).0
}

/// [`run_comparisons`] on an explicit [`TrialRunner`], also returning the
/// runner's [`TrialReport`].
pub fn run_comparisons_on(
    runner: &TrialRunner,
    config: &ComparisonConfig,
    trials: usize,
) -> (Vec<ComparisonResult>, TrialReport) {
    runner.run(trials, |t| {
        let cfg = ComparisonConfig {
            seed: derive_seed(config.seed, t),
            ..config.clone()
        };
        run_comparison(&cfg)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_p2p_enumerates_most_sources_with_one_query() {
        let config = ComparisonConfig::default();
        let r = run_comparison(&config);
        assert_eq!(r.gnutella_queries, 1);
        // The flood reaches the whole (connected) overlay within TTL 8 on
        // a degree-4 graph of 64 nodes: expect all sources named.
        assert!(
            r.gnutella_identified >= r.true_sources - 1,
            "identified {} of {}",
            r.gnutella_identified,
            r.true_sources
        );
    }

    #[test]
    fn anonymous_overlay_limits_reach_to_neighbors() {
        let config = ComparisonConfig::default();
        let r = run_comparison(&config);
        // The timing attack can only classify the investigator's direct
        // neighbors — a strict subset of all sources.
        assert!(r.oneswarm_identified <= r.true_sources);
        assert!(r.oneswarm_probes > r.gnutella_queries);
    }

    #[test]
    fn comparison_is_deterministic() {
        let config = ComparisonConfig {
            peers: 32,
            sources: 4,
            ..ComparisonConfig::default()
        };
        assert_eq!(run_comparison(&config), run_comparison(&config));
    }

    #[test]
    fn comparisons_batch_is_worker_count_independent() {
        let config = ComparisonConfig {
            peers: 24,
            sources: 4,
            ..ComparisonConfig::default()
        };
        let (seq, _) = run_comparisons_on(&TrialRunner::sequential(), &config, 3);
        let (par, _) = run_comparisons_on(&TrialRunner::with_threads(8), &config, 3);
        assert_eq!(seq, par);
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn source_collector_counts() {
        let mut c = SourceCollector::new();
        assert_eq!(c.responses(), 0);
        assert!(c.sources().is_empty());
        // feed it a packet directly via the Protocol interface in a sim
        // is covered by run_comparison; here check Default.
        c.sources.insert(5);
        assert_eq!(c.sources().len(), 1);
    }
}
