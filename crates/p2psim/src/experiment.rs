//! The E-IV-A experiment harness: builds a random OneSwarm-style overlay,
//! runs the timing-attack investigation, and reports classification
//! quality — the quantitative form of the paper's §IV-A feasibility
//! claim.

use crate::investigator::TimingInvestigator;
use crate::peer::{DelayModel, OneSwarmPeer};
use netsim::prelude::*;
use std::collections::{BTreeSet, HashSet};
use trials::{derive_seed, TrialReport, TrialRunner};

/// Parameters of a OneSwarm timing-attack experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of peers in the overlay (excluding the investigator).
    pub peers: usize,
    /// Trusted edges per peer (approximate; random graph).
    pub trust_degree: usize,
    /// How many peers hold the target content.
    pub sources: usize,
    /// How many peers the investigator attaches to and probes.
    pub targets: usize,
    /// Probes per target.
    pub probes: usize,
    /// OneSwarm delay parameters.
    pub delays: DelayModel,
    /// Underlay link latency range in milliseconds `[lo, hi)`.
    pub link_latency_ms: (u64, u64),
    /// Overlay query TTL.
    pub ttl: u8,
    /// Independent per-traversal packet-loss probability on every
    /// underlay link (failure injection).
    pub link_loss: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            peers: 64,
            trust_degree: 3,
            sources: 8,
            targets: 16,
            probes: 5,
            delays: DelayModel::default(),
            link_latency_ms: (5, 30),
            ttl: 8,
            link_loss: 0.0,
            seed: 0xa11ce,
        }
    }
}

impl ExperimentConfig {
    /// The classification threshold implied by the delay model: a direct
    /// source's worst case (max source delay + one network RTT) plus
    /// slack; anything slower must have paid at least one forward hop.
    pub fn threshold(&self) -> SimDuration {
        let rtt_max_ms = 2 * self.link_latency_ms.1;
        SimDuration::from_millis(self.delays.source_delay_ms.1 + 2 * rtt_max_ms)
    }
}

/// Outcome for one probed target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetOutcome {
    /// The probed peer.
    pub node: NodeId,
    /// Ground truth: does the peer hold the content?
    pub is_source: bool,
    /// The attack's classification.
    pub classified_source: bool,
    /// Minimum observed first-response delay in milliseconds (`None` if
    /// every probe timed out).
    pub min_delay_ms: Option<f64>,
}

/// Aggregate result of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Per-target outcomes.
    pub outcomes: Vec<TargetOutcome>,
    /// Aggregated precision/recall/accuracy.
    pub metrics: Classification,
    /// The threshold used, in milliseconds.
    pub threshold_ms: f64,
    /// Simulator events processed (the cost axis for population-scale
    /// sweeps: events/second is the engine's throughput unit).
    pub sim_events: u64,
}

impl ExperimentResult {
    /// Whether every target was classified correctly.
    pub fn perfect(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| o.is_source == o.classified_source)
    }
}

/// Runs one timing-attack experiment.
///
/// # Panics
///
/// Panics if `targets > peers` or `sources > peers` or `peers < 2`.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentResult {
    assert!(config.peers >= 2, "need at least two peers");
    assert!(config.sources <= config.peers, "more sources than peers");
    assert!(config.targets <= config.peers, "more targets than peers");

    let mut rng = SimRng::seed_from(config.seed);
    let content_id = 42u64;

    // Build the underlay: one node per peer plus the investigator; links
    // mirror the trust graph.
    let mut topo = Topology::new();
    let peer_nodes = topo.add_nodes(config.peers);
    let inv_node = topo.add_node();

    // Random connected trust graph: ring + random extra edges up to the
    // requested degree.
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for i in 0..config.peers {
        let j = (i + 1) % config.peers;
        edges.insert((i.min(j), i.max(j)));
    }
    let target_edges = config.peers * config.trust_degree / 2;
    let mut guard = 0;
    while edges.len() < target_edges && guard < 100_000 {
        guard += 1;
        let a = rng.next_below(config.peers as u64) as usize;
        let b = rng.next_below(config.peers as u64) as usize;
        if a != b {
            edges.insert((a.min(b), a.max(b)));
        }
    }
    let latency = |rng: &mut SimRng| {
        SimDuration::from_millis(rng.range(config.link_latency_ms.0, config.link_latency_ms.1))
    };
    for &(a, b) in &edges {
        let l = latency(&mut rng);
        topo.connect(peer_nodes[a], peer_nodes[b], l);
    }

    // Pick sources and targets.
    let mut shuffled: Vec<usize> = (0..config.peers).collect();
    rng.shuffle(&mut shuffled);
    let source_set: HashSet<usize> = shuffled.iter().copied().take(config.sources).collect();
    // Targets: half sources, half non-sources where possible, so both
    // classes are represented.
    let mut targets: Vec<usize> = Vec::new();
    let want_src = (config.targets / 2).min(config.sources);
    targets.extend(shuffled.iter().copied().take(want_src));
    targets.extend(
        shuffled
            .iter()
            .copied()
            .filter(|i| !source_set.contains(i))
            .take(config.targets - want_src),
    );

    // The investigator links to each target (it "befriends" them).
    for &t in &targets {
        let mut link = Link::with_latency(inv_node, peer_nodes[t], latency(&mut rng));
        link.loss_prob = config.link_loss;
        topo.add_link(link);
    }

    // Neighbor lists from the trust graph (plus the investigator where
    // attached).
    let mut neighbor_lists: Vec<Vec<NodeId>> = vec![Vec::new(); config.peers];
    for &(a, b) in &edges {
        neighbor_lists[a].push(peer_nodes[b]);
        neighbor_lists[b].push(peer_nodes[a]);
    }
    for &t in &targets {
        neighbor_lists[t].push(inv_node);
    }

    let mut sim = Simulator::new(topo, config.seed ^ 0x5eed);
    for i in 0..config.peers {
        let content: Vec<u64> = if source_set.contains(&i) {
            vec![content_id]
        } else {
            Vec::new()
        };
        sim.set_protocol(
            peer_nodes[i],
            OneSwarmPeer::new(neighbor_lists[i].clone(), content, config.delays),
        );
    }
    let target_nodes: Vec<NodeId> = targets.iter().map(|&t| peer_nodes[t]).collect();
    // Space probes far enough apart that one probe's flood cannot be
    // confused with the next (ttl * max forward delay, doubled).
    let gap_ms = 2 * config.ttl as u64 * config.delays.forward_delay_ms.1;
    sim.set_protocol(
        inv_node,
        TimingInvestigator::new(
            target_nodes.clone(),
            content_id,
            config.probes,
            SimDuration::from_millis(gap_ms),
            config.ttl,
        ),
    );

    let total_probes = (config.probes * config.targets) as u64;
    let deadline = SimTime::ZERO
        + SimDuration::from_millis(gap_ms).mul(total_probes + 2)
        + SimDuration::from_secs(10);
    sim.run_until(deadline);

    let mut inv = sim
        .take_protocol_as::<TimingInvestigator>(inv_node)
        .expect("investigator attached");
    inv.close_outstanding();
    let threshold = config.threshold();
    let classified = inv.classify(threshold);

    let mut metrics = Classification::default();
    let mut outcomes = Vec::new();
    for (idx, &node) in target_nodes.iter().enumerate() {
        let is_source = source_set.contains(&targets[idx]);
        let classified_source = classified[&node];
        metrics.record(classified_source, is_source);
        let min_delay_ms = inv.samples()[&node].min_delay().map(|d| d.as_millis_f64());
        outcomes.push(TargetOutcome {
            node,
            is_source,
            classified_source,
            min_delay_ms,
        });
    }

    ExperimentResult {
        outcomes,
        metrics,
        threshold_ms: threshold.as_millis_f64(),
        sim_events: sim.counters().events,
    }
}

/// Aggregate of repeated timing-attack experiments over derived seeds.
#[derive(Debug, Clone)]
pub struct ExperimentBatch {
    /// Per-trial results, ordered by trial index.
    pub results: Vec<ExperimentResult>,
    /// Classification counts pooled over every trial.
    pub metrics: Classification,
}

impl ExperimentBatch {
    /// Fraction of trials that classified every target correctly.
    pub fn perfect_rate(&self) -> f64 {
        if self.results.is_empty() {
            return 1.0;
        }
        self.results.iter().filter(|r| r.perfect()).count() as f64 / self.results.len() as f64
    }
}

/// Runs `trials` independent experiments — trial `t` uses the seed
/// [`derive_seed`]`(config.seed, t)` — fanned across one worker per
/// available core. Results are identical at any worker count.
pub fn run_experiments(config: &ExperimentConfig, trials: usize) -> ExperimentBatch {
    run_experiments_on(&TrialRunner::new(), config, trials).0
}

/// [`run_experiments`] on an explicit [`TrialRunner`], also returning the
/// runner's [`TrialReport`].
pub fn run_experiments_on(
    runner: &TrialRunner,
    config: &ExperimentConfig,
    trials: usize,
) -> (ExperimentBatch, TrialReport) {
    let (results, report) = runner.run(trials, |t| {
        let cfg = ExperimentConfig {
            seed: derive_seed(config.seed, t),
            ..config.clone()
        };
        run_experiment(&cfg)
    });
    let mut metrics = Classification::default();
    for r in &results {
        for o in &r.outcomes {
            metrics.record(o.classified_source, o.is_source);
        }
    }
    (ExperimentBatch { results, metrics }, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_experiment_classifies_well() {
        let cfg = ExperimentConfig {
            peers: 32,
            trust_degree: 3,
            sources: 6,
            targets: 10,
            probes: 3,
            ..ExperimentConfig::default()
        };
        let result = run_experiment(&cfg);
        assert_eq!(result.outcomes.len(), 10);
        // The CCS'11 claim: timing separates sources from proxies.
        assert!(
            result.metrics.accuracy() >= 0.9,
            "accuracy {} outcomes {:?}",
            result.metrics.accuracy(),
            result.outcomes
        );
    }

    #[test]
    fn sources_respond_faster_than_proxies() {
        let cfg = ExperimentConfig {
            peers: 24,
            sources: 6,
            targets: 12,
            probes: 3,
            ..ExperimentConfig::default()
        };
        let result = run_experiment(&cfg);
        let src_min: Vec<f64> = result
            .outcomes
            .iter()
            .filter(|o| o.is_source)
            .filter_map(|o| o.min_delay_ms)
            .collect();
        let proxy_min: Vec<f64> = result
            .outcomes
            .iter()
            .filter(|o| !o.is_source)
            .filter_map(|o| o.min_delay_ms)
            .collect();
        if let (Some(max_src), Some(min_proxy)) = (
            src_min
                .iter()
                .copied()
                .fold(None::<f64>, |m, x| Some(m.map_or(x, |m| m.max(x)))),
            proxy_min
                .iter()
                .copied()
                .fold(None::<f64>, |m, x| Some(m.map_or(x, |m| m.min(x)))),
        ) {
            assert!(
                max_src < min_proxy,
                "source delays ({max_src} ms) must undercut proxy delays ({min_proxy} ms)"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ExperimentConfig {
            peers: 16,
            sources: 4,
            targets: 8,
            probes: 2,
            ..ExperimentConfig::default()
        };
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn threshold_scales_with_delay_model() {
        let mut cfg = ExperimentConfig::default();
        let t1 = cfg.threshold();
        cfg.delays.source_delay_ms = (300, 600);
        assert!(cfg.threshold() > t1);
    }

    #[test]
    fn experiment_batch_pools_metrics_at_any_worker_count() {
        let cfg = ExperimentConfig {
            peers: 16,
            sources: 4,
            targets: 8,
            probes: 2,
            ..ExperimentConfig::default()
        };
        let (seq, _) = run_experiments_on(&TrialRunner::sequential(), &cfg, 4);
        assert_eq!(seq.results.len(), 4);
        let pooled = seq.metrics.tp + seq.metrics.fp + seq.metrics.tn + seq.metrics.fn_;
        assert_eq!(pooled, 4 * 8);
        for threads in [2usize, 8] {
            let (par, report) = run_experiments_on(&TrialRunner::with_threads(threads), &cfg, 4);
            assert_eq!(report.per_worker.iter().sum::<u64>(), 4);
            for (a, b) in seq.results.iter().zip(&par.results) {
                assert_eq!(a.outcomes, b.outcomes);
            }
            assert_eq!(seq.metrics, par.metrics);
        }
        assert!((0.0..=1.0).contains(&seq.perfect_rate()));
    }

    #[test]
    #[should_panic(expected = "more targets than peers")]
    fn invalid_config_rejected() {
        let cfg = ExperimentConfig {
            peers: 4,
            targets: 10,
            sources: 1,
            ..ExperimentConfig::default()
        };
        run_experiment(&cfg);
    }
}

#[cfg(test)]
mod failure_injection_tests {
    use super::*;

    /// Moderate link loss costs some probes but repeated probing keeps
    /// source recall high — the attack degrades gracefully.
    #[test]
    fn attack_tolerates_moderate_link_loss() {
        let cfg = ExperimentConfig {
            peers: 32,
            sources: 6,
            targets: 10,
            probes: 6,
            link_loss: 0.15,
            ..ExperimentConfig::default()
        };
        let r = run_experiment(&cfg);
        assert!(
            r.metrics.accuracy() >= 0.8,
            "accuracy {} under 15% loss, outcomes {:?}",
            r.metrics.accuracy(),
            r.outcomes
        );
        // Loss never creates false positives (lost probes time out — they
        // can only hide sources, not invent them).
        assert_eq!(r.metrics.fp, 0);
    }

    /// Total loss means no responses at all: everything classifies as
    /// proxy (conservative failure mode).
    #[test]
    fn total_loss_classifies_everything_negative() {
        let cfg = ExperimentConfig {
            peers: 16,
            sources: 4,
            targets: 8,
            probes: 2,
            link_loss: 1.0,
            ..ExperimentConfig::default()
        };
        let r = run_experiment(&cfg);
        assert!(r.outcomes.iter().all(|o| !o.classified_source));
        assert!(r.outcomes.iter().all(|o| o.min_delay_ms.is_none()));
    }
}

#[cfg(test)]
mod crossover_tests {
    use super::*;
    use crate::peer::DelayModel;

    /// The crossover the sweep exhibits: when the artificial-delay band
    /// is wide (floor ≪ width), proxy chains can undercut slow sources
    /// and the classifier starts erring — while OneSwarm's actual narrow
    /// band stays cleanly separable.
    #[test]
    fn wide_delay_bands_break_separability() {
        let narrow = ExperimentConfig {
            delays: DelayModel {
                source_delay_ms: (150, 300),
                forward_delay_ms: (150, 300),
            },
            seed: 0xfeed ^ 300,
            ..ExperimentConfig::default()
        };
        let wide = ExperimentConfig {
            delays: DelayModel {
                source_delay_ms: (5, 400),
                forward_delay_ms: (5, 400),
            },
            seed: 0xfeed ^ 400,
            ..ExperimentConfig::default()
        };
        let narrow_acc = run_experiment(&narrow).metrics.accuracy();
        let wide_acc = run_experiment(&wide).metrics.accuracy();
        assert!(narrow_acc > 0.99, "narrow band accuracy {narrow_acc}");
        assert!(
            wide_acc < narrow_acc,
            "wide band must degrade: {wide_acc} vs {narrow_acc}"
        );
    }
}
