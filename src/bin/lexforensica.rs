//! The `lexforensica` command-line tool: ask the compliance engine about
//! an investigative action (one-off, in JSONL batches, or through the
//! long-running bounded-queue service), list the Table 1 scenarios, or
//! look up an authority in the casebook.
//!
//! ```console
//! $ lexforensica table1
//! $ lexforensica assess --actor leo --data content --when realtime --where isp
//! $ lexforensica assess --actor admin --data headers --where own-network
//! $ lexforensica assess-batch scenarios.jsonl --threads 4
//! $ lexforensica serve scenarios.jsonl --workers 4 --policy reject
//! $ lexforensica cite katz
//! ```

use lexforensica::law::batch::BatchAssessor;
use lexforensica::law::casebook::{all_citations, lookup};
use lexforensica::law::prelude::*;
use lexforensica::law::scenarios::table1;
use lexforensica::service::cli::Args;
use lexforensica::service::prelude::*;
use lexforensica::spec::{
    parse_actor, parse_category, parse_location, parse_temporality, ActionSpec,
};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  lexforensica table1
      print the paper's Table 1 with engine verdicts
  lexforensica assess [OPTIONS]
      assess an investigative action:
        --actor leo|admin|private|provider|employer   (default leo)
        --directed            actor acts at government direction
        --data content|headers|subscriber|records     (default content)
        --when realtime|stored|stored-unopened        (default realtime)
        --where isp|own-network|wireless|wireless-enc|device|provider|public|media|remote
                                                      (default isp)
        --public-protocol     investigator joins a public protocol
        --rate-only           observes traffic rates only
        --hash-search         exhaustive forensic search of media
        --consent             target consents
        --exigent             exigent circumstances
        --probation           target on probation
  lexforensica assess-batch <file.jsonl | -> [--threads N] [--seed S]
      assess one JSON scenario object per input line (\"-\" for stdin);
      prints one \"#line verdict [confidence] -- summary\" row per
      scenario and cache statistics on stderr. --threads pins the
      worker count; --seed shuffles the assessment order (output stays
      in line order — answers are order-independent). Malformed lines
      are reported with their line number and skipped; the exit code
      is then nonzero.
  lexforensica serve <file.jsonl | -> [OPTIONS]
      run the same JSONL scenarios through the bounded-queue compliance
      service (worker pool, admission control, deadlines):
        --workers N           worker threads (default: all cores)
        --capacity N          queue capacity (default 1024)
        --policy block|reject|drop-oldest             (default block)
        --deadline-ms D       per-request deadline in milliseconds
      prints one row per scenario (verdict, or timeout/shed/rejected)
      and a metrics snapshot on stderr
  lexforensica cite <substring>
      search the casebook by citation or holding text"
    );
    ExitCode::from(2)
}

fn cmd_table1() -> ExitCode {
    let engine = ComplianceEngine::new();
    for row in table1() {
        let verdict = engine.assess(row.action()).verdict();
        println!(
            "#{:<3} {:<74} paper: {:<12} engine: {}",
            row.number(),
            row.summary(),
            row.paper_verdict().to_string(),
            verdict
        );
    }
    ExitCode::SUCCESS
}

fn cmd_cite(needle: &str) -> ExitCode {
    let needle = needle.to_lowercase();
    let mut found = 0;
    for id in all_citations() {
        let a = lookup(id);
        if a.cite.to_lowercase().contains(&needle) || a.holding.to_lowercase().contains(&needle) {
            println!("{a}");
            found += 1;
        }
    }
    if found == 0 {
        eprintln!("no casebook entry matches \"{needle}\"");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_assess(args: &[String]) -> ExitCode {
    let mut actor_name = "leo".to_string();
    let mut directed = false;
    let mut data = "content".to_string();
    let mut when = "realtime".to_string();
    let mut location = "isp".to_string();
    let mut public_protocol = false;
    let mut rate_only = false;
    let mut hash_search = false;
    let mut consent = false;
    let mut exigent = false;
    let mut probation = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--actor" => actor_name = it.next().cloned().unwrap_or_default(),
            "--directed" => directed = true,
            "--data" => data = it.next().cloned().unwrap_or_default(),
            "--when" => when = it.next().cloned().unwrap_or_default(),
            "--where" => location = it.next().cloned().unwrap_or_default(),
            "--public-protocol" => public_protocol = true,
            "--rate-only" => rate_only = true,
            "--hash-search" => hash_search = true,
            "--consent" => consent = true,
            "--exigent" => exigent = true,
            "--probation" => probation = true,
            other => {
                eprintln!("unknown option {other}");
                return usage();
            }
        }
    }

    let (Some(actor), Some(category), Some(temporality), Some(loc)) = (
        parse_actor(&actor_name, directed),
        parse_category(&data),
        parse_temporality(&when),
        parse_location(&location),
    ) else {
        eprintln!("invalid option value");
        return usage();
    };

    let mut builder =
        InvestigativeAction::builder(actor, DataSpec::new(category, temporality, loc));
    builder.describe(format!(
        "{actor_name} collects {data} {when} at {location} (cli)"
    ));
    if public_protocol {
        builder.joining_public_protocol();
    }
    if rate_only {
        builder.rate_observation_only();
    }
    if hash_search {
        builder.exhaustive_forensic_search();
    }
    if consent {
        builder.with_consent(Consent::by(ConsentAuthority::TargetSelf));
    }
    if exigent {
        builder.with_exigency(Exigency::ImminentEvidenceDestruction);
    }
    if probation {
        builder.target_on_probation();
    }
    let action = builder.build();
    let assessment = ComplianceEngine::new().assess(&action);
    println!("{assessment}");
    ExitCode::SUCCESS
}

/// Reads the whole JSONL input, from a file or stdin (`-`).
fn read_input(path: &str) -> Result<String, ExitCode> {
    if path == "-" {
        let mut text = String::new();
        use std::io::Read as _;
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("cannot read stdin: {e}");
            return Err(ExitCode::FAILURE);
        }
        Ok(text)
    } else {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("cannot read {path}: {e}");
            ExitCode::FAILURE
        })
    }
}

/// One well-formed scenario line, ready to assess.
struct ParsedLine {
    /// 1-based input line number.
    line: usize,
    summary: String,
    action: InvestigativeAction,
}

/// Parses every line, reporting failures without stopping. Returns the
/// well-formed lines and the count of malformed ones.
fn parse_lines(input: &str) -> (Vec<ParsedLine>, u64) {
    let mut parsed = Vec::new();
    let mut bad_lines = 0u64;
    for (idx, line) in input.lines().enumerate() {
        let number = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let result = ActionSpec::from_json_line(line).and_then(|spec| {
            let action = spec.to_action()?;
            Ok((spec, action))
        });
        match result {
            Ok((spec, action)) => parsed.push(ParsedLine {
                line: number,
                summary: spec.summary(),
                action,
            }),
            Err(e) => {
                eprintln!("line {number}: {e}");
                bad_lines += 1;
            }
        }
    }
    (parsed, bad_lines)
}

fn cmd_assess_batch(args: Args) -> ExitCode {
    let Some(path) = args.positional(0) else {
        return usage();
    };
    let threads = args.usize_flag(
        "threads",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    let seed = args.u64_flag("seed", 0);

    let input = match read_input(path) {
        Ok(text) => text,
        Err(code) => return code,
    };
    let (mut parsed, bad_lines) = parse_lines(&input);

    // A nonzero seed shuffles the *assessment* order. The output is
    // re-sorted into line order below, so the answers must be — and the
    // golden tests check they are — seed-independent.
    if seed != 0 {
        lexforensica::netsim::rng::SimRng::seed_from(seed).shuffle(&mut parsed);
    }

    let actions: Vec<_> = parsed.iter().map(|p| p.action.clone()).collect();
    let assessor = BatchAssessor::new().with_threads(threads);
    let (assessments, report) = assessor.assess_all_with_report(&actions);

    let mut rows: Vec<_> = parsed.iter().zip(&assessments).collect();
    rows.sort_by_key(|(p, _)| p.line);
    for (p, assessment) in rows {
        println!(
            "#{} {} [{}] -- {}",
            p.line,
            assessment.verdict(),
            assessment.confidence(),
            p.summary
        );
    }
    eprintln!("{report}");
    if bad_lines > 0 {
        eprintln!("{bad_lines} malformed line(s) skipped");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_serve(args: Args) -> ExitCode {
    let Some(path) = args.positional(0) else {
        return usage();
    };
    let workers = args.usize_flag(
        "workers",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    let capacity = args.usize_flag("capacity", 1024);
    let policy = match args.get("policy") {
        None => AdmissionPolicy::Block,
        Some(word) => match AdmissionPolicy::parse(word) {
            Some(policy) => policy,
            None => {
                eprintln!("unknown admission policy \"{word}\"");
                return usage();
            }
        },
    };
    let default_deadline = args
        .get("deadline-ms")
        .map(|_| Duration::from_millis(args.u64_flag("deadline-ms", 0)));

    let input = match read_input(path) {
        Ok(text) => text,
        Err(code) => return code,
    };
    let (parsed, bad_lines) = parse_lines(&input);

    let service = ComplianceService::start(ServiceConfig {
        workers,
        capacity,
        policy,
        default_deadline,
        engine_floor: Duration::ZERO,
    });
    let start = Instant::now();

    // Closed-loop submission: under `block` a full queue pushes back on
    // this loop; under `reject`/`drop-oldest` overload turns into shed
    // rows instead of waiting.
    let tickets: Vec<Option<Ticket>> = parsed
        .iter()
        .map(|p| match service.submit(p.action.clone()) {
            Ok(ticket) => Some(ticket),
            Err(SubmitError::Overloaded) => None,
            Err(SubmitError::ShuttingDown) => {
                unreachable!("nothing closes admission during serve")
            }
        })
        .collect();

    for (p, ticket) in parsed.iter().zip(tickets) {
        match ticket {
            None => println!("#{} rejected -- {}", p.line, p.summary),
            Some(ticket) => match ticket.wait().outcome {
                Outcome::Completed(assessment) => println!(
                    "#{} {} [{}] -- {}",
                    p.line,
                    assessment.verdict(),
                    assessment.confidence(),
                    p.summary
                ),
                Outcome::TimedOut => println!("#{} timeout -- {}", p.line, p.summary),
                Outcome::Shed => println!("#{} shed -- {}", p.line, p.summary),
            },
        }
    }

    let elapsed = start.elapsed();
    let cache = service.cache().stats();
    let finals = service.shutdown();
    debug_assert_eq!(finals.responses(), finals.accepted, "lost a response");
    eprintln!(
        "served {} of {} requests on {} workers in {:.1?} ({:.0} actions/s); cache: {}",
        finals.responses(),
        finals.submitted,
        workers,
        elapsed,
        finals.responses() as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        cache
    );
    eprintln!("metrics: {}", finals.to_json());
    if bad_lines > 0 {
        eprintln!("{bad_lines} malformed line(s) skipped");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("table1") => cmd_table1(),
        Some("assess") => cmd_assess(&args[1..]),
        Some("assess-batch") => cmd_assess_batch(Args::parse_from(args[1..].iter().cloned())),
        Some("serve") => cmd_serve(Args::parse_from(args[1..].iter().cloned())),
        Some("cite") => match args.get(1) {
            Some(needle) => cmd_cite(needle),
            None => usage(),
        },
        _ => usage(),
    }
}
