//! The `lexforensica` command-line tool: ask the compliance engine about
//! an investigative action (one-off or in JSONL batches), list the
//! Table 1 scenarios, or look up an authority in the casebook.
//!
//! ```console
//! $ lexforensica table1
//! $ lexforensica assess --actor leo --data content --when realtime --where isp
//! $ lexforensica assess --actor admin --data headers --where own-network
//! $ lexforensica assess-batch scenarios.jsonl
//! $ lexforensica cite katz
//! ```

use lexforensica::law::batch::BatchAssessor;
use lexforensica::law::casebook::{all_citations, lookup};
use lexforensica::law::prelude::*;
use lexforensica::law::scenarios::table1;
use lexforensica::spec::{
    parse_actor, parse_category, parse_location, parse_temporality, ActionSpec,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  lexforensica table1
      print the paper's Table 1 with engine verdicts
  lexforensica assess [OPTIONS]
      assess an investigative action:
        --actor leo|admin|private|provider|employer   (default leo)
        --directed            actor acts at government direction
        --data content|headers|subscriber|records     (default content)
        --when realtime|stored|stored-unopened        (default realtime)
        --where isp|own-network|wireless|wireless-enc|device|provider|public|media|remote
                                                      (default isp)
        --public-protocol     investigator joins a public protocol
        --rate-only           observes traffic rates only
        --hash-search         exhaustive forensic search of media
        --consent             target consents
        --exigent             exigent circumstances
        --probation           target on probation
  lexforensica assess-batch <file.jsonl | ->
      assess one JSON scenario object per input line (\"-\" for stdin);
      prints one \"#line verdict [confidence] -- summary\" row per
      scenario and cache statistics on stderr. Malformed lines are
      reported with their line number and skipped; the exit code is
      then nonzero.
  lexforensica cite <substring>
      search the casebook by citation or holding text"
    );
    ExitCode::from(2)
}

fn cmd_table1() -> ExitCode {
    let engine = ComplianceEngine::new();
    for row in table1() {
        let verdict = engine.assess(row.action()).verdict();
        println!(
            "#{:<3} {:<74} paper: {:<12} engine: {}",
            row.number(),
            row.summary(),
            row.paper_verdict().to_string(),
            verdict
        );
    }
    ExitCode::SUCCESS
}

fn cmd_cite(needle: &str) -> ExitCode {
    let needle = needle.to_lowercase();
    let mut found = 0;
    for id in all_citations() {
        let a = lookup(id);
        if a.cite.to_lowercase().contains(&needle) || a.holding.to_lowercase().contains(&needle) {
            println!("{a}");
            found += 1;
        }
    }
    if found == 0 {
        eprintln!("no casebook entry matches \"{needle}\"");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_assess(args: &[String]) -> ExitCode {
    let mut actor_name = "leo".to_string();
    let mut directed = false;
    let mut data = "content".to_string();
    let mut when = "realtime".to_string();
    let mut location = "isp".to_string();
    let mut public_protocol = false;
    let mut rate_only = false;
    let mut hash_search = false;
    let mut consent = false;
    let mut exigent = false;
    let mut probation = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--actor" => actor_name = it.next().cloned().unwrap_or_default(),
            "--directed" => directed = true,
            "--data" => data = it.next().cloned().unwrap_or_default(),
            "--when" => when = it.next().cloned().unwrap_or_default(),
            "--where" => location = it.next().cloned().unwrap_or_default(),
            "--public-protocol" => public_protocol = true,
            "--rate-only" => rate_only = true,
            "--hash-search" => hash_search = true,
            "--consent" => consent = true,
            "--exigent" => exigent = true,
            "--probation" => probation = true,
            other => {
                eprintln!("unknown option {other}");
                return usage();
            }
        }
    }

    let (Some(actor), Some(category), Some(temporality), Some(loc)) = (
        parse_actor(&actor_name, directed),
        parse_category(&data),
        parse_temporality(&when),
        parse_location(&location),
    ) else {
        eprintln!("invalid option value");
        return usage();
    };

    let mut builder =
        InvestigativeAction::builder(actor, DataSpec::new(category, temporality, loc));
    builder.describe(format!(
        "{actor_name} collects {data} {when} at {location} (cli)"
    ));
    if public_protocol {
        builder.joining_public_protocol();
    }
    if rate_only {
        builder.rate_observation_only();
    }
    if hash_search {
        builder.exhaustive_forensic_search();
    }
    if consent {
        builder.with_consent(Consent::by(ConsentAuthority::TargetSelf));
    }
    if exigent {
        builder.with_exigency(Exigency::ImminentEvidenceDestruction);
    }
    if probation {
        builder.target_on_probation();
    }
    let action = builder.build();
    let assessment = ComplianceEngine::new().assess(&action);
    println!("{assessment}");
    ExitCode::SUCCESS
}

fn cmd_assess_batch(path: &str) -> ExitCode {
    let input = if path == "-" {
        let mut text = String::new();
        use std::io::Read as _;
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("cannot read stdin: {e}");
            return ExitCode::FAILURE;
        }
        text
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    // Parse every line first (reporting failures without stopping), then
    // fan the well-formed actions through the batch assessor.
    let mut actions = Vec::new();
    let mut lines = Vec::new(); // 1-based line number of each action
    let mut summaries = Vec::new();
    let mut bad_lines = 0u64;
    for (idx, line) in input.lines().enumerate() {
        let number = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = ActionSpec::from_json_line(line).and_then(|spec| {
            let action = spec.to_action()?;
            Ok((spec, action))
        });
        match parsed {
            Ok((spec, action)) => {
                actions.push(action);
                lines.push(number);
                summaries.push(spec.summary());
            }
            Err(e) => {
                eprintln!("line {number}: {e}");
                bad_lines += 1;
            }
        }
    }

    let assessor = BatchAssessor::new();
    let (assessments, report) = assessor.assess_all_with_report(&actions);
    for ((line, summary), assessment) in lines.iter().zip(&summaries).zip(&assessments) {
        println!(
            "#{line} {} [{}] -- {summary}",
            assessment.verdict(),
            assessment.confidence()
        );
    }
    eprintln!("{report}");
    if bad_lines > 0 {
        eprintln!("{bad_lines} malformed line(s) skipped");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("table1") => cmd_table1(),
        Some("assess") => cmd_assess(&args[1..]),
        Some("assess-batch") => match args.get(1) {
            Some(path) if args.len() == 2 => cmd_assess_batch(path),
            _ => usage(),
        },
        Some("cite") => match args.get(1) {
            Some(needle) => cmd_cite(needle),
            None => usage(),
        },
        _ => usage(),
    }
}
