//! The `lexforensica` command-line tool: ask the compliance engine about
//! an investigative action (one-off, in JSONL batches, or through the
//! long-running bounded-queue service), list the Table 1 scenarios, or
//! look up an authority in the casebook.
//!
//! ```console
//! $ lexforensica table1
//! $ lexforensica assess --actor leo --data content --when realtime --where isp
//! $ lexforensica assess --actor admin --data headers --where own-network
//! $ lexforensica assess-batch scenarios.jsonl --threads 4
//! $ lexforensica serve scenarios.jsonl --workers 4 --policy reject
//! $ lexforensica cite katz
//! ```

use lexforensica::journal::{
    Journal, JournalConfig, JournalReader, Mode, Record, RecordData, Retention, SwapRecovery,
};
use lexforensica::law::batch::BatchAssessor;
use lexforensica::law::casebook::{all_citations, lookup};
use lexforensica::law::prelude::*;
use lexforensica::law::scenarios::table1;
use lexforensica::service::cli::Args;
use lexforensica::service::prelude::*;
use lexforensica::spec::{
    parse_actor, parse_category, parse_jsonl, parse_location, parse_temporality, ActionSpec,
    LocatedError, SpecLine,
};
use lexforensica::wire::prelude::*;
use std::collections::VecDeque;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  lexforensica table1
      print the paper's Table 1 with engine verdicts
  lexforensica assess [OPTIONS]
      assess an investigative action:
        --actor leo|admin|private|provider|employer   (default leo)
        --directed            actor acts at government direction
        --data content|headers|subscriber|records     (default content)
        --when realtime|stored|stored-unopened        (default realtime)
        --where isp|own-network|wireless|wireless-enc|device|provider|public|media|remote
                                                      (default isp)
        --public-protocol     investigator joins a public protocol
        --rate-only           observes traffic rates only
        --hash-search         exhaustive forensic search of media
        --consent             target consents
        --exigent             exigent circumstances
        --probation           target on probation
  lexforensica assess-batch <file.jsonl | -> [--threads N] [--seed S]
      assess one JSON scenario object per input line (\"-\" for stdin);
      prints one \"#line verdict [confidence] -- summary\" row per
      scenario and cache statistics on stderr. --threads pins the
      worker count; --seed shuffles the assessment order (output stays
      in line order — answers are order-independent). Malformed lines
      are reported with their line number and skipped; the exit code
      is then nonzero.
        --explain FILE        also write one JSONL provenance record
                              per scenario to FILE: a fresh trace id
                              (line order), the verdict, and the
                              engine's ordered rule firings
  lexforensica serve <file.jsonl | -> [OPTIONS]
      run the same JSONL scenarios through the bounded-queue compliance
      service (worker pool, admission control, deadlines):
        --workers N           worker threads (default: all cores)
        --capacity N          queue capacity (default 1024)
        --policy block|reject|drop-oldest             (default block)
        --queue lockfree|locked  admission queue implementation
                              (default lockfree: the MPMC ring)
        --deadline-ms D       per-request deadline in milliseconds
        --explain FILE        enable span tracing and write one JSONL
                              provenance record per scenario to FILE,
                              joinable to the span ring by trace id
      prints one row per scenario (verdict, or timeout/shed/rejected)
      and a metrics snapshot on stderr
  lexforensica serve --tcp ADDR [OPTIONS]
      expose the compliance service over TCP (the lexforensica-wire
      framed protocol) instead of replaying a file; same service
      options as above, plus:
        --threaded            serve thread-per-connection instead of the
                              default event-driven epoll loop (the
                              default everywhere epoll is unavailable)
        --max-inflight N      pipelined requests per connection (default 64)
        --explain FILE        enable span tracing and log every answered
                              request's provenance record to FILE (JSONL)
        --journal DIR         record every answered request (verdicts,
                              bad requests, rejections) in the durable
                              request journal at DIR; recovered and
                              resumed if DIR already holds one
      prints \"listening on HOST:PORT\" on stderr (bind port 0 to let
      the OS pick), serves until stdin reaches EOF, then drains
      gracefully and prints wire + service metrics on stderr
  lexforensica assess-remote ADDR <file.jsonl | -> [OPTIONS]
      replay JSONL scenarios against a \"serve --tcp\" server and print
      the same rows assess-batch would:
        --pipeline N          max requests in flight (default 32)
        --deadline-ms D       per-request deadline in milliseconds
      malformed lines are reported with their line number and skipped;
      the exit code is then nonzero
  lexforensica journal <file.jsonl | -> <DIR> [--threads N]
      assess a JSONL batch and record every row in the durable request
      journal at DIR (append-only, CRC-checksummed, segment-rotated):
      each record stores the raw request line, the canonical verdict
      bytes, a status byte, and a fresh trace id. Malformed lines are
      journaled as bad-request records (diagnostic stored as the
      response) and reported on stderr; the exit code is then nonzero.
      Reopening an existing DIR recovers it (truncating a torn tail)
      and appends at the next sequence number.
  lexforensica journal compact <DIR>
      rewrite the journal keeping only the latest verdict per distinct
      action (by engine fact-key, so respellings dedupe) and the latest
      diagnostic per distinct malformed request; load-dependent records
      (timeout/shed/rejected) are dropped. The swap is crash-safe:
      kill -9 at any instant leaves the old or the new generation,
      never a mix, and the next open completes the swap.
  lexforensica replay <DIR> [--verify] [--threads N]
      re-run a journaled session through the engine and diff it
      byte-for-byte — the regression oracle: every ok record must
      reproduce exactly the stored verdict bytes, every bad-request
      record must still fail to parse. Divergences print as
      \"record N: ...\" rows on stdout; corruption is reported as
      \"SEGMENT offset N: reason\". The scan is read-only: a torn tail
      is noted and the clean prefix replayed. --verify scans strictly
      instead (any defect, torn tail included, fails). Exit is nonzero
      on divergence or corruption.
  lexforensica replay <DIR> --serve ADDR [OPTIONS]
      refire the journaled session over TCP against a live
      \"serve --tcp\" server instead of assessing in-process: ok
      records must come back ok with the exact journaled verdict
      bytes, bad-request records must still be refused; timeouts,
      sheds and rejections are skipped. Requests are paced by the
      journaled capture timestamps:
        --speed N             pacing multiplier (default 1 = recorded
                              rhythm; 2 = twice as fast; 0 = as fast
                              as the window allows)
        --conns N             client connections (default 8)
        --pipeline N          in-flight requests per connection
                              (default 32)
      divergences print as \"record N (trace T): ...\" rows on stdout
      and the exit code is nonzero.
  lexforensica plan <file.jsonl | -> [--threads N]
      search the lawful-process space of a JSONL planning problem for
      the cheapest sequence of process applications and evidence
      collections that reaches every goal. Prints the ordered plan —
      each step costed and carrying its court-ready justification from
      the engine's provenance — or a provenance-backed \"no lawful
      path\" report naming the blocking rule, on stdout; search
      statistics (nodes expanded/s, verdict-cache hit rate) go to
      stderr. Problem directives, one JSON object per line:
        {{\"goal\": NAME, \"collect\": {{scenario...}}, \"yields\": STANDARD}}
        {{\"lead\": NAME, \"collect\": {{scenario...}}, \"yields\": STANDARD}}
        {{\"start\": {{\"standard\": S, \"process\": P}}}}
        {{\"routes\": [\"consent\", \"exigent\", ...]}}
        {{\"costs\": {{\"collect\": N, \"route\": N, \"subpoena\": N, ...}}}}
      malformed problems are reported with their line numbers and the
      exit code is then nonzero; an unreachable goal is an answer, not
      an error
  lexforensica cite <substring>
      search the casebook by citation or holding text"
    );
    ExitCode::from(2)
}

fn cmd_table1() -> ExitCode {
    let engine = ComplianceEngine::new();
    for row in table1() {
        let verdict = engine.assess(row.action()).verdict();
        println!(
            "#{:<3} {:<74} paper: {:<12} engine: {}",
            row.number(),
            row.summary(),
            row.paper_verdict().to_string(),
            verdict
        );
    }
    ExitCode::SUCCESS
}

fn cmd_cite(needle: &str) -> ExitCode {
    let needle = needle.to_lowercase();
    let mut found = 0;
    for id in all_citations() {
        let a = lookup(id);
        if a.cite.to_lowercase().contains(&needle) || a.holding.to_lowercase().contains(&needle) {
            println!("{a}");
            found += 1;
        }
    }
    if found == 0 {
        eprintln!("no casebook entry matches \"{needle}\"");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_assess(args: &[String]) -> ExitCode {
    let mut actor_name = "leo".to_string();
    let mut directed = false;
    let mut data = "content".to_string();
    let mut when = "realtime".to_string();
    let mut location = "isp".to_string();
    let mut public_protocol = false;
    let mut rate_only = false;
    let mut hash_search = false;
    let mut consent = false;
    let mut exigent = false;
    let mut probation = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--actor" => actor_name = it.next().cloned().unwrap_or_default(),
            "--directed" => directed = true,
            "--data" => data = it.next().cloned().unwrap_or_default(),
            "--when" => when = it.next().cloned().unwrap_or_default(),
            "--where" => location = it.next().cloned().unwrap_or_default(),
            "--public-protocol" => public_protocol = true,
            "--rate-only" => rate_only = true,
            "--hash-search" => hash_search = true,
            "--consent" => consent = true,
            "--exigent" => exigent = true,
            "--probation" => probation = true,
            other => {
                eprintln!("unknown option {other}");
                return usage();
            }
        }
    }

    let (Some(actor), Some(category), Some(temporality), Some(loc)) = (
        parse_actor(&actor_name, directed),
        parse_category(&data),
        parse_temporality(&when),
        parse_location(&location),
    ) else {
        eprintln!("invalid option value");
        return usage();
    };

    let mut builder =
        InvestigativeAction::builder(actor, DataSpec::new(category, temporality, loc));
    builder.describe(format!(
        "{actor_name} collects {data} {when} at {location} (cli)"
    ));
    if public_protocol {
        builder.joining_public_protocol();
    }
    if rate_only {
        builder.rate_observation_only();
    }
    if hash_search {
        builder.exhaustive_forensic_search();
    }
    if consent {
        builder.with_consent(Consent::by(ConsentAuthority::TargetSelf));
    }
    if exigent {
        builder.with_exigency(Exigency::ImminentEvidenceDestruction);
    }
    if probation {
        builder.target_on_probation();
    }
    let action = builder.build();
    let assessment = ComplianceEngine::new().assess(&action);
    println!("{assessment}");
    ExitCode::SUCCESS
}

/// Reads the whole JSONL input, from a file or stdin (`-`). Raw bytes:
/// a bad-UTF-8 line must cost one line error downstream, not the file.
fn read_input(path: &str) -> Result<Vec<u8>, ExitCode> {
    if path == "-" {
        let mut bytes = Vec::new();
        use std::io::Read as _;
        if let Err(e) = std::io::stdin().read_to_end(&mut bytes) {
            eprintln!("cannot read stdin: {e}");
            return Err(ExitCode::FAILURE);
        }
        Ok(bytes)
    } else {
        std::fs::read(path).map_err(|e| {
            eprintln!("cannot read {path}: {e}");
            ExitCode::FAILURE
        })
    }
}

/// Parses every line, reporting failures to stderr without stopping.
/// Returns the well-formed lines and the count of malformed ones.
fn parse_lines(input: &[u8]) -> (Vec<SpecLine>, u64) {
    let batch = parse_jsonl(input);
    for error in &batch.errors {
        eprintln!("{error}");
    }
    (batch.lines, batch.errors.len() as u64)
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Opens the `--explain FILE` provenance sink, when requested.
fn explain_file(args: &Args) -> Result<Option<std::io::BufWriter<std::fs::File>>, ExitCode> {
    match args.get("explain") {
        None => Ok(None),
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => Ok(Some(std::io::BufWriter::new(file))),
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                Err(ExitCode::FAILURE)
            }
        },
    }
}

fn cmd_assess_batch(args: Args) -> ExitCode {
    let Some(path) = args.positional(0) else {
        return usage();
    };
    let threads = args.usize_flag(
        "threads",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    let seed = args.u64_flag("seed", 0);

    let input = match read_input(path) {
        Ok(text) => text,
        Err(code) => return code,
    };
    let (mut parsed, bad_lines) = parse_lines(&input);

    // A nonzero seed shuffles the *assessment* order. The output is
    // re-sorted into line order below, so the answers must be — and the
    // golden tests check they are — seed-independent.
    if seed != 0 {
        lexforensica::netsim::rng::SimRng::seed_from(seed).shuffle(&mut parsed);
    }

    let actions: Vec<_> = parsed.iter().map(|p| p.action.clone()).collect();
    let assessor = BatchAssessor::new().with_threads(threads);
    let (assessments, report) = assessor.assess_all_with_report(&actions);

    let mut explain = match explain_file(&args) {
        Ok(writer) => writer,
        Err(code) => return code,
    };
    let mut rows: Vec<_> = parsed.iter().zip(&assessments).collect();
    rows.sort_by_key(|(p, _)| p.line);
    for (p, assessment) in rows {
        println!("#{} {} -- {}", p.line, assessment.verdict_line(), p.summary);
        if let Some(out) = explain.as_mut() {
            // Trace ids are minted here, per batch row in line order, so
            // a fresh process yields trace 1 for line 1 and so on — the
            // golden test pins exactly this.
            use std::io::Write as _;
            let trace = obs::TraceId::mint();
            let record = format!(
                r#"{{"trace":{trace},"line":{},"verdict":"{}","confidence":"{}","provenance":{}}}"#,
                p.line,
                json_escape(&assessment.verdict().to_string()),
                json_escape(&assessment.confidence().to_string()),
                assessment.provenance().to_json(),
            );
            if let Err(e) = writeln!(out, "{record}") {
                eprintln!("cannot write explain record: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(out) = explain.as_mut() {
        use std::io::Write as _;
        if let Err(e) = out.flush() {
            eprintln!("cannot flush explain records: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("{report}");
    if bad_lines > 0 {
        eprintln!("{bad_lines} malformed line(s) skipped");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Opens (and, if needed, recovers) the request journal at `dir`,
/// reporting what recovery found. Shared by `journal`, `replay`'s
/// write-side sibling `serve --tcp --journal`, and anything else that
/// appends.
fn open_journal(dir: &str) -> Result<Journal, ExitCode> {
    match Journal::open(Path::new(dir), JournalConfig::default()) {
        Ok((journal, recovery)) => {
            if let Some(t) = &recovery.truncation {
                eprintln!(
                    "journal: truncated torn tail of {} at offset {} ({} bytes lost: {})",
                    t.segment.display(),
                    t.offset,
                    t.lost_bytes,
                    t.reason
                );
            }
            if recovery.records > 0 {
                eprintln!(
                    "journal: recovered {} records, resuming at seq {}",
                    recovery.records, recovery.next_seq
                );
            }
            Ok(journal)
        }
        Err(e) => {
            eprintln!("cannot open journal {dir}: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// `journal compact DIR`: rewrite the journal keeping only the latest
/// verdict per distinct action (and the latest diagnostic per distinct
/// malformed request), dropping load-dependent records entirely. The
/// swap is crash-safe: SIGKILL at any instant leaves the old or the new
/// generation, never a splice, and the next open completes the swap.
fn cmd_journal_compact(args: &Args) -> ExitCode {
    let Some(dir) = args.positional(1) else {
        return usage();
    };
    let classify = |record: &Record| -> Retention {
        match Status::from_byte(record.status) {
            // A verdict supersedes earlier verdicts for the same
            // engine-visible facts: the FactKey projection, not the
            // request bytes, is the identity (two spellings of one
            // action compact to one record).
            Some(Status::Ok) => match parse_action(&record.request) {
                Ok(action) => {
                    let mut key = Vec::with_capacity(9);
                    key.push(0x01);
                    key.extend_from_slice(&FactKey::of(&action).bits().to_be_bytes());
                    Retention::Supersede(key)
                }
                // Journaled ok but no longer parseable: preserve the
                // evidence for `replay` to flag rather than guess.
                Err(_) => Retention::Keep,
            },
            // Malformed requests dedupe by their raw bytes.
            Some(Status::BadRequest) => {
                let mut key = Vec::with_capacity(1 + record.request.len());
                key.push(0x02);
                key.extend_from_slice(&record.request);
                Retention::Supersede(key)
            }
            // Timeouts, sheds, rejections: facts about a past run's
            // load, not about the law. Compaction retires them.
            _ => Retention::Drop,
        }
    };
    match lexforensica::journal::compact::compact(
        Path::new(dir),
        JournalConfig::default(),
        classify,
    ) {
        Ok(report) => {
            match report.prior {
                SwapRecovery::Clean => {}
                SwapRecovery::RolledForward => {
                    eprintln!("journal: completed an interrupted compaction swap (rolled forward)")
                }
                SwapRecovery::RolledBack => {
                    eprintln!("journal: discarded an uncommitted compaction (rolled back)")
                }
            }
            eprintln!(
                "compacted {dir}: {} of {} records survive ({} superseded, {} dropped), \
                 {} -> {} segments, {} -> {} bytes ({:.2}x)",
                report.surviving_records,
                report.input_records,
                report.superseded,
                report.discarded,
                report.segments_before,
                report.segments_after,
                report.bytes_before,
                report.bytes_after,
                report.ratio()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot compact journal {dir}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `journal FILE DIR`: assess a JSONL batch and record every row —
/// verdicts and malformed lines alike — in the durable request journal.
/// `journal compact DIR` instead rewrites an existing journal down to
/// its latest-wins survivors.
fn cmd_journal(args: Args) -> ExitCode {
    if args.positional(0) == Some("compact") {
        return cmd_journal_compact(&args);
    }
    let (Some(path), Some(dir)) = (args.positional(0), args.positional(1)) else {
        return usage();
    };
    let threads = args.usize_flag(
        "threads",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    let input = match read_input(path) {
        Ok(text) => text,
        Err(code) => return code,
    };
    let batch = parse_jsonl(&input);
    for error in &batch.errors {
        eprintln!("{}", error.located());
    }
    let raw_lines: Vec<&[u8]> = input.split(|&b| b == b'\n').collect();

    let actions: Vec<_> = batch.lines.iter().map(|p| p.action.clone()).collect();
    let assessor = BatchAssessor::new().with_threads(threads);
    let (assessments, report) = assessor.assess_all_with_report(&actions);

    // Merge verdict rows and malformed rows back into input order: the
    // journal records the session as it happened, not just the wins.
    enum Row {
        Verdict(String),
        Bad(String),
    }
    let mut rows: Vec<(usize, Row)> = batch
        .lines
        .iter()
        .zip(&assessments)
        .map(|(p, a)| (p.line, Row::Verdict(a.verdict_line())))
        .chain(
            batch
                .errors
                .iter()
                .map(|e| (e.line, Row::Bad(e.error.to_string()))),
        )
        .collect();
    rows.sort_by_key(|(line, _)| *line);

    let journal = match open_journal(dir) {
        Ok(journal) => journal,
        Err(code) => return code,
    };
    let mut ok = 0u64;
    let mut bad = 0u64;
    let mut last_seq = 0u64;
    for (line, row) in rows {
        let request = raw_lines[line - 1].to_vec();
        let (status, verdict) = match row {
            Row::Verdict(verdict_line) => {
                ok += 1;
                (Status::Ok, verdict_line.into_bytes())
            }
            Row::Bad(reason) => {
                bad += 1;
                (Status::BadRequest, reason.into_bytes())
            }
        };
        let data = RecordData {
            // Trace ids are minted here, per row in line order — the
            // same convention as assess-batch --explain.
            trace: obs::TraceId::mint(),
            at_us: lexforensica::journal::now_us(),
            status: status.as_byte(),
            request,
            verdict,
        };
        match journal.append(data) {
            Ok(seq) => last_seq = seq,
            Err(e) => {
                eprintln!("journal append failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = journal.close() {
        eprintln!("journal close failed: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "journaled {} records ({ok} ok, {bad} bad) through seq {last_seq} in {dir}",
        ok + bad
    );
    eprintln!("{report}");
    if bad > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Parses a journaled request payload back into an action (the same
/// path the server took when it first answered it).
fn parse_action(payload: &[u8]) -> Result<InvestigativeAction, String> {
    std::str::from_utf8(payload)
        .map_err(|e| format!("payload is not UTF-8: {e}"))
        .and_then(|line| {
            ActionSpec::from_json_line(line)
                .and_then(|spec| spec.to_action())
                .map_err(|e| e.to_string())
        })
}

/// Scans the whole journal at `dir` into memory. Read-only: corruption
/// is *reported* (uniformly, via the shared located-error shape), never
/// repaired here. Shared by offline replay and `replay --serve`.
fn scan_journal(dir: &str, mode: Mode) -> Result<Vec<Record>, ExitCode> {
    let mut reader = match JournalReader::open(Path::new(dir), mode) {
        Ok(reader) => reader,
        Err(e) => {
            eprintln!("cannot open journal {dir}: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    let mut records: Vec<Record> = Vec::new();
    loop {
        match reader.next_record() {
            Ok(Some(record)) => records.push(record),
            Ok(None) => break,
            Err(lexforensica::journal::JournalError::Corrupt {
                segment,
                offset,
                reason,
            }) => {
                eprintln!(
                    "{}",
                    LocatedError::new(
                        format_args!("{} offset {offset}", segment.display()),
                        reason
                    )
                );
                return Err(ExitCode::FAILURE);
            }
            Err(e) => {
                eprintln!("journal read failed: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
    }
    if let Some(t) = reader.truncation() {
        eprintln!(
            "journal: torn tail in {} at offset {} ({} bytes, {}); replaying the clean prefix",
            t.segment.display(),
            t.offset,
            t.lost_bytes,
            t.reason
        );
    }
    Ok(records)
}

/// `replay DIR`: the regression oracle. Re-runs every journaled request
/// through the engine and diffs the outcome byte-for-byte against what
/// the journal recorded. With `--serve ADDR` the session is instead
/// *refired* over TCP against a live server, paced by the journaled
/// timestamps.
fn cmd_replay(args: Args) -> ExitCode {
    let Some(dir) = args.positional(0) else {
        return usage();
    };
    let verify = args.get("verify").is_some();
    let threads = args.usize_flag(
        "threads",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    let mode = if verify { Mode::Strict } else { Mode::Recover };

    let records = match scan_journal(dir, mode) {
        Ok(records) => records,
        Err(code) => return code,
    };
    if let Some(addr) = args.get("serve") {
        return cmd_replay_serve(&args, addr, &records);
    }

    // Partition by journaled disposition. Only records that carried a
    // deterministic outcome are re-checked: verdicts must reproduce
    // exactly, bad requests must still fail to parse. Load-dependent
    // dispositions (timeout, shed, rejected) are facts about the
    // recorded run, not claims about the engine.
    let mut divergences: Vec<LocatedError> = Vec::new();
    let mut to_assess: Vec<(u64, Vec<u8>, InvestigativeAction)> = Vec::new();
    let mut bad_confirmed = 0u64;
    let mut skipped = 0u64;
    for record in &records {
        match Status::from_byte(record.status) {
            Some(Status::Ok) => match parse_action(&record.request) {
                Ok(action) => to_assess.push((record.seq, record.verdict.clone(), action)),
                Err(e) => divergences.push(LocatedError::new(
                    format_args!("record {}", record.seq),
                    format_args!("journaled ok but the payload no longer parses: {e}"),
                )),
            },
            Some(Status::BadRequest) => match parse_action(&record.request) {
                Err(_) => bad_confirmed += 1,
                Ok(_) => divergences.push(LocatedError::new(
                    format_args!("record {}", record.seq),
                    "journaled bad-request but the payload now parses",
                )),
            },
            _ => skipped += 1,
        }
    }

    let actions: Vec<_> = to_assess.iter().map(|(_, _, a)| a.clone()).collect();
    let assessor = BatchAssessor::new().with_threads(threads);
    let (assessments, report) = assessor.assess_all_with_report(&actions);
    let mut matched = 0u64;
    for ((seq, journaled, _), assessment) in to_assess.iter().zip(&assessments) {
        let live = assessment.verdict_line().into_bytes();
        if &live == journaled {
            matched += 1;
        } else {
            divergences.push(LocatedError::new(
                format_args!("record {seq}"),
                format_args!(
                    "verdict diverged: journal says {:?}, engine now says {:?}",
                    String::from_utf8_lossy(journaled),
                    String::from_utf8_lossy(&live)
                ),
            ));
        }
    }

    for divergence in &divergences {
        println!("{divergence}");
    }
    eprintln!(
        "replayed {} records: {matched} verdicts matched byte-for-byte, {bad_confirmed} \
         bad-requests confirmed, {skipped} skipped (load-dependent status), {} divergence(s)",
        records.len(),
        divergences.len()
    );
    eprintln!("{report}");
    if divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The live-refire half of `replay`: every deterministic record (ok and
/// bad-request) goes back on the wire against a `serve --tcp` server
/// through the shared [`wire::load`] core — one epoll driver thread on
/// Linux, whatever `--conns` says — paced by the journaled capture
/// times, and every response is diffed against the journaled
/// disposition. Load-dependent records (timeout, shed, rejected) are
/// facts about the recorded run, not requests to repeat, and are
/// skipped.
fn cmd_replay_serve(args: &Args, addr: &str, records: &[Record]) -> ExitCode {
    use lexforensica::wire::load::{self, LoadRequest, LoadSource};
    use std::collections::HashMap;
    use std::net::ToSocketAddrs as _;

    let pipeline = args.usize_flag("pipeline", 32).max(1);
    let speed: f64 = match args.get("speed").map(str::parse).transpose() {
        Ok(speed) => speed.unwrap_or(1.0),
        Err(_) => {
            eprintln!("--speed must be a number (0 = as fast as possible)");
            return ExitCode::FAILURE;
        }
    };
    if !speed.is_finite() || speed < 0.0 {
        eprintln!("--speed must be a finite non-negative number");
        return ExitCode::FAILURE;
    }
    let addr = match addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(addr) => addr,
        None => {
            eprintln!("--serve {addr}: not a resolvable HOST:PORT");
            return ExitCode::FAILURE;
        }
    };

    /// What the journal promises about one refired request.
    enum Expect {
        Verdict(Vec<u8>),
        BadRequest,
    }
    struct Refire {
        seq: u64,
        payload: Vec<u8>,
        due_us: u64,
    }

    // Pacing: capture-time deltas from the first refired record, scaled
    // by `--speed`. `at_us` carries no ordering authority (walls clocks
    // jump), so due times are clamped monotone — the journal's seq
    // order is the schedule, the timestamps only space it out.
    let mut expected: HashMap<u64, (String, Expect)> = HashMap::new();
    let mut refires: Vec<Refire> = Vec::new();
    let mut verdicts = 0u64;
    let mut bad = 0u64;
    let mut skipped = 0u64;
    let mut base_at_us: Option<u64> = None;
    let mut last_due = 0u64;
    for record in records {
        let expect = match Status::from_byte(record.status) {
            Some(Status::Ok) => {
                verdicts += 1;
                Expect::Verdict(record.verdict.clone())
            }
            Some(Status::BadRequest) => {
                bad += 1;
                Expect::BadRequest
            }
            _ => {
                skipped += 1;
                continue;
            }
        };
        let base = *base_at_us.get_or_insert(record.at_us);
        let due_us = if speed == 0.0 {
            0
        } else {
            let elapsed = record.at_us.saturating_sub(base) as f64 / speed;
            last_due.max(elapsed.min(u64::MAX as f64) as u64)
        };
        last_due = due_us;
        expected.insert(record.seq, (record.trace.to_string(), expect));
        refires.push(Refire {
            seq: record.seq,
            payload: record.request.clone(),
            due_us,
        });
    }
    let total = refires.len() as u64;
    let connections = args.usize_flag("conns", 8).max(1).min(refires.len().max(1));

    // Round-robin sharding keeps each connection's due times
    // nondecreasing (the global schedule already is).
    let mut shards: Vec<VecDeque<Refire>> = (0..connections).map(|_| VecDeque::new()).collect();
    for (i, refire) in refires.into_iter().enumerate() {
        shards[i % connections].push_back(refire);
    }

    struct ReplaySource {
        shards: Vec<VecDeque<Refire>>,
        expected: HashMap<u64, (String, Expect)>,
        divergences: Vec<LocatedError>,
        done: u64,
    }
    impl LoadSource for ReplaySource {
        fn next(&mut self, conn: usize) -> Option<LoadRequest> {
            self.shards[conn].pop_front().map(|refire| LoadRequest {
                id: refire.seq,
                payload: refire.payload,
                due_us: refire.due_us,
            })
        }

        fn complete(
            &mut self,
            _conn: usize,
            id: u64,
            status: Status,
            payload: &[u8],
            _rtt: Duration,
        ) {
            self.done += 1;
            let (trace, expect) = self
                .expected
                .remove(&id)
                .expect("response for a record never refired");
            match expect {
                Expect::Verdict(journaled) => {
                    if status != Status::Ok {
                        self.divergences.push(LocatedError::new(
                            format_args!("record {id} (trace {trace})"),
                            format_args!(
                                "status diverged: journal says ok, live server says {status}"
                            ),
                        ));
                    } else if payload != journaled.as_slice() {
                        self.divergences.push(LocatedError::new(
                            format_args!("record {id} (trace {trace})"),
                            format_args!(
                                "verdict diverged: journal says {:?}, live server says {:?}",
                                String::from_utf8_lossy(&journaled),
                                String::from_utf8_lossy(payload)
                            ),
                        ));
                    }
                }
                Expect::BadRequest => {
                    if status != Status::BadRequest {
                        self.divergences.push(LocatedError::new(
                            format_args!("record {id} (trace {trace})"),
                            format_args!(
                                "status diverged: journal says bad-request, live server says {status}"
                            ),
                        ));
                    }
                }
            }
        }
    }

    let mut source = ReplaySource {
        shards,
        expected,
        divergences: Vec::new(),
        done: 0,
    };
    let wall = match load::drive(addr, connections, pipeline, &mut source) {
        Ok(wall) => wall,
        Err(e) => {
            for divergence in &source.divergences {
                println!("{divergence}");
            }
            eprintln!("replay --serve failed after {} responses: {e}", source.done);
            return ExitCode::FAILURE;
        }
    };
    assert_eq!(source.done, total, "driver returned with responses missing");

    for divergence in &source.divergences {
        println!("{divergence}");
    }
    let pacing = if speed == 0.0 {
        "max pacing".to_string()
    } else {
        format!("{speed}x recorded pacing")
    };
    eprintln!(
        "refired {total} records ({verdicts} verdicts, {bad} bad-requests) against {addr} \
         over {connections} connection(s) in {:.3}s ({:.0} rec/s, {pacing}); \
         {skipped} skipped (load-dependent status); {} divergence(s)",
        wall.as_secs_f64(),
        total as f64 / wall.as_secs_f64().max(1e-9),
        source.divergences.len()
    );
    if source.divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `plan FILE`: best-first search over the lawful-process space for
/// the cheapest plan reaching every goal — or a provenance-backed
/// "no lawful path" refusal naming the blocking rule.
fn cmd_plan(args: Args) -> ExitCode {
    let Some(path) = args.positional(0) else {
        return usage();
    };
    let threads = args.usize_flag(
        "threads",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    let input = match read_input(path) {
        Ok(text) => text,
        Err(code) => return code,
    };
    // Problem defects surface in the same located-error shape
    // assess-batch and replay report: one "line N: reason" row each.
    let problem = match lexforensica::planner::parse_problem(&input) {
        Ok(problem) => problem,
        Err(errors) => {
            for error in &errors {
                eprintln!("{error}");
            }
            eprintln!("{} problem defect(s); nothing planned", errors.len());
            return ExitCode::FAILURE;
        }
    };
    let outcome = match lexforensica::planner::Planner::with_threads(threads).solve(&problem) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("planning failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The rendering is deterministic (golden-tested); timing lives on
    // stderr only.
    print!("{}", outcome.render());
    let stats = outcome.stats();
    eprintln!(
        "search: {} nodes expanded, {} candidate step(s) in {} batched call(s); \
         {:.0} nodes/s; cache: {} hits, {} misses ({:.1}% hit rate)",
        stats.nodes_expanded,
        stats.candidates_evaluated,
        stats.batch_calls,
        stats.nodes_per_second(),
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_hit_rate() * 100.0,
    );
    ExitCode::SUCCESS
}

/// Builds a service from the shared `--workers/--capacity/--policy/
/// --deadline-ms` flags, or reports the bad flag and returns `None`.
fn service_from_args(args: &Args) -> Option<ComplianceService> {
    let workers = args.usize_flag(
        "workers",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    let capacity = args.usize_flag("capacity", 1024);
    let policy = match args.get("policy") {
        None => AdmissionPolicy::Block,
        Some(word) => match AdmissionPolicy::parse(word) {
            Some(policy) => policy,
            None => {
                eprintln!("unknown admission policy \"{word}\"");
                return None;
            }
        },
    };
    let default_deadline = args
        .get("deadline-ms")
        .map(|_| Duration::from_millis(args.u64_flag("deadline-ms", 0)));
    let queue = match args.get("queue") {
        None => QueueKind::default(),
        Some(word) => match QueueKind::parse(word) {
            Some(kind) => kind,
            None => {
                eprintln!("unknown queue kind \"{word}\" (lockfree|locked)");
                return None;
            }
        },
    };
    Some(ComplianceService::start(ServiceConfig {
        workers,
        capacity,
        policy,
        default_deadline,
        queue,
        engine_floor: Duration::ZERO,
    }))
}

/// The serving model behind `serve --tcp`: the event-driven epoll
/// loop by default, the thread-per-connection server under
/// `--threaded` (and everywhere epoll is unavailable).
enum TcpServer {
    Threaded(WireServer),
    #[cfg(target_os = "linux")]
    Event(EventServer),
}

impl TcpServer {
    fn local_addr(&self) -> std::net::SocketAddr {
        match self {
            TcpServer::Threaded(s) => s.local_addr(),
            #[cfg(target_os = "linux")]
            TcpServer::Event(s) => s.local_addr(),
        }
    }

    fn shutdown(self) -> WireMetricsSnapshot {
        match self {
            TcpServer::Threaded(s) => s.shutdown(),
            #[cfg(target_os = "linux")]
            TcpServer::Event(s) => s.shutdown().metrics,
        }
    }
}

#[cfg(target_os = "linux")]
fn start_event_server(
    addr: &str,
    service: &Arc<ComplianceService>,
    config: WireConfig,
    explain: Option<Arc<ExplainSink>>,
    journal: Option<Arc<Journal>>,
) -> std::io::Result<TcpServer> {
    EventServer::start_with_sinks(addr, Arc::clone(service), config, explain, journal)
        .map(TcpServer::Event)
}

#[cfg(not(target_os = "linux"))]
fn start_event_server(
    _addr: &str,
    _service: &Arc<ComplianceService>,
    _config: WireConfig,
    _explain: Option<Arc<ExplainSink>>,
    _journal: Option<Arc<Journal>>,
) -> std::io::Result<TcpServer> {
    unreachable!("--threaded is forced where epoll is unavailable")
}

/// `serve --tcp ADDR`: expose the service over the wire protocol until
/// stdin reaches EOF, then drain gracefully.
fn cmd_serve_tcp(args: &Args) -> ExitCode {
    let addr = args.get("tcp").expect("dispatched on --tcp");
    let Some(service) = service_from_args(args) else {
        return usage();
    };
    let service = Arc::new(service);
    let config = WireConfig {
        max_inflight: args.usize_flag("max-inflight", 64),
        ..WireConfig::default()
    };
    let explain = match args.get("explain") {
        None => None,
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => {
                obs::global().set_enabled(true);
                Some(ExplainSink::new(Box::new(file)))
            }
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let journal = match args.get("journal") {
        None => None,
        Some(dir) => match open_journal(dir) {
            Ok(journal) => Some(Arc::new(journal)),
            Err(code) => return code,
        },
    };
    // Epoll readiness loop by default; thread-per-connection with
    // `--threaded` (and always where epoll does not exist).
    let threaded = args.get("threaded").is_some() || !cfg!(target_os = "linux");
    let started = if threaded {
        WireServer::start_with_sinks(addr, Arc::clone(&service), config, explain, journal.clone())
            .map(TcpServer::Threaded)
    } else {
        start_event_server(addr, &service, config, explain, journal.clone())
    };
    let server = match started {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The contract scripts rely on: address first on stderr (alone on
    // its line), stdin EOF stops.
    eprintln!("listening on {}", server.local_addr());
    eprintln!(
        "serving model: {}",
        if threaded { "threaded" } else { "epoll" }
    );

    let mut sink = Vec::new();
    use std::io::Read as _;
    let _ = std::io::stdin().read_to_end(&mut sink);

    eprintln!("stdin closed; draining");
    let wire_finals = server.shutdown();
    eprintln!("wire metrics: {}", wire_finals.to_json());
    let mut journal_failed = false;
    if let Some(journal) = journal {
        // All connection threads are joined, so this Arc is the last
        // handle and close() sees every append the server issued.
        match Arc::try_unwrap(journal) {
            Ok(journal) => {
                if let Err(e) = journal.close() {
                    eprintln!("journal close failed: {e}");
                    journal_failed = true;
                } else {
                    eprintln!("journal durable through seq {}", journal.durable_seq());
                }
            }
            Err(_) => {
                eprintln!("journal handle still shared after drain");
                journal_failed = true;
            }
        }
    }
    let Ok(service) = Arc::try_unwrap(service) else {
        // Every server thread has been joined, so this handle is the
        // last one; if not, report rather than hang.
        eprintln!("service handle still shared after drain");
        return ExitCode::FAILURE;
    };
    let finals = service.shutdown();
    eprintln!("service metrics: {}", finals.to_json());
    if finals.responses() != finals.accepted {
        eprintln!(
            "lost responses: accepted {} answered {}",
            finals.accepted,
            finals.responses()
        );
        return ExitCode::FAILURE;
    }
    if journal_failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `assess-remote ADDR FILE`: replay a JSONL batch over the wire
/// protocol, pipelined, and print assess-batch-identical rows.
fn cmd_assess_remote(args: Args) -> ExitCode {
    let (Some(addr), Some(path)) = (args.positional(0), args.positional(1)) else {
        return usage();
    };
    let window = args.usize_flag("pipeline", 32).max(1);
    let deadline_ms = args.u64_flag("deadline-ms", 0).min(u64::from(u32::MAX)) as u32;

    let input = match read_input(path) {
        Ok(text) => text,
        Err(code) => return code,
    };
    let (parsed, bad_lines) = parse_lines(&input);
    // The wire payload is the raw JSONL line itself (1-based `line`
    // indexes into the unfiltered input).
    let raw_lines: Vec<&[u8]> = input.split(|&b| b == b'\n').collect();

    let client = match WireClient::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Sliding-window pipelining: up to `window` requests on the wire,
    // reaping the oldest before submitting the next. Responses may
    // complete out of order server-side; rows are re-sorted below.
    let mut inflight: VecDeque<(&SpecLine, PendingCall)> = VecDeque::new();
    let mut rows: Vec<(usize, String)> = Vec::new();
    let mut failed = false;
    let reap =
        |spec: &SpecLine, call: PendingCall, rows: &mut Vec<(usize, String)>| match call.wait() {
            Ok(response) => {
                let row = match response.status {
                    Status::Ok => format!(
                        "#{} {} -- {}",
                        spec.line,
                        String::from_utf8_lossy(&response.payload),
                        spec.summary
                    ),
                    status => format!("#{} {} -- {}", spec.line, status, spec.summary),
                };
                rows.push((spec.line, row));
                false
            }
            Err(e) => {
                eprintln!("line {}: {e}", spec.line);
                true
            }
        };
    for spec in &parsed {
        if inflight.len() == window {
            let (spec, call) = inflight.pop_front().expect("window is non-empty");
            failed |= reap(spec, call, &mut rows);
        }
        let raw = raw_lines[spec.line - 1].to_vec();
        match client.submit(raw, deadline_ms) {
            Ok(call) => inflight.push_back((spec, call)),
            Err(e) => {
                eprintln!("line {}: {e}", spec.line);
                failed = true;
            }
        }
    }
    for (spec, call) in inflight {
        failed |= reap(spec, call, &mut rows);
    }

    rows.sort_by_key(|(line, _)| *line);
    for (_, row) in rows {
        println!("{row}");
    }
    if bad_lines > 0 {
        eprintln!("{bad_lines} malformed line(s) skipped");
    }
    if failed || bad_lines > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_serve(args: Args) -> ExitCode {
    if args.get("tcp").is_some() {
        return cmd_serve_tcp(&args);
    }
    let Some(path) = args.positional(0) else {
        return usage();
    };
    let workers = args.usize_flag(
        "workers",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    let capacity = args.usize_flag("capacity", 1024);
    let policy = match args.get("policy") {
        None => AdmissionPolicy::Block,
        Some(word) => match AdmissionPolicy::parse(word) {
            Some(policy) => policy,
            None => {
                eprintln!("unknown admission policy \"{word}\"");
                return usage();
            }
        },
    };
    let default_deadline = args
        .get("deadline-ms")
        .map(|_| Duration::from_millis(args.u64_flag("deadline-ms", 0)));

    let input = match read_input(path) {
        Ok(text) => text,
        Err(code) => return code,
    };
    let (parsed, bad_lines) = parse_lines(&input);

    let mut explain = match explain_file(&args) {
        Ok(writer) => writer,
        Err(code) => return code,
    };
    if explain.is_some() {
        // Tracing rides along with --explain: every admitted request
        // leaves queue/engine spans in the global ring, joinable to the
        // provenance records below by trace id.
        obs::global().set_enabled(true);
    }

    let service = ComplianceService::start(ServiceConfig {
        workers,
        capacity,
        policy,
        default_deadline,
        engine_floor: Duration::ZERO,
        ..ServiceConfig::default()
    });
    let start = Instant::now();

    // Closed-loop submission: under `block` a full queue pushes back on
    // this loop; under `reject`/`drop-oldest` overload turns into shed
    // rows instead of waiting.
    let tickets: Vec<Option<Ticket>> = parsed
        .iter()
        .map(|p| match service.submit(p.action.clone()) {
            Ok(ticket) => Some(ticket),
            Err(SubmitError::Overloaded) => None,
            Err(SubmitError::ShuttingDown) => {
                unreachable!("nothing closes admission during serve")
            }
        })
        .collect();

    for (p, ticket) in parsed.iter().zip(tickets) {
        let response = ticket.map(Ticket::wait);
        match response.as_ref().map(|r| &r.outcome) {
            None => println!("#{} rejected -- {}", p.line, p.summary),
            Some(Outcome::Completed(assessment)) => {
                println!("#{} {} -- {}", p.line, assessment.verdict_line(), p.summary);
            }
            Some(Outcome::TimedOut) => println!("#{} timeout -- {}", p.line, p.summary),
            Some(Outcome::Shed) => println!("#{} shed -- {}", p.line, p.summary),
        }
        if let Some(out) = explain.as_mut() {
            use std::io::Write as _;
            // Rejected rows never got a trace (refused at admission);
            // record them with the UNTRACED id 0.
            let trace = response.as_ref().map_or(0, |r| r.trace.as_u64());
            let (status, provenance) = match response.as_ref().map(|r| &r.outcome) {
                None => ("rejected", "[]".to_string()),
                Some(Outcome::Completed(a)) => ("ok", a.provenance().to_json()),
                Some(Outcome::TimedOut) => ("timeout", "[]".to_string()),
                Some(Outcome::Shed) => ("shed", "[]".to_string()),
            };
            let record = format!(
                r#"{{"trace":{trace},"line":{},"status":"{status}","provenance":{provenance}}}"#,
                p.line,
            );
            if let Err(e) = writeln!(out, "{record}") {
                eprintln!("cannot write explain record: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let elapsed = start.elapsed();
    let cache = service.cache().stats();
    let finals = service.shutdown();
    debug_assert_eq!(finals.responses(), finals.accepted, "lost a response");
    if let Some(out) = explain.as_mut() {
        use std::io::Write as _;
        if let Err(e) = out.flush() {
            eprintln!("cannot flush explain records: {e}");
            return ExitCode::FAILURE;
        }
        let spans = obs::global().snapshot();
        let count = |stage| spans.iter().filter(|s| s.stage == stage).count();
        eprintln!(
            "span ring: {} queue, {} engine spans recorded",
            count(obs::Stage::Queue),
            count(obs::Stage::Engine),
        );
    }
    eprintln!(
        "served {} of {} requests on {} workers in {:.1?} ({:.0} actions/s); cache: {}",
        finals.responses(),
        finals.submitted,
        workers,
        elapsed,
        finals.responses() as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        cache
    );
    eprintln!("metrics: {}", finals.to_json());
    if bad_lines > 0 {
        eprintln!("{bad_lines} malformed line(s) skipped");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("table1") => cmd_table1(),
        Some("assess") => cmd_assess(&args[1..]),
        Some("assess-batch") => cmd_assess_batch(Args::parse_from(args[1..].iter().cloned())),
        Some("assess-remote") => cmd_assess_remote(Args::parse_from(args[1..].iter().cloned())),
        // `--threaded` is a bare switch; the Args parser only knows
        // `--flag VALUE` pairs, so give it a value before parsing.
        Some("serve") => cmd_serve(Args::parse_from(args[1..].iter().map(|a| {
            if a == "--threaded" {
                "--threaded=true".to_string()
            } else {
                a.clone()
            }
        }))),
        Some("journal") => cmd_journal(Args::parse_from(args[1..].iter().cloned())),
        Some("plan") => cmd_plan(Args::parse_from(args[1..].iter().cloned())),
        // `--verify` is a bare switch; the Args parser only knows
        // `--flag VALUE` pairs, so give it a value before parsing.
        Some("replay") => cmd_replay(Args::parse_from(args[1..].iter().map(|a| {
            if a == "--verify" {
                "--verify=true".to_string()
            } else {
                a.clone()
            }
        }))),
        Some("cite") => match args.get(1) {
            Some(needle) => cmd_cite(needle),
            None => usage(),
        },
        _ => usage(),
    }
}
