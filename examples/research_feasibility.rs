//! The paper's §IV analysis as a tool for researchers: profile a
//! technique, get its feasibility class and a recommendation.
//!
//! Run with: `cargo run --example research_feasibility`

use lexforensica::law::analysis::{
    analyze, closing_recommendation, dsss_watermark_profile, oneswarm_timing_attack_profile,
    TechniqueProfile,
};
use lexforensica::law::casebook::lookup;
use lexforensica::law::prelude::*;

fn main() {
    println!("=== research-technique feasibility analysis (paper §IV) ===\n");

    // The paper's two case studies.
    for profile in [oneswarm_timing_attack_profile(), dsss_watermark_profile()] {
        let analysis = analyze(&profile);
        println!("{analysis}");
        println!();
    }

    // A hypothetical new technique a researcher might propose: a
    // thermal-imaging-style side channel that reveals activity inside a
    // home — squarely within the Kyllo rule.
    let kyllo_tech = TechniqueProfile::new(
        "RF side-channel profiler for in-home device activity",
        InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::NonContentAddressing,
                Temporality::RealTime,
                DataLocation::SuspectDevice,
            ),
        )
        .describe("profile device activity inside a home with specialized RF equipment")
        .with_specialized_tech(true)
        .build(),
    );
    let analysis = analyze(&kyllo_tech);
    println!("{analysis}");
    println!(
        "key authority: {}",
        lookup(
            analysis
                .law_enforcement_assessment()
                .rationale()
                .cited_authorities()[0]
        )
    );

    let (recommendation, _) = closing_recommendation();
    println!("\nPaper's closing recommendation (§V): {recommendation}.");
}
