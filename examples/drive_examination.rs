//! The Table 1 rows 18–19 walkthrough on a simulated disk: hashing an
//! entire lawfully obtained drive for a particular file is a fresh
//! search (*United States v. Crist*), while mining the dataset for
//! aggregate information is not (*State v. Sloane*).
//!
//! Run with: `cargo run --example drive_examination`

use lexforensica::evidence::disk::DiskImage;
use lexforensica::evidence::hash::sha256;
use lexforensica::investigation::workflow::Investigation;
use lexforensica::law::prelude::*;
use lexforensica::law::process::FactualStandard;

fn hash_search_action() -> InvestigativeAction {
    InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::stored_opened(),
            DataLocation::LawfullyObtainedMedia,
        ),
    )
    .describe("run hash functions across the entire obtained drive hunting one file")
    .exhaustive_forensic_search()
    .build()
}

fn mining_action() -> InvestigativeAction {
    InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::stored_opened(),
            DataLocation::LawfullyObtainedMedia,
        ),
    )
    .describe("mine the lawfully obtained dataset for aggregate statistics")
    .mining_lawfully_held_dataset()
    .build()
}

fn main() {
    println!("=== drive examination: hashing vs mining (Table 1 rows 18-19) ===\n");

    // The drive, lawfully in custody (say, consented for a fraud matter).
    let mut disk = DiskImage::new("suspect drive");
    disk.write_file("invoices/2011.xlsx", b"fraudulent invoices".to_vec());
    disk.write_file("photos/beach.jpg", b"vacation".to_vec());
    disk.write_file("cache/x91.dat", b"known contraband bytes".to_vec());
    disk.delete_file("cache/x91.dat"); // deleted, but forensics recovers it
    println!("drive: {}\n", disk.mine_statistics());

    let mut inv = Investigation::open("drive examination");

    // Row 19 first: mining needs nothing.
    let mining = mining_action();
    let assessment = inv.assess(&mining);
    println!("mining the dataset → {}", assessment.verdict());
    let stats = disk.mine_statistics();
    inv.collect(
        &mining,
        "aggregate statistics",
        stats.to_string().into_bytes(),
        "examiner",
    )
    .expect("no process needed");

    // Row 18: the hash search needs a warrant.
    let search = hash_search_action();
    let assessment = inv.assess(&search);
    println!("drive-wide hash search → {}", assessment.verdict());
    match inv.collect(&search, "hash hits", vec![], "examiner") {
        Err(refusal) => println!("engine refused: {refusal}"),
        Ok(_) => unreachable!("no warrant yet"),
    }

    // Build the record and get the warrant.
    inv.add_fact(
        "NCMEC hash set matches material tied to this subscriber",
        FactualStandard::ProbableCause,
    );
    inv.apply_for(
        LegalProcess::SearchWarrant,
        "contraband image files on the drive",
    )
    .expect("probable cause on record");
    println!("\nsearch warrant granted; executing the hash search...");

    let target = sha256(b"known contraband bytes");
    let hits = disk.hash_search(&[target]);
    println!("hash search hits: {hits:?} (recovered from deleted space)");
    let item = inv
        .collect(
            &search,
            "hash search hits",
            hits.join("\n").into_bytes(),
            "examiner",
        )
        .expect("warrant in hand");
    println!(
        "collected under warrant; admissible: {}",
        inv.locker().admissibility(item).unwrap().is_admissible()
    );

    println!(
        "\nPaper: running hash values across a drive is a search (Crist); mining a\n\
         lawfully obtained database is not (Sloane) — the engine enforces both."
    );
}
