//! The §IV-A storyline: a forensic timing-attack investigation of an
//! anonymous (OneSwarm-style) filesharing overlay.
//!
//! The investigator joins the overlay as an ordinary peer, queries its
//! neighbors for a contraband file, and classifies each neighbor as
//! *source* or *proxy* purely from first-response delays — collecting
//! only protocol-visible traffic, which the compliance engine confirms
//! needs no warrant/court order/subpoena (Table 1 row 10).
//!
//! Run with: `cargo run --example oneswarm_investigation`

use lexforensica::law::prelude::*;
use lexforensica::p2psim::experiment::{run_experiment, ExperimentConfig};

fn main() {
    println!("=== OneSwarm timing-attack investigation (paper §IV-A) ===\n");

    // Legality check first — the paper's recommended habit.
    let engine = ComplianceEngine::new();
    let action = InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::RealTime,
            DataLocation::PublicForum,
        ),
    )
    .describe("join the anonymous P2P overlay, query for contraband, time the responses")
    .joining_public_protocol()
    .build();
    let assessment = engine.assess(&action);
    println!("legal posture: {}", assessment.verdict());
    println!("{}", assessment.rationale());
    assert_eq!(assessment.verdict(), Verdict::NoProcessNeeded);

    // Run the attack on a simulated overlay.
    let config = ExperimentConfig {
        peers: 64,
        trust_degree: 3,
        sources: 8,
        targets: 16,
        probes: 5,
        ..ExperimentConfig::default()
    };
    println!(
        "overlay: {} peers, trust degree {}, {} sources; probing {} targets × {} probes",
        config.peers, config.trust_degree, config.sources, config.targets, config.probes
    );
    let result = run_experiment(&config);

    println!(
        "\nthreshold: {:.0} ms (max source delay + RTT slack)\n",
        result.threshold_ms
    );
    println!(
        "{:<8} {:>10} {:>14} {:>12}",
        "target", "truth", "min delay(ms)", "classified"
    );
    for o in &result.outcomes {
        println!(
            "{:<8} {:>10} {:>14} {:>12}",
            o.node.to_string(),
            if o.is_source { "SOURCE" } else { "proxy" },
            o.min_delay_ms
                .map(|d| format!("{d:.0}"))
                .unwrap_or_else(|| "timeout".into()),
            if o.classified_source {
                "SOURCE"
            } else {
                "proxy"
            },
        );
    }
    println!(
        "\nprecision {:.2}  recall {:.2}  accuracy {:.2}",
        result.metrics.precision(),
        result.metrics.recall(),
        result.metrics.accuracy()
    );
    println!(
        "\nConclusion (paper §IV-A): \"such kinds of attack can be directly used in\n\
         criminal investigations ahead of a warrant/court order/subpoena.\""
    );
}
