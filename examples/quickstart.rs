//! Quickstart: ask the compliance engine the paper's central question —
//! "does this investigative action need a warrant, court order, or
//! subpoena?" — for a handful of postures, and print the full rationale
//! chains.
//!
//! Run with: `cargo run --example quickstart`

use lexforensica::law::prelude::*;
use lexforensica::law::scenarios;

fn assess_and_print(engine: &ComplianceEngine, action: &InvestigativeAction) {
    let assessment = engine.assess(action);
    println!("ACTION: {action}");
    println!("{assessment}");
    println!();
}

fn main() {
    let engine = ComplianceEngine::new();

    println!("=== lexforensica quickstart ===\n");

    // 1. Full packet capture at an ISP — Title III, wiretap order.
    let wiretap = InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::RealTime,
            DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
        ),
    )
    .describe("officer logs entire packets (headers + payload) at an ISP")
    .build();
    assess_and_print(&engine, &wiretap);

    // 2. Headers only at the same vantage point — pen/trap court order.
    let pen_trap = InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::NonContentAddressing,
            Temporality::RealTime,
            DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
        ),
    )
    .describe("officer logs packet headers and sizes at an ISP")
    .build();
    assess_and_print(&engine, &pen_trap);

    // 3. Joining a public P2P network — no process at all.
    let p2p = InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::RealTime,
            DataLocation::PublicForum,
        ),
    )
    .describe("officer collects user names and shared files via P2P software")
    .joining_public_protocol()
    .build();
    assess_and_print(&engine, &p2p);

    // 4. Compelling an ISP to identify a subscriber — subpoena.
    assess_and_print(
        &engine,
        &scenarios::compel_subscriber_info_from_public_isp(),
    );

    // 5. Consent changes everything: a warrantless device search with the
    // owner's consent.
    let consent_search = InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::stored_opened(),
            DataLocation::SuspectDevice,
        ),
    )
    .describe("search a laptop with the owner's voluntary consent")
    .with_consent(Consent::by(ConsentAuthority::TargetSelf))
    .build();
    assess_and_print(&engine, &consent_search);

    // 6. And if consent is revoked mid-search, the warrant requirement
    // snaps back.
    let revoked = InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::stored_opened(),
            DataLocation::SuspectDevice,
        ),
    )
    .describe("continue searching after the owner revoked consent")
    .with_consent(Consent::by(ConsentAuthority::TargetSelf).revoked())
    .build();
    assess_and_print(&engine, &revoked);

    println!("Tip: `cargo run -p bench --bin table1` regenerates the paper's full Table 1.");
}
