//! The paper's §III-A-3 Alice→Bob email walkthrough: how a provider's SCA
//! role (ECS → RCS → neither) changes with the message's lifecycle, and
//! what process each stage demands.
//!
//! Run with: `cargo run --example email_lifecycle`

use lexforensica::law::prelude::*;
use lexforensica::law::provider::{MessageStage, ScaRole};

fn compel(engine: &ComplianceEngine, lifecycle: MessageLifecycle, info: CompelledInfo, what: &str) {
    let temporality = match lifecycle.sca_role() {
        ScaRole::Ecs => Temporality::stored_unopened(),
        _ => Temporality::stored_opened(),
    };
    let action = InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            temporality,
            DataLocation::ProviderStorage,
        ),
    )
    .describe(what)
    .compelling_provider(ProviderCompulsion { lifecycle, info })
    .build();
    let out = engine.assess(&action);
    println!(
        "  role: {:<22} verdict: {}",
        lifecycle.sca_role().to_string(),
        out.verdict()
    );
}

fn main() {
    let engine = ComplianceEngine::new();
    println!("=== the SCA email lifecycle (paper §III-A-3) ===\n");
    println!("Alice (alice@cs.charlie.edu) emails Bob (bob@gmail.com).\n");

    // 1. Bob's email sits unopened at Gmail: Gmail is an ECS provider —
    //    compelling the unopened content takes a search warrant.
    println!("1. Bob's email awaits retrieval at Gmail:");
    let gmail = MessageLifecycle::new(ProviderPublicity::Public, MessageStage::AwaitingRetrieval);
    compel(
        &engine,
        gmail,
        CompelledInfo::UnopenedContent,
        "compel unopened email from Gmail",
    );

    // 2. Bob opens it and leaves it there: Gmail becomes an RCS provider —
    //    the opened content is compellable with a § 2703(d) order.
    println!("\n2. Bob opens the email and stores it at Gmail:");
    let gmail_opened = gmail.after_opening();
    compel(
        &engine,
        gmail_opened,
        CompelledInfo::OpenedContent,
        "compel opened email from Gmail",
    );

    // 3. Bob replies; his reply awaits Alice at the university server —
    //    an ECS again.
    println!("\n3. Bob's reply awaits Alice at the university server:");
    let univ = MessageLifecycle::new(
        ProviderPublicity::NonPublic,
        MessageStage::AwaitingRetrieval,
    );
    compel(
        &engine,
        univ,
        CompelledInfo::UnopenedContent,
        "compel unopened reply from the university",
    );

    // 4. Alice opens it and leaves it on the university server. The
    //    university serves no "public", so it is neither ECS nor RCS —
    //    "the SCA no longer regulates access to this email, and such
    //    access is governed solely by the Fourth Amendment."
    println!("\n4. Alice opens the reply and stores it on the university server:");
    let univ_opened = univ.after_opening();
    println!(
        "  role: {:<22} (SCA drops out — Fourth Amendment governs; the university,",
        univ_opened.sca_role().to_string()
    );
    println!("  as a non-public provider, may also disclose voluntarily under § 2702)");

    // Bonus: basic subscriber info is always just a subpoena away.
    println!("\n5. Identifying the account holder (basic subscriber info):");
    compel(
        &engine,
        gmail,
        CompelledInfo::BasicSubscriberInfo,
        "compel subscriber identity from Gmail",
    );

    println!(
        "\nPaper: \"Functionally speaking, the opened email in Alice's account drops\n\
         out of the SCA.\""
    );
}
