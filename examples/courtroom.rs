//! A courtroom walkthrough: build a case the right way and the wrong way,
//! and watch the exclusionary rule do its work — the paper's §I warning
//! ("incorrect use of new techniques may result in suppression of the
//! gathered evidence in court") made executable.
//!
//! Run with: `cargo run --example courtroom`

use lexforensica::investigation::court::rule_on;
use lexforensica::investigation::workflow::Investigation;
use lexforensica::law::prelude::*;
use lexforensica::law::probable_cause::{evaluate_basis, ProbableCauseBasis};

fn device_search() -> InvestigativeAction {
    InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::stored_opened(),
            DataLocation::SuspectDevice,
        ),
    )
    .describe("image the suspect's computer")
    .build()
}

fn public_collection() -> InvestigativeAction {
    InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::stored_opened(),
            DataLocation::PublicForum,
        ),
    )
    .describe("archive the suspect's public forum posts")
    .joining_public_protocol()
    .build()
}

fn main() {
    println!("=== courtroom walkthrough ===\n");

    // --- The careful investigator -------------------------------------
    println!("--- investigator A: builds the record before acting ---");
    let mut careful = Investigation::open("United States v. Careful");

    // Free collection first: public posts need no process.
    let posts = careful
        .collect(
            &public_collection(),
            "public posts",
            b"posts...".to_vec(),
            "agent a",
        )
        .expect("public collection needs no process");

    // Use the IP-address path to probable cause.
    let pc = evaluate_basis(ProbableCauseBasis::IpAddressIdentification {
        subscriber_identified: true,
        open_wifi: true, // open Wi-Fi does not defeat probable cause
    });
    println!("probable cause analysis:\n{}", pc.rationale());
    careful.add_fact(
        "subscriber identified from IP address",
        pc.achieved_standard(),
    );

    // Warrant, then the device search.
    careful
        .apply_for(
            LegalProcess::SearchWarrant,
            "the subscriber's residence and computers",
        )
        .expect("probable cause on record");
    let image = careful
        .collect_derived(
            &device_search(),
            "device image",
            b"disk sectors".to_vec(),
            "agent a",
            [posts],
        )
        .expect("warrant in hand");
    println!(
        "collected {} under {}\n",
        careful.locker().item(image).unwrap(),
        careful.strongest_held()
    );
    let report = rule_on(&careful);
    println!("{report}");

    // --- The careless investigator ------------------------------------
    println!("--- investigator B: seizes first, asks never ---");
    let mut careless = Investigation::open("United States v. Careless");
    // The engine refuses the lawful path...
    let refusal = careless
        .collect(
            &device_search(),
            "device image",
            b"disk".to_vec(),
            "agent b",
        )
        .unwrap_err();
    println!("engine refused: {refusal}");
    // ...but investigator B proceeds anyway.
    let tainted = careless.collect_anyway(
        &device_search(),
        "device image",
        b"disk".to_vec(),
        "agent b",
    );
    // Everything derived from it is fruit of the poisonous tree.
    careless.collect_derived_anyway(
        &public_collection(),
        "accounts discovered from the image",
        b"accounts".to_vec(),
        "agent b",
        [tainted],
    );
    let report = rule_on(&careless);
    println!("{report}");
    println!(
        "case survives: A = {}, B = {}",
        rule_on(&careful).case_survives(),
        report.case_survives()
    );
}
