//! A full pretrial sequence: the defense drafts suppression motions, the
//! court rules with written opinions, the examiner files a forensic
//! report, and the prosecutor makes the charging call based on what
//! survived and how strong the person-attribution is.
//!
//! Run with: `cargo run --example suppression_hearing`

use lexforensica::evidence::report::ForensicReport;
use lexforensica::investigation::motions::{draft_defense_motions, rule_on_motions};
use lexforensica::investigation::prosecutor::charging_decision;
use lexforensica::investigation::workflow::Investigation;
use lexforensica::law::attribution::{AttributionEvidence, AttributionRecord};
use lexforensica::law::prelude::*;
use lexforensica::law::process::FactualStandard;

fn main() {
    println!("=== suppression hearing and charging decision ===\n");

    let mut inv = Investigation::open("State v. Doe");

    // Lawful start: public forum collection, then a warrant-backed
    // device search.
    let public = InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::stored_opened(),
            DataLocation::PublicForum,
        ),
    )
    .describe("archive the suspect's public posts")
    .joining_public_protocol()
    .build();
    let posts = inv
        .collect(&public, "public posts", b"posts".to_vec(), "det. adams")
        .expect("no process needed");

    inv.add_fact(
        "subscriber identified from IP",
        FactualStandard::ProbableCause,
    );
    inv.apply_for(LegalProcess::SearchWarrant, "the residence")
        .unwrap();
    let device = InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::stored_opened(),
            DataLocation::SuspectDevice,
        ),
    )
    .describe("image the suspect's computer")
    .build();
    let image = inv
        .collect_derived(
            &device,
            "device image",
            b"sectors".to_vec(),
            "det. adams",
            [posts],
        )
        .expect("warrant in hand");

    // ...but an eager partner also grabs the suspect's cloud account
    // without any process.
    let cloud = InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::stored_unopened(),
            DataLocation::ProviderStorage,
        ),
    )
    .describe("pull the suspect's cloud inbox without process")
    .build();
    let inbox = inv.collect_anyway(&cloud, "cloud inbox", b"mail".to_vec(), "det. baker");
    let _notes = inv.collect_derived_anyway(
        &cloud,
        "contacts derived from inbox",
        b"contacts".to_vec(),
        "det. baker",
        [inbox],
    );

    // The defense files.
    println!("--- defense motions ---");
    let motions = draft_defense_motions(&inv);
    for ruling in rule_on_motions(&inv, &motions) {
        println!("{ruling}");
    }

    // The examiner's report.
    println!("\n--- forensic report ---");
    println!("{}", ForensicReport::compile("State v. Doe", inv.locker()));

    // The attribution record from the device examination.
    let mut attribution = AttributionRecord::new();
    attribution.add(AttributionEvidence::IndividualAction {
        others_had_access: false, // single-occupancy, password-protected
    });
    attribution.add(AttributionEvidence::MalwareAnalysis {
        malware_excluded: true,
    });
    attribution.add(AttributionEvidence::KnowledgeIndicators {
        tied_to_defendant: true, // browsing history under his login
    });
    println!("--- attribution ---\n{attribution}");

    // The charging call.
    let memo = charging_decision(&inv, &attribution);
    println!("--- prosecutor ---\n{memo}");
    let _ = image;
}
