//! The §IV-B storyline: tracing a suspect through an anonymizing proxy
//! with a long-PN-code DSSS flow watermark — lawfully, and what happens
//! when the same technique is used without process.
//!
//! Run with: `cargo run --example watermark_traceback`

use lexforensica::investigation::storyline::{
    campus_admin_private_search_assessment, run_seized_server_storyline,
};
use lexforensica::watermark::experiment::WatermarkExperimentConfig;

fn main() {
    println!("=== DSSS watermark traceback (paper §IV-B) ===\n");
    let config = WatermarkExperimentConfig {
        suspects: 6,
        code_degree: 8,
        chip_ms: 300,
        ..WatermarkExperimentConfig::default()
    };
    println!(
        "{} candidate suspects behind a jittering anonymizer; PN code length {}, chip {} ms\n",
        config.suspects,
        (1u32 << config.code_degree) - 1,
        config.chip_ms
    );

    // Situation one, done lawfully: warrant → court order → watermark →
    // warrant.
    println!("--- situation one: law enforcement, lawful process ---");
    let lawful = run_seized_server_storyline(&config, true);
    println!(
        "watermark identified the true suspect: {}",
        lawful.suspect_identified
    );
    println!(
        "process obtained along the way: {}",
        lawful
            .processes_obtained
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(" → ")
    );
    println!("{}", lawful.court);

    // The rogue variant: same technique, no process.
    println!("--- the same investigation without any process ---");
    let rogue = run_seized_server_storyline(&config, false);
    println!(
        "watermark identified the true suspect: {} — the technique still works...",
        rogue.suspect_identified
    );
    println!("{}", rogue.court);
    println!(
        "...but the case collapses: case survives = {}\n",
        rogue.court.case_survives()
    );

    // Situation two: two campus administrators on their own gateways.
    println!("--- situation two: campus administrators (private search) ---");
    let admins = campus_admin_private_search_assessment();
    println!("verdict: {}", admins.verdict());
    println!("{}", admins.rationale());
    println!(
        "Paper: \"it is workable and legal as private search\" — the admins may run the\n\
         watermark on their own gateways and report their suspicion to law enforcement."
    );
}
